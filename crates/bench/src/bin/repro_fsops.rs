//! File-system substrate benchmark: the buffered metadata cache
//! (`CachePolicy::WriteBack`) raced against the legacy write-through
//! baseline over the ecosystem's hot paths.
//!
//! Four legs, each run under both policies on a `StatsDevice`-wrapped
//! in-memory device:
//!
//! * `mke2fs-format` — a full format, whose journal initialisation used
//!   to pay one bitmap read-modify-write round trip per allocated block;
//! * `journaled-file-cycles` — mount–write–unmount cycles creating,
//!   overwriting and deleting multi-block files (the crashsim
//!   journaled-write workload shape, scaled up);
//! * `e4defrag-online` — online defragmentation of interleaved files;
//! * `conbugck-campaign` — a ConBugCk configuration campaign executed
//!   end to end under each policy (verdict tallies must match; the
//!   devices live inside the executor, so its I/O is not counted).
//!
//! Every leg's final device image must be byte-identical across the two
//! policies — the cache buffers writes, it must never change what ends
//! up on disk. The run **exits nonzero on any divergence** (image or
//! campaign-verdict). Wall times keep the best of `reps` repetitions;
//! the I/O counters are deterministic. Results go to `BENCH_fsops.json`
//! (`--out PATH` to redirect); `--smoke` shrinks the run for CI gates.

use std::time::Instant;

use blockdev::{digest_device, IoStats, MemDevice, StatsDevice};
use contools::{execute_with_policy, generate_naive, ConBugCk, GeneratedConfig, RunDepth};
use e2fstools::{E4defrag, Mke2fs};
use ext4sim::{CachePolicy, Ext4Fs, MountOptions};
use serde::Serialize;

/// Serializable snapshot of [`IoStats`].
#[derive(Serialize, Clone, Copy, Default)]
struct IoNumbers {
    reads: u64,
    writes: u64,
    flushes: u64,
    bulk_reads: u64,
    bulk_writes: u64,
    vec_allocs: u64,
}

impl From<IoStats> for IoNumbers {
    fn from(s: IoStats) -> IoNumbers {
        IoNumbers {
            reads: s.reads,
            writes: s.writes,
            flushes: s.flushes,
            bulk_reads: s.bulk_reads,
            bulk_writes: s.bulk_writes,
            vec_allocs: s.vec_allocs,
        }
    }
}

/// One policy's measured run of one leg.
#[derive(Serialize)]
struct Arm {
    wall_ms: f64,
    io: IoNumbers,
    /// Content identity of the leg's final device image (or the
    /// campaign's verdict tally for the conbugck leg).
    fingerprint: String,
}

/// One leg's baseline-vs-cached comparison.
#[derive(Serialize)]
struct Leg {
    name: String,
    baseline: Arm,
    cached: Arm,
    wall_speedup: f64,
    /// baseline writes / cached writes (1.0 when neither arm counts
    /// device I/O, as in the campaign leg).
    write_reduction: f64,
    identical: bool,
}

#[derive(Serialize)]
struct Totals {
    baseline_wall_ms: f64,
    cached_wall_ms: f64,
    baseline_writes: u64,
    cached_writes: u64,
    baseline_reads: u64,
    cached_reads: u64,
    wall_speedup: f64,
    write_reduction: f64,
}

#[derive(Serialize)]
struct BenchSummary {
    description: String,
    smoke: bool,
    reps: usize,
    legs: Vec<Leg>,
    totals: Totals,
    all_identical: bool,
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

/// Runs `f` once under `policy`, timing it.
fn timed<F>(policy: CachePolicy, f: F) -> (f64, IoStats, String)
where
    F: Fn(CachePolicy) -> (IoStats, String),
{
    let start = Instant::now();
    let (io, fingerprint) = f(policy);
    (start.elapsed().as_secs_f64() * 1e3, io, fingerprint)
}

fn hex(d: blockdev::ImageDigest) -> String {
    format!("{:016x}{:016x}", d.a, d.b)
}

/// A formatted 1k-block-size image, built write-through so both arms of
/// every leg start from byte-identical state.
fn pre_image(blocks: &str, total_blocks: u64) -> MemDevice {
    let m = Mke2fs::from_args(&["-b", "1024", "/dev/fsops", blocks])
        .unwrap_or_else(|e| die(&format!("mke2fs parse failed: {e}")))
        .with_cache_policy(CachePolicy::WriteThrough);
    m.run(MemDevice::new(1024, total_blocks))
        .unwrap_or_else(|e| die(&format!("pre-image format failed: {e}")))
        .0
}

// ---------------------------------------------------------------------
// legs
// ---------------------------------------------------------------------

fn leg_format(policy: CachePolicy) -> (IoStats, String) {
    let dev = StatsDevice::new(MemDevice::new(1024, 16384));
    let m = Mke2fs::from_args(&["-b", "1024", "/dev/fsops", "12288"])
        .unwrap_or_else(|e| die(&format!("mke2fs parse failed: {e}")))
        .with_cache_policy(policy);
    let (dev, _) = m.run(dev).unwrap_or_else(|e| die(&format!("format failed: {e}")));
    let io = dev.stats();
    let digest = digest_device(dev.inner()).expect("in-range scan");
    (io, hex(digest))
}

fn leg_file_cycles(pre: &MemDevice, cycles: usize, policy: CachePolicy) -> (IoStats, String) {
    let mut dev = StatsDevice::new(pre.clone());
    let payload = vec![0xC7u8; 12 * 1024];
    let scratch_data = vec![0x5Au8; 96 * 1024];
    for cycle in 0..cycles {
        let mut fs = Ext4Fs::mount_with_policy(dev, &MountOptions::default(), policy)
            .unwrap_or_else(|e| die(&format!("mount failed: {e}")));
        let root = fs.root_inode();
        let run = (|| -> Result<(), ext4sim::FsError> {
            let dir = fs.mkdir(root, &format!("cycle{cycle}"))?;
            for j in 0..6 {
                let f = fs.create_file(dir, &format!("data{j}"))?;
                fs.write_file(f, 0, &payload)?;
            }
            // overwrite one file and churn the previous cycle's blocks
            let first = fs.lookup(dir, "data0")?.expect("just created");
            fs.write_file(ext4sim::InodeNo(first.inode), 0, &payload[..6 * 1024])?;
            // allocation/free churn: the write-through baseline pays a
            // bitmap round trip per allocated and per freed block here
            let scratch = fs.create_file(dir, "scratch")?;
            fs.write_file(scratch, 0, &scratch_data)?;
            fs.truncate(scratch)?;
            fs.write_file(scratch, 0, &scratch_data[..48 * 1024])?;
            fs.truncate(scratch)?;
            fs.unlink(dir, "scratch")?;
            if cycle > 0 {
                let prev = fs
                    .lookup(root, &format!("cycle{}", cycle - 1))?
                    .expect("created last cycle");
                let prev = ext4sim::InodeNo(prev.inode);
                for j in 0..3 {
                    let name = format!("data{j}");
                    let f = fs.lookup(prev, &name)?.expect("created last cycle");
                    fs.truncate(ext4sim::InodeNo(f.inode))?;
                    fs.unlink(prev, &name)?;
                }
            }
            Ok(())
        })();
        run.unwrap_or_else(|e| die(&format!("file workload failed: {e}")));
        dev = fs.unmount().unwrap_or_else(|e| die(&format!("unmount failed: {e}")));
    }
    let io = dev.stats();
    let digest = digest_device(dev.inner()).expect("in-range scan");
    (io, hex(digest))
}

fn leg_defrag(pre: &MemDevice, policy: CachePolicy) -> (IoStats, String) {
    let mut dev = StatsDevice::new(pre.clone());
    let mut fs = Ext4Fs::mount_with_policy(dev, &MountOptions::default(), policy)
        .unwrap_or_else(|e| die(&format!("mount failed: {e}")));
    E4defrag::new()
        .run(&mut fs)
        .unwrap_or_else(|e| die(&format!("defrag failed: {e}")));
    dev = fs.unmount().unwrap_or_else(|e| die(&format!("unmount failed: {e}")));
    let io = dev.stats();
    let digest = digest_device(dev.inner()).expect("in-range scan");
    (io, hex(digest))
}

/// Two deliberately interleaved files on a fresh image — the state the
/// defrag leg starts from.
fn fragmented_image() -> MemDevice {
    let dev = pre_image("4096", 4096);
    let mut fs = Ext4Fs::mount_with_policy(dev, &MountOptions::default(), CachePolicy::WriteThrough)
        .unwrap_or_else(|e| die(&format!("mount failed: {e}")));
    let root = fs.root_inode();
    let run = (|| -> Result<(), ext4sim::FsError> {
        let a = fs.create_file(root, "frag_a")?;
        let b = fs.create_file(root, "frag_b")?;
        for i in 0..16u64 {
            fs.write_file(a, i * 1024, &[0xAA; 1024])?;
            fs.write_file(b, i * 1024, &[0xBB; 1024])?;
        }
        Ok(())
    })();
    run.unwrap_or_else(|e| die(&format!("fragmentation setup failed: {e}")));
    fs.unmount().unwrap_or_else(|e| die(&format!("unmount failed: {e}")))
}

fn leg_campaign(configs: &[GeneratedConfig], policy: CachePolicy) -> (IoStats, String) {
    let mut tally = [0usize; 4];
    for c in configs {
        let slot = match execute_with_policy(c, policy) {
            RunDepth::RejectedCli => 0,
            RunDepth::RejectedFormat => 1,
            RunDepth::RejectedMount => 2,
            RunDepth::Deep => 3,
        };
        tally[slot] += 1;
    }
    let fingerprint = format!(
        "cli={} format={} mount={} deep={}",
        tally[0], tally[1], tally[2], tally[3]
    );
    // the executor owns its devices; no counters to report
    (IoStats::default(), fingerprint)
}

// ---------------------------------------------------------------------
// driver
// ---------------------------------------------------------------------

fn ratio(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        if a <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a / b
    }
}

fn compare(name: &str, reps: usize, run: impl Fn(CachePolicy) -> (IoStats, String)) -> Leg {
    eprintln!("benchmarking '{name}'...");
    // interleave the arms so system-load drift hits both equally; keep
    // the best wall time of each (the runs are deterministic, so
    // counters and fingerprints are identical across repetitions)
    let mut baseline: Option<Arm> = None;
    let mut cached: Option<Arm> = None;
    for _ in 0..reps.max(1) {
        let (wall_ms, io, fingerprint) = timed(CachePolicy::WriteThrough, &run);
        if baseline.as_ref().is_none_or(|a| wall_ms < a.wall_ms) {
            baseline = Some(Arm { wall_ms, io: io.into(), fingerprint });
        }
        let (wall_ms, io, fingerprint) = timed(CachePolicy::WriteBack, &run);
        if cached.as_ref().is_none_or(|a| wall_ms < a.wall_ms) {
            cached = Some(Arm { wall_ms, io: io.into(), fingerprint });
        }
    }
    let baseline = baseline.expect("at least one repetition ran");
    let cached = cached.expect("at least one repetition ran");
    let identical = baseline.fingerprint == cached.fingerprint;
    let leg = Leg {
        name: name.to_string(),
        wall_speedup: ratio(baseline.wall_ms, cached.wall_ms.max(f64::EPSILON)),
        write_reduction: ratio(baseline.io.writes as f64, cached.io.writes as f64),
        identical,
        baseline,
        cached,
    };
    eprintln!(
        "  write-through {:.1} ms / {} writes, {} reads | write-back {:.1} ms / {} writes, \
         {} reads | {:.2}x fewer writes, {:.2}x wall | identical: {identical}",
        leg.baseline.wall_ms,
        leg.baseline.io.writes,
        leg.baseline.io.reads,
        leg.cached.wall_ms,
        leg.cached.io.writes,
        leg.cached.io.reads,
        leg.write_reduction,
        leg.wall_speedup,
    );
    leg
}

fn run_bench(smoke: bool, out: &str) {
    // best-of-N: the legs are deterministic, so repetitions only shave
    // scheduler noise — and the smoke gate asserts a wall speedup
    let reps = 5;
    let cycles = if smoke { 2 } else { 6 };
    let campaign_n = if smoke { 10 } else { 40 };

    let files_pre = pre_image("12288", 16384);
    let frag_pre = fragmented_image();
    let mut configs = ConBugCk::new(11)
        .unwrap_or_else(|e| die(&format!("dependency extraction failed: {e}")))
        .generate(campaign_n);
    configs.extend(generate_naive(11, campaign_n));

    let legs = vec![
        compare("mke2fs-format", reps, leg_format),
        compare("journaled-file-cycles", reps, |p| leg_file_cycles(&files_pre, cycles, p)),
        compare("e4defrag-online", reps, |p| leg_defrag(&frag_pre, p)),
        compare("conbugck-campaign", reps, |p| leg_campaign(&configs, p)),
    ];

    let all_identical = legs.iter().all(|l| l.identical);
    let baseline_wall_ms: f64 = legs.iter().map(|l| l.baseline.wall_ms).sum();
    let cached_wall_ms: f64 = legs.iter().map(|l| l.cached.wall_ms).sum();
    let baseline_writes: u64 = legs.iter().map(|l| l.baseline.io.writes).sum();
    let cached_writes: u64 = legs.iter().map(|l| l.cached.io.writes).sum();
    let totals = Totals {
        baseline_wall_ms,
        cached_wall_ms,
        baseline_writes,
        cached_writes,
        baseline_reads: legs.iter().map(|l| l.baseline.io.reads).sum(),
        cached_reads: legs.iter().map(|l| l.cached.io.reads).sum(),
        wall_speedup: ratio(baseline_wall_ms, cached_wall_ms.max(f64::EPSILON)),
        write_reduction: ratio(baseline_writes as f64, cached_writes as f64),
    };
    eprintln!(
        "total: write-through {:.1} ms / {} writes -> write-back {:.1} ms / {} writes \
         ({:.2}x fewer writes, {:.2}x wall)",
        totals.baseline_wall_ms,
        totals.baseline_writes,
        totals.cached_wall_ms,
        totals.cached_writes,
        totals.write_reduction,
        totals.wall_speedup,
    );

    let summary = BenchSummary {
        description: "ext4sim metadata-cache benchmark: write-back buffered bitmaps and \
                      inode-table blocks vs the write-through baseline, over format, journaled \
                      file cycles, online defrag and a ConBugCk campaign"
            .to_string(),
        smoke,
        reps,
        legs,
        totals,
        all_identical,
    };
    let json = serde_json::to_string_pretty(&summary)
        .unwrap_or_else(|e| die(&format!("serialisation failed: {e}")));
    if let Err(e) = std::fs::write(out, json + "\n") {
        die(&format!("writing {out} failed: {e}"));
    }
    eprintln!("wrote {out}");
    if !all_identical {
        die("ERROR: write-back and write-through disagreed on at least one final image");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench = false;
    let mut smoke = false;
    let mut out = "BENCH_fsops.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => bench = true,
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: repro_fsops --bench [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if !bench {
        eprintln!("usage: repro_fsops --bench [--smoke] [--out PATH]");
        std::process::exit(2);
    }
    run_bench(smoke, &out);
}
