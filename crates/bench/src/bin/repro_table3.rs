//! Regenerates Table 3: distribution of configuration bugs over the four
//! usage scenarios, via the full mining pipeline (keyword search →
//! sampling → classification) followed by per-scenario classification.

use bench::count_pct;
use study::{classify_corpus, mine_corpus};

fn main() {
    let (mining, _corpus) = mine_corpus();
    println!(
        "mining pipeline: {} commits -> {} keyword hits -> {} sampled -> {} classified bugs",
        mining.total_commits, mining.keyword_hits, mining.sampled, mining.classified_bugs
    );
    println!();

    let t = classify_corpus();
    let mut rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.bugs.to_string(),
                count_pct(r.sd, r.bugs),
                if r.cpd == 0 { "-".to_string() } else { count_pct(r.cpd, r.bugs) },
                count_pct(r.ccd, r.bugs),
            ]
        })
        .collect();
    rows.push(vec![
        "Total".to_string(),
        t.total.bugs.to_string(),
        count_pct(t.total.sd, t.total.bugs),
        count_pct(t.total.cpd, t.total.bugs),
        count_pct(t.total.ccd, t.total.bugs),
    ]);
    print!(
        "{}",
        bench::render_table(
            "Table 3: Distribution of Configuration Bugs in Four Scenarios",
            &["Usage Scenario", "# Bug", "SD", "CPD", "CCD"],
            &rows,
        )
    );
    println!();
    println!("paper: 67 bugs; SD 67 (100%), CPD 5 (7.5%), CCD 65 (97.0%)");
}
