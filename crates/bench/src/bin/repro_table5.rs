//! Regenerates Table 5: the static analyzer's extraction results per
//! usage scenario, scored against the ground truth.

use bench::fp_cell;
use confdep::{Evaluation, ExtractOptions};

fn main() {
    let eval = Evaluation::run(ExtractOptions::default()).expect("models compile");
    let mut rows: Vec<Vec<String>> = eval
        .scenarios
        .iter()
        .map(|s| {
            vec![
                s.label.clone(),
                fp_cell(s.sd.extracted, s.sd.false_positives),
                fp_cell(s.cpd.extracted, s.cpd.false_positives),
                fp_cell(s.ccd.extracted, s.ccd.false_positives),
            ]
        })
        .collect();
    rows.push(vec![
        "Total Unique".to_string(),
        fp_cell(eval.unique.sd.extracted, eval.unique.sd.false_positives),
        fp_cell(eval.unique.cpd.extracted, eval.unique.cpd.false_positives),
        fp_cell(eval.unique.ccd.extracted, eval.unique.ccd.false_positives),
    ]);
    print!(
        "{}",
        bench::render_table(
            "Table 5: Extraction of Multi-Level Configuration Dependencies (extracted / FP)",
            &["Usage Scenario", "Self Dep.", "Cross-Parameter Dep.", "Cross-Component Dep."],
            &rows,
        )
    );
    println!();
    println!(
        "total unique: {} dependencies, {} false positives ({:.1}%)",
        eval.unique.total(),
        eval.unique.total_fp(),
        100.0 * eval.overall_fp_rate()
    );
    println!("paper: 64 unique (32 SD / 26 CPD / 6 CCD), 5 FP (7.8%); SD FP 9.4%, CPD FP 3.9%, CCD FP 16.7%");

    // the JSON artifact the paper's analyzer emits
    let report = confdep::DependencyReport::new("ext4-ecosystem", false, eval.unique.deps.clone());
    let path = std::env::temp_dir().join("confdep-dependencies.json");
    if report.save(&path).is_ok() {
        println!("dependency JSON written to {}", path.display());
    }
}
