//! Validation-service throughput benchmark.
//!
//! Races the three convalid serving paths — naive full-table
//! evaluation, the indexed plan, and the indexed plan behind the
//! sharded verdict memo — over the same query stream at several worker
//! counts, and checks all three return bit-identical verdicts (also
//! against direct `Constraint::evaluate` over every constraint).
//!
//! The query stream models a validation service's traffic: a pool of
//! distinct whole-configuration states (solver polarity witnesses plus
//! seeded mutations of them) sampled with repetition, so memoization
//! has the redundancy a real service sees.
//!
//! Writes the measurements to `BENCH_service.json` (`--out PATH` to
//! redirect). `--smoke` shrinks the pool and stream for CI gates;
//! `--threads N` replaces the default 1/4/16 ladder with one level.
//!
//! Exits nonzero when any path disagrees on any verdict, or when the
//! indexed path fails to evaluate strictly fewer constraints per query
//! than the full table.

use std::sync::Arc;
use std::time::Instant;

use confdep::{extract_scenario, models, ConstraintSet, ExtractOptions, Solver};
use convalid::{
    ConfigQuery, EngineOptions, EvalStrategy, MemoOptions, MemoStats, ValidationEngine,
    ValidationPlan,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// One serving path's measurement at one worker count.
#[derive(Serialize, Clone)]
struct EngineLeg {
    strategy: String,
    wall_ms: f64,
    validations_per_sec: f64,
    /// Mean constraints evaluated per query (memo hits evaluate 0).
    evaluated_per_query: f64,
    /// Memo counters (memoized leg only).
    memo: Option<MemoStats>,
}

/// All three paths at one worker count.
#[derive(Serialize)]
struct ThreadLevel {
    threads: usize,
    naive: EngineLeg,
    indexed: EngineLeg,
    memoized: EngineLeg,
    /// Indexed validations/sec over naive.
    speedup_indexed: f64,
    /// Indexed+memoized validations/sec over naive.
    speedup_memoized: f64,
    /// All three paths agreed on every verdict of the stream.
    verdicts_identical: bool,
}

#[derive(Serialize)]
struct Summary {
    description: String,
    smoke: bool,
    seed: u64,
    constraints: usize,
    /// Distinct states in the query pool.
    pool_distinct: usize,
    /// Queries per leg (pool sampled with repetition).
    stream_len: usize,
    plan_compile_ms: f64,
    thread_levels: Vec<ThreadLevel>,
    /// Every level's three paths agreed on every verdict.
    all_paths_identical: bool,
    /// The indexed path matches direct `Constraint::evaluate` over all
    /// constraints on every distinct pool state.
    direct_identical: bool,
    /// Indexed+memoized speedup over naive at the highest worker count.
    max_speedup_memoized: f64,
    /// Indexed constraints-evaluated-per-query at the highest level
    /// (must be strictly below `constraints`).
    indexed_evaluated_per_query: f64,
}

/// Builds the distinct-state pool: every solver polarity witness, plus
/// seeded mutations (blocksize/reserved/feature/mount tweaks) of them.
fn build_pool(set: &ConstraintSet, seed: u64, target: usize) -> Vec<ConfigQuery> {
    let solver = Solver::new(set);
    let mut pool: Vec<ConfigQuery> = Vec::new();
    let mut keys = std::collections::BTreeSet::new();
    let mut push = |q: ConfigQuery, pool: &mut Vec<ConfigQuery>| {
        if keys.insert(q.state_key()) {
            pool.push(q);
        }
    };
    let witnesses: Vec<_> = solver.witness_targets();
    for (_, _, solved) in &witnesses {
        push(ConfigQuery::new(vec![solved.mkfs.clone(), solved.mount.clone()]), &mut pool);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let int_pool = solver.int_pool("mke2fs", "blocksize");
    let reserved_pool = solver.int_pool("mke2fs", "reserved_percent");
    let features = solver.feature_pool("mke2fs");
    let data_pool = solver.enum_pool("mount", "data");
    while pool.len() < target && !witnesses.is_empty() {
        let (_, _, base) = &witnesses[rng.gen_range(0..witnesses.len())];
        let mut mkfs = base.mkfs.clone();
        let mut mount = base.mount.clone();
        match rng.gen_range(0..5) {
            0 => {
                mkfs.set_int("blocksize", int_pool[rng.gen_range(0..int_pool.len())]);
            }
            1 => {
                mkfs.set_int(
                    "reserved_percent",
                    reserved_pool[rng.gen_range(0..reserved_pool.len())],
                );
            }
            2 => {
                let f = &features[rng.gen_range(0..features.len())];
                mkfs.set_bool(f, rng.gen_bool(0.5));
            }
            3 => {
                if !data_pool.is_empty() {
                    let v = &data_pool[rng.gen_range(0..data_pool.len())];
                    mount.set_str("data", v);
                }
            }
            _ => {
                mount.set_int("commit", rng.gen_range(0..120));
            }
        }
        push(ConfigQuery::new(vec![mkfs, mount]), &mut pool);
    }
    pool
}

/// Samples the service's query stream from the pool with repetition.
fn build_stream(pool: &[ConfigQuery], seed: u64, len: usize) -> Vec<ConfigQuery> {
    // queries carry their identity from generation, the way the fuzz
    // corpus's GeneratedConfig carries its state_id: fingerprint each
    // pool state once here so every stream clone inherits it
    for q in pool {
        let _ = q.fingerprint();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5157_4f52_4b4c_4f41);
    (0..len).map(|_| pool[rng.gen_range(0..pool.len())].clone()).collect()
}

/// One serving path's verdict vectors, in stream order.
type LegVerdicts = Vec<Arc<[confdep::Verdict]>>;

/// Runs one serving path over the stream `reps` times, keeping the
/// fastest wall time; returns the leg and the verdict vectors.
fn run_leg(
    plan: &Arc<ValidationPlan>,
    options: EngineOptions,
    label: &str,
    stream: &[ConfigQuery],
    threads: usize,
    reps: usize,
) -> (EngineLeg, LegVerdicts) {
    let mut best: Option<(f64, EngineLeg, LegVerdicts)> = None;
    for _ in 0..reps.max(1) {
        // fresh engine per repetition: the memo starts cold every time
        let engine = ValidationEngine::new(Arc::clone(plan), options);
        let start = Instant::now();
        let outcomes = engine.validate_many(stream, threads);
        let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
        let stats = engine.stats();
        let leg = EngineLeg {
            strategy: label.to_string(),
            wall_ms,
            validations_per_sec: stream.len() as f64 / (wall_ms / 1000.0).max(1e-9),
            evaluated_per_query: stats.evaluated_per_query(),
            memo: stats.memo,
        };
        let verdicts: LegVerdicts = outcomes.into_iter().map(|o| o.verdicts).collect();
        if best.as_ref().is_none_or(|(w, _, _)| wall_ms < *w) {
            best = Some((wall_ms, leg, verdicts));
        }
    }
    let (_, leg, verdicts) = best.expect("at least one repetition ran");
    (leg, verdicts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut thread_override: Option<usize> = None;
    let mut out = "BENCH_service.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {} // benchmark is the only mode
            "--smoke" => smoke = true,
            "--threads" => {
                i += 1;
                thread_override =
                    Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--threads needs a number");
                        std::process::exit(2);
                    }));
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let seed = 42u64;
    let (pool_target, stream_len) = if smoke { (120, 2_000) } else { (400, 40_000) };
    let reps = if smoke { 1 } else { 3 };
    let levels: Vec<usize> = match thread_override {
        Some(n) => vec![n],
        None if smoke => vec![1, 2],
        None => vec![1, 4, 16],
    };

    let set = match extract_scenario(&models::all(), ExtractOptions::default()) {
        Ok(deps) => ConstraintSet::compile(deps),
        Err(e) => {
            eprintln!("extraction failed: {e}");
            std::process::exit(1);
        }
    };
    let constraints = set.len();
    let pool = build_pool(&set, seed, pool_target);
    let stream = build_stream(&pool, seed, stream_len);
    eprintln!(
        "pool: {} distinct states, stream: {} queries over {} constraints",
        pool.len(),
        stream.len(),
        constraints
    );

    let compile_start = Instant::now();
    let plan = Arc::new(ValidationPlan::compile(set));
    let plan_compile_ms = compile_start.elapsed().as_secs_f64() * 1000.0;

    // correctness first: the indexed path must match direct
    // Constraint::evaluate over every constraint, on every pool state
    let direct_engine = ValidationEngine::new(Arc::clone(&plan), EngineOptions::indexed());
    let mut direct_identical = true;
    for q in &pool {
        let views = q.views();
        let direct: Vec<confdep::Verdict> =
            plan.constraints().constraints().iter().map(|c| c.evaluate(&views)).collect();
        let indexed = direct_engine.validate(q);
        if indexed.verdicts.as_ref() != direct.as_slice() {
            eprintln!("MISMATCH vs direct evaluation on {}", q.state_key());
            direct_identical = false;
        }
    }

    let memo_options = MemoOptions::default();
    let mut thread_levels = Vec::new();
    let mut all_identical = true;
    for &threads in &levels {
        let (naive, naive_v) =
            run_leg(&plan, EngineOptions::naive(), "naive", &stream, threads, reps);
        let (indexed, indexed_v) =
            run_leg(&plan, EngineOptions::indexed(), "indexed", &stream, threads, reps);
        let memo_opts =
            EngineOptions { strategy: EvalStrategy::Indexed, memo: Some(memo_options) };
        let (memoized, memo_v) =
            run_leg(&plan, memo_opts, "indexed+memo", &stream, threads, reps);
        let identical = naive_v
            .iter()
            .zip(&indexed_v)
            .zip(&memo_v)
            .all(|((a, b), c)| a == b && b == c);
        all_identical &= identical;
        let level = ThreadLevel {
            threads,
            speedup_indexed: indexed.validations_per_sec / naive.validations_per_sec,
            speedup_memoized: memoized.validations_per_sec / naive.validations_per_sec,
            verdicts_identical: identical,
            naive,
            indexed,
            memoized,
        };
        eprintln!(
            "threads {:2}: naive {:8.0}/s | indexed {:8.0}/s ({:.2}x, {:.1} evaluated/query) \
             | memoized {:8.0}/s ({:.2}x, {:.0}% memo hits) | identical: {}",
            threads,
            level.naive.validations_per_sec,
            level.indexed.validations_per_sec,
            level.speedup_indexed,
            level.indexed.evaluated_per_query,
            level.memoized.validations_per_sec,
            level.speedup_memoized,
            100.0 * level.memoized.memo.map_or(0.0, |m| m.hit_rate()),
            level.verdicts_identical
        );
        thread_levels.push(level);
    }

    let last = thread_levels.last().expect("at least one thread level");
    let summary = Summary {
        description: "validation-service throughput: naive full-table evaluation vs the \
                      indexed plan vs indexed+sharded-memo, same query stream, \
                      bit-identical verdicts enforced"
            .to_string(),
        smoke,
        seed,
        constraints,
        pool_distinct: pool.len(),
        stream_len: stream.len(),
        plan_compile_ms,
        all_paths_identical: all_identical,
        direct_identical,
        max_speedup_memoized: last.speedup_memoized,
        indexed_evaluated_per_query: last.indexed.evaluated_per_query,
        thread_levels,
    };

    let json = serde_json::to_string_pretty(&summary).expect("summary serialises");
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");

    let mut failed = false;
    if !summary.all_paths_identical || !summary.direct_identical {
        eprintln!("ERROR: serving paths disagreed on some verdict");
        failed = true;
    }
    if summary.indexed_evaluated_per_query >= constraints as f64 {
        eprintln!(
            "ERROR: indexed path evaluated {:.1} constraints per query (full table is {})",
            summary.indexed_evaluated_per_query, constraints
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
