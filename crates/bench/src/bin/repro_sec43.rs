//! Regenerates the §4.3 application results: ConDocCk's 12 inaccurate
//! documentation issues and ConHandleCk's single bad-handling case.

use contools::{run_condocck, run_conhandleck, Handling};

fn main() {
    println!("== §4.3: Using the extracted dependencies ==");
    println!();

    let issues = run_condocck().expect("models compile");
    println!("ConDocCk: {} inaccurate documentation issues (paper: 12)", issues.len());
    for (i, issue) in issues.iter().enumerate() {
        println!("  {:2}. [{}] {}", i + 1, issue.manual, issue.dependency);
    }
    println!();

    let outcomes = run_conhandleck();
    let bad: Vec<_> = outcomes.iter().filter(|o| o.handling.is_bad()).collect();
    println!(
        "ConHandleCk: {} violation cases injected, {} handled gracefully, {} bad handling (paper: 1)",
        outcomes.len(),
        outcomes.iter().filter(|o| matches!(o.handling, Handling::Graceful { .. })).count(),
        bad.len()
    );
    for o in &outcomes {
        let verdict = match &o.handling {
            Handling::Graceful { error } => format!("graceful: {error}"),
            Handling::Accepted => "accepted (benign)".to_string(),
            Handling::BadHandling { corruption } => {
                format!("BAD HANDLING — corruption: {}", corruption.join(", "))
            }
        };
        println!("  case {:2} [{}]\n          -> {verdict}", o.case.id, o.case.description);
    }
    println!();
    println!("paper: 12 documentation issues; 1 bad handling (resize2fs corrupts the file system)");
}
