//! Analyzer benchmark: the naive sweep engine vs the def-use worklist
//! engine, plus the content-addressed analysis cache.
//!
//! `repro_analyzer --bench` generates seeded synthetic CIR programs at
//! several scales (`bench::synth`), races
//! `AnalysisOptions::sweep_baseline()` against the default worklist
//! engine in both the intra- and inter-procedural modes, verifies the
//! two produce **identical** `TaintResult`s at every point, and writes
//! the measurements to `BENCH_analyzer.json` (`--out PATH` to
//! redirect): wall time, instructions visited, propagation rounds, set
//! unions (and how many the worklist answered from its memo table).
//! A final section re-extracts the six real component models through a
//! fresh `AnalysisCache` twice and reports the second run's hit rate
//! (it must re-analyze nothing).
//!
//! `--smoke` shrinks the scales and repetitions for CI gates;
//! `--threads N` pins the cache-section worker count. The process exits
//! nonzero if the engines disagree anywhere.

use std::time::Instant;

use bench::{synth_model, SynthSpec};
use confdep::{extract_scenario_with_cache, models, AnalysisCache, ExtractOptions};
use serde::Serialize;
use taint::{analyze_with_stats, AnalysisOptions, AnalysisStats, Engine};

/// One engine's measured run over one program and mode.
#[derive(Serialize)]
struct EngineRun {
    wall_ms: f64,
    instructions_visited: u64,
    propagation_rounds: u64,
    set_unions: u64,
    set_unions_memoized: u64,
}

fn measure(
    program: &cir::Program,
    options: AnalysisOptions,
    reps: usize,
) -> (EngineRun, taint::TaintResult) {
    let mut best: Option<(f64, taint::TaintResult, AnalysisStats)> = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let (result, stats) = analyze_with_stats(program, options);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if best.as_ref().is_none_or(|(b, _, _)| wall_ms < *b) {
            best = Some((wall_ms, result, stats));
        }
    }
    let (wall_ms, result, stats) = best.expect("at least one repetition ran");
    (
        EngineRun {
            wall_ms,
            instructions_visited: stats.instructions_visited,
            propagation_rounds: stats.propagation_rounds,
            set_unions: stats.set_unions,
            set_unions_memoized: stats.set_unions_memoized,
        },
        result,
    )
}

/// One (scale, mode) comparison row.
#[derive(Serialize)]
struct BenchRow {
    functions: usize,
    blocks: usize,
    params: usize,
    meta_fields: usize,
    mode: String,
    sites: usize,
    vars: usize,
    sweep: EngineRun,
    worklist: EngineRun,
    wall_speedup: f64,
    visit_ratio: f64,
    identical: bool,
}

/// The analysis-cache section: the six real models extracted twice.
#[derive(Serialize)]
struct CacheSection {
    components: usize,
    first_wall_ms: f64,
    second_wall_ms: f64,
    first_misses: u64,
    second_misses: u64,
    cache_hits: u64,
    deps_identical: bool,
}

#[derive(Serialize)]
struct Totals {
    sweep_wall_ms: f64,
    worklist_wall_ms: f64,
    wall_speedup: f64,
    sweep_visits: u64,
    worklist_visits: u64,
    visit_ratio: f64,
}

#[derive(Serialize)]
struct BenchSummary {
    description: String,
    smoke: bool,
    rows: Vec<BenchRow>,
    cache: CacheSection,
    totals: Totals,
    all_identical: bool,
}

fn scales(smoke: bool) -> Vec<SynthSpec> {
    if smoke {
        vec![
            SynthSpec { functions: 2, blocks: 3, params: 3, meta_fields: 2, seed: 11 },
            SynthSpec { functions: 4, blocks: 6, params: 4, meta_fields: 2, seed: 12 },
        ]
    } else {
        vec![
            SynthSpec { functions: 4, blocks: 4, params: 4, meta_fields: 2, seed: 21 },
            SynthSpec { functions: 8, blocks: 12, params: 8, meta_fields: 4, seed: 22 },
            SynthSpec { functions: 16, blocks: 24, params: 12, meta_fields: 6, seed: 23 },
            SynthSpec { functions: 32, blocks: 48, params: 16, meta_fields: 8, seed: 24 },
        ]
    }
}

fn run_cache_section(threads: usize, reps: usize) -> CacheSection {
    let sources = models::all();
    let cache = AnalysisCache::new();
    let opts = ExtractOptions::default();
    let time_once = |cache: &AnalysisCache| {
        let start = Instant::now();
        let x = extract_scenario_with_cache(&sources, opts, threads, cache)
            .unwrap_or_else(|e| {
                eprintln!("scenario extraction failed: {e}");
                std::process::exit(1);
            });
        (start.elapsed().as_secs_f64() * 1e3, x)
    };
    let (first_wall_ms, first) = time_once(&cache);
    let after_first = cache.stats();
    // warm runs: keep the fastest (they are identical by construction)
    let mut second_wall_ms = f64::INFINITY;
    let mut second = None;
    for _ in 0..reps.max(1) {
        let (ms, x) = time_once(&cache);
        if ms < second_wall_ms {
            second_wall_ms = ms;
            second = Some(x);
        }
    }
    let second = second.expect("at least one warm repetition ran");
    let after_second = cache.stats();
    let sig = |deps: &[confdep::Dependency]| -> Vec<String> {
        deps.iter().map(confdep::Dependency::signature).collect()
    };
    CacheSection {
        components: sources.len(),
        first_wall_ms,
        second_wall_ms,
        first_misses: after_first.misses,
        second_misses: after_second.misses - after_first.misses,
        cache_hits: after_second.hits,
        deps_identical: sig(&first.deps) == sig(&second.deps),
    }
}

fn run_bench(smoke: bool, threads: usize, out: &str) {
    let reps = if smoke { 1 } else { 5 };
    let mut rows = Vec::new();
    let mut all_identical = true;
    for spec in scales(smoke) {
        let src = synth_model(&spec);
        let program = cir::compile(&src).unwrap_or_else(|e| {
            eprintln!("synthetic program {spec:?} failed to compile: {e}");
            std::process::exit(1);
        });
        let index = cir::ProgramIndex::build(&program);
        for interprocedural in [false, true] {
            let mode = if interprocedural { "inter" } else { "intra" };
            let sweep_opts = AnalysisOptions { interprocedural, engine: Engine::Sweep };
            let work_opts = AnalysisOptions { interprocedural, engine: Engine::Worklist };
            let (sweep, sweep_result) = measure(&program, sweep_opts, reps);
            let (worklist, work_result) = measure(&program, work_opts, reps);
            let identical = sweep_result == work_result;
            all_identical &= identical;
            eprintln!(
                "{}f x {}b {mode:>5}: sweep {:.2} ms / {} visits -> worklist {:.2} ms / {} \
                 visits ({:.2}x wall, {:.1}x visits) | identical: {identical}",
                spec.functions,
                spec.blocks,
                sweep.wall_ms,
                sweep.instructions_visited,
                worklist.wall_ms,
                worklist.instructions_visited,
                sweep.wall_ms / worklist.wall_ms.max(f64::EPSILON),
                sweep.instructions_visited as f64
                    / worklist.instructions_visited.max(1) as f64,
            );
            rows.push(BenchRow {
                functions: spec.functions,
                blocks: spec.blocks,
                params: spec.params,
                meta_fields: spec.meta_fields,
                mode: mode.to_string(),
                sites: index.site_count(),
                vars: program.vars.len(),
                wall_speedup: sweep.wall_ms / worklist.wall_ms.max(f64::EPSILON),
                visit_ratio: sweep.instructions_visited as f64
                    / worklist.instructions_visited.max(1) as f64,
                sweep,
                worklist,
                identical,
            });
        }
    }

    eprintln!("cache: extracting the {} real models twice...", models::all().len());
    let cache = run_cache_section(threads, reps);
    eprintln!(
        "cache: cold {:.2} ms ({} analyses) -> warm {:.2} ms ({} re-analyses, {} hits) | \
         identical: {}",
        cache.first_wall_ms,
        cache.first_misses,
        cache.second_wall_ms,
        cache.second_misses,
        cache.cache_hits,
        cache.deps_identical,
    );
    all_identical &= cache.deps_identical && cache.second_misses == 0;

    let totals = Totals {
        sweep_wall_ms: rows.iter().map(|r| r.sweep.wall_ms).sum(),
        worklist_wall_ms: rows.iter().map(|r| r.worklist.wall_ms).sum(),
        wall_speedup: rows.iter().map(|r| r.sweep.wall_ms).sum::<f64>()
            / rows.iter().map(|r| r.worklist.wall_ms).sum::<f64>().max(f64::EPSILON),
        sweep_visits: rows.iter().map(|r| r.sweep.instructions_visited).sum(),
        worklist_visits: rows.iter().map(|r| r.worklist.instructions_visited).sum(),
        visit_ratio: rows.iter().map(|r| r.sweep.instructions_visited).sum::<u64>() as f64
            / rows.iter().map(|r| r.worklist.instructions_visited).sum::<u64>().max(1) as f64,
    };
    eprintln!(
        "total: sweep {:.1} ms / {} visits -> worklist {:.1} ms / {} visits \
         ({:.2}x wall, {:.1}x visits)",
        totals.sweep_wall_ms,
        totals.sweep_visits,
        totals.worklist_wall_ms,
        totals.worklist_visits,
        totals.wall_speedup,
        totals.visit_ratio,
    );

    let summary = BenchSummary {
        description: "taint-engine benchmark: naive whole-program sweep vs def-use worklist \
                      with interned taint sets, over seeded synthetic CIR programs, plus the \
                      content-addressed analysis cache over the real component models"
            .to_string(),
        smoke,
        rows,
        cache,
        totals,
        all_identical,
    };
    let json = serde_json::to_string_pretty(&summary).unwrap_or_else(|e| {
        eprintln!("serialisation failed: {e}");
        std::process::exit(1);
    });
    if let Err(e) = std::fs::write(out, json + "\n") {
        eprintln!("writing {out} failed: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
    if !all_identical {
        eprintln!("ERROR: the engines disagreed (or the cache re-analyzed a warm model)");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench = false;
    let mut smoke = false;
    let mut threads = 0usize; // 0 = one worker per core
    let mut out = "BENCH_analyzer.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => bench = true,
            "--smoke" => smoke = true,
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                });
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: repro_analyzer --bench [--smoke] [--threads N] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if bench {
        run_bench(smoke, threads, &out);
    } else {
        eprintln!("usage: repro_analyzer --bench [--smoke] [--threads N] [--out PATH]");
        std::process::exit(2);
    }
}
