//! Ablation experiments for the design choices DESIGN.md calls out:
//!
//! 1. **Metadata bridging** — disabling the shared-metadata bridge
//!    removes every CCD (the paper's key idea is what finds them).
//! 2. **Intra- vs inter-procedural taint** — the paper attributes its
//!    low CCD count to the intra-procedural prototype; the extension
//!    recovers the known-missed dependencies.
//! 3. **ConBugCk** — dependency-aware configuration generation reaches
//!    deep code far more often than naive random generation.

use confdep::{Evaluation, ExtractOptions};
use contools::conbugck::{campaign, coverage, generate_naive, ConBugCk};

fn main() {
    println!("== Ablation 1: the shared-metadata bridge ==");
    let with = Evaluation::run(ExtractOptions::default()).expect("models compile");
    let without = Evaluation::run(ExtractOptions { disable_bridge: true, ..Default::default() })
        .expect("models compile");
    println!(
        "bridge ON : SD {} CPD {} CCD {} (total {})",
        with.unique.sd.extracted,
        with.unique.cpd.extracted,
        with.unique.ccd.extracted,
        with.unique.total()
    );
    println!(
        "bridge OFF: SD {} CPD {} CCD {} (total {})",
        without.unique.sd.extracted,
        without.unique.cpd.extracted,
        without.unique.ccd.extracted,
        without.unique.total()
    );
    println!("-> without the bridge, no cross-component dependency is extractable");
    println!();

    println!("== Ablation 2: intra- vs inter-procedural taint ==");
    let inter = Evaluation::run(ExtractOptions { interprocedural: true, ..Default::default() })
        .expect("models compile");
    println!(
        "intra (paper's prototype): SD {} CPD {} CCD {} (total {})",
        with.unique.sd.extracted,
        with.unique.cpd.extracted,
        with.unique.ccd.extracted,
        with.unique.total()
    );
    println!(
        "inter (future work)      : SD {} CPD {} CCD {} (total {})",
        inter.unique.sd.extracted,
        inter.unique.cpd.extracted,
        inter.unique.ccd.extracted,
        inter.unique.total()
    );
    println!(
        "precision/recall: intra {:.1}%/{:.1}%  inter {:.1}%/{:.1}%",
        100.0 * with.precision(),
        100.0 * with.recall(),
        100.0 * inter.precision(),
        100.0 * inter.recall()
    );
    println!("known dependencies the intra prototype misses:");
    for (sig, why) in confdep::ground_truth::known_missed_by_prototype() {
        let found = inter.unique.deps.iter().any(|d| d.signature() == sig);
        println!("  [{}] {sig}\n       ({why})", if found { "recovered" } else { "still missed" });
    }
    println!();

    println!("== Ablation 3: ConBugCk dependency-aware generation ==");
    let n = 60;
    let mut gen = ConBugCk::new(2022).expect("models compile");
    let aware = campaign(&gen.generate(n));
    let naive = campaign(&generate_naive(2022, n));
    println!(
        "aware : {n} configs -> cli-rejected {} | format-rejected {} | mount-rejected {} | deep {} ({:.0}%)",
        aware.rejected_cli,
        aware.rejected_format,
        aware.rejected_mount,
        aware.deep,
        100.0 * aware.deep_rate()
    );
    println!(
        "naive : {n} configs -> cli-rejected {} | format-rejected {} | mount-rejected {} | deep {} ({:.0}%)",
        naive.rejected_cli,
        naive.rejected_format,
        naive.rejected_mount,
        naive.deep,
        100.0 * naive.deep_rate()
    );
    println!("-> respecting dependencies lets the enhanced suite drive deep into the target code");
    let mut gen2 = ConBugCk::new(2022).expect("models compile");
    let cov = coverage(&gen2.generate(n));
    println!(
        "coverage: {} distinct parameters over {} distinct configuration states (vs the fixed-config
          profile of Table 2's suites)",
        cov.distinct_params, cov.distinct_states
    );
}
