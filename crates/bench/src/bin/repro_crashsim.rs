//! Crash-consistency exploration over the ecosystem's key workloads.
//!
//! Records each workload's write/flush stream, enumerates crash points
//! (write prefixes, torn final writes, out-of-order volatile-cache
//! states), pushes every post-crash image through the recovery stack,
//! and emits the classified results as JSON on stdout. Human-readable
//! progress goes to stderr so the JSON stays parseable.
//!
//! # Benchmark mode
//!
//! `repro_crashsim --bench` races the three engine configurations over
//! the same workloads —
//!
//! * `sequential`: the legacy baseline (full per-point replay, one
//!   thread, no verdict cache);
//! * `parallel`: rolling CoW materialisation + the classification
//!   worker pool;
//! * `parallel_cached`: the same plus image-digest verdict caching —
//!
//! verifies all three produce identical reports (canonical signature),
//! and writes the timings to `BENCH_crashsim.json` (`--out PATH` to
//! redirect). `--smoke` shrinks the run for CI gates; `--threads N`
//! pins the worker count (default: one per core).

use std::sync::Arc;
use std::time::Instant;

use crashsim::{
    defrag_workload, explore, figure1_resize_workload, format_workload, generated_corpus,
    journaled_write_workload, CrashReport, ExploreOptions, ExploreStats, OutcomeCore,
    StoreOpenReport, Verdict, VerdictCounts, VerdictStore, Workload,
};
use serde::Serialize;

/// One workload's results plus the derived summary numbers.
#[derive(Serialize)]
struct Entry {
    workload: String,
    writes: usize,
    flushes: usize,
    crash_points: usize,
    counts: VerdictCounts,
    worst: Verdict,
    corrupting: usize,
    stats: ExploreStats,
    outcomes: Vec<crashsim::CrashOutcome>,
}

impl Entry {
    fn from_report(report: CrashReport) -> Entry {
        Entry {
            workload: report.workload.clone(),
            writes: report.writes,
            flushes: report.flushes,
            crash_points: report.outcomes.len(),
            counts: report.counts(),
            worst: report.worst(),
            corrupting: report.corrupting(),
            stats: report.stats,
            outcomes: report.outcomes,
        }
    }
}

#[derive(Serialize)]
struct Summary {
    description: String,
    entries: Vec<Entry>,
}

/// One engine configuration's measured run over one workload.
#[derive(Serialize)]
struct BenchConfig {
    wall_ms: f64,
    blocks_replayed: u64,
    images_classified: usize,
    cache_hits: usize,
    threads: usize,
}

impl BenchConfig {
    /// Explores `reps` times with `opts` and keeps the fastest wall
    /// time (the runs are deterministic, so the I/O stats and the
    /// report are identical across repetitions).
    fn measure(
        workload: &Workload,
        opts: &ExploreOptions,
        reps: usize,
    ) -> (BenchConfig, CrashReport) {
        let mut best: Option<(f64, CrashReport)> = None;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let report = explore(workload, opts).unwrap_or_else(|e| {
                eprintln!("exploration of '{}' failed: {e}", workload.name);
                std::process::exit(1);
            });
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            if best.as_ref().is_none_or(|(b, _)| wall_ms < *b) {
                best = Some((wall_ms, report));
            }
        }
        let (wall_ms, report) = best.expect("at least one repetition ran");
        let s = report.stats;
        (
            BenchConfig {
                wall_ms,
                blocks_replayed: s.blocks_replayed,
                images_classified: s.images_classified,
                cache_hits: s.cache_hits,
                threads: s.threads,
            },
            report,
        )
    }
}

/// Per-workload comparison of the three engine configurations.
#[derive(Serialize)]
struct BenchRow {
    workload: String,
    writes: usize,
    flushes: usize,
    crash_points: usize,
    sequential: BenchConfig,
    parallel: BenchConfig,
    parallel_cached: BenchConfig,
    wall_speedup_parallel: f64,
    wall_speedup_cached: f64,
    reports_identical: bool,
}

#[derive(Serialize)]
struct BenchTotals {
    sequential_wall_ms: f64,
    parallel_wall_ms: f64,
    parallel_cached_wall_ms: f64,
    sequential_blocks_replayed: u64,
    incremental_blocks_replayed: u64,
    cache_hits: usize,
    wall_speedup_parallel: f64,
    wall_speedup_cached: f64,
}

#[derive(Serialize)]
struct BenchSummary {
    description: String,
    smoke: bool,
    prefix_points_cap: usize,
    rows: Vec<BenchRow>,
    totals: BenchTotals,
    all_reports_identical: bool,
    corpus: CorpusSummary,
}

/// One corpus leg's measured run (a single repetition: the persistent
/// store makes repeated runs non-equivalent by design).
#[derive(Serialize)]
struct CorpusLeg {
    wall_ms: f64,
    blocks_replayed: u64,
    images_classified: usize,
    schedules_pruned: usize,
    por_classes: usize,
    store_hits: usize,
    store_misses: usize,
    cache_hits: usize,
}

impl CorpusLeg {
    fn measure(workload: &Workload, opts: &ExploreOptions) -> (CorpusLeg, CrashReport) {
        let start = Instant::now();
        let report = explore(workload, opts).unwrap_or_else(|e| {
            eprintln!("corpus exploration of '{}' failed: {e}", workload.name);
            std::process::exit(1);
        });
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let s = report.stats;
        (
            CorpusLeg {
                wall_ms,
                blocks_replayed: s.blocks_replayed,
                images_classified: s.images_classified,
                schedules_pruned: s.schedules_pruned,
                por_classes: s.por_classes,
                store_hits: s.store_hits,
                store_misses: s.store_misses,
                cache_hits: s.cache_hits,
            },
            report,
        )
    }
}

/// Full enumeration vs POR vs POR over a warm store, per corpus entry.
#[derive(Serialize)]
struct CorpusRow {
    workload: String,
    writes: usize,
    flushes: usize,
    schedules_enumerated: usize,
    exhaustive: CorpusLeg,
    por_cold: CorpusLeg,
    por_warm: CorpusLeg,
    prune_ratio: f64,
    wall_speedup_por: f64,
    wall_speedup_warm: f64,
    reports_identical: bool,
    verdict_counts_identical: bool,
}

#[derive(Serialize)]
struct CorpusTotals {
    exhaustive_wall_ms: f64,
    por_cold_wall_ms: f64,
    por_warm_wall_ms: f64,
    schedules_enumerated: usize,
    schedules_pruned: usize,
    por_classes: usize,
    prune_ratio: f64,
    warm_store_hits: usize,
    warm_images_classified: usize,
    warm_blocks_replayed: u64,
    corpus_wall_ratio_por: f64,
    corpus_wall_ratio_warm: f64,
}

#[derive(Serialize)]
struct CorpusSummary {
    description: String,
    store_path: String,
    /// What the cold leg saw opening its (freshly removed) store file.
    cold_store_open: StoreOpenReport,
    /// What the warm leg saw reopening the persisted store.
    warm_store_open: StoreOpenReport,
    workloads: usize,
    ops_per_workload: usize,
    max_batch_ops: u32,
    rows: Vec<CorpusRow>,
    totals: CorpusTotals,
    all_reports_identical: bool,
    warm_run_clean: bool,
}

/// Races full deep-reorder enumeration against the POR engine (cold
/// store, then a second warm run over the persisted verdicts) on a
/// generated multi-op corpus. Exits nonzero if any pruned run's
/// canonical signature or verdict-class counts diverge from the
/// exhaustive run.
fn run_corpus(smoke: bool, threads: usize, store_path: &std::path::Path) -> CorpusSummary {
    let (count, ops, batch) = if smoke { (2, 6, 2) } else { (3, 16, 4) };
    let corpus = generated_corpus(0xC0FFEE, count, ops, batch).unwrap_or_else(|e| {
        eprintln!("corpus generation failed: {e}");
        std::process::exit(1);
    });

    // the bench owns its store file: the cold leg must start empty
    let _ = std::fs::remove_file(store_path);
    let exhaustive_opts = ExploreOptions { deep_reorder: true, ..ExploreOptions::default() }
        .with_threads(threads);
    let cold_store: Arc<VerdictStore<OutcomeCore>> = Arc::new(VerdictStore::open(store_path));
    let cold_store_open = cold_store.open_report().clone();
    let cold_opts =
        ExploreOptions::corpus().with_threads(threads).with_store(Arc::clone(&cold_store));

    let mut rows: Vec<CorpusRow> = Vec::new();
    let mut reports = Vec::new();
    for workload in &corpus {
        eprintln!(
            "corpus '{}' ({} writes, {} flushes)...",
            workload.name,
            workload.trace.write_count(),
            workload.trace.flush_count()
        );
        let (exhaustive, ex_report) = CorpusLeg::measure(workload, &exhaustive_opts);
        let (por_cold, cold_report) = CorpusLeg::measure(workload, &cold_opts);
        reports.push((ex_report, cold_report));
        rows.push(CorpusRow {
            workload: workload.name.clone(),
            writes: workload.trace.write_count(),
            flushes: workload.trace.flush_count(),
            schedules_enumerated: 0, // filled below from the exhaustive report
            prune_ratio: 0.0,
            wall_speedup_por: exhaustive.wall_ms / por_cold.wall_ms.max(f64::EPSILON),
            wall_speedup_warm: 0.0,
            exhaustive,
            por_cold,
            por_warm: CorpusLeg {
                wall_ms: 0.0,
                blocks_replayed: 0,
                images_classified: 0,
                schedules_pruned: 0,
                por_classes: 0,
                store_hits: 0,
                store_misses: 0,
                cache_hits: 0,
            },
            reports_identical: false,
            verdict_counts_identical: false,
        });
    }

    // drop the cold handle and reopen: the warm leg must prove the
    // verdicts round-trip through the on-disk store, not the heap
    drop(cold_opts);
    drop(cold_store);
    let warm_store: Arc<VerdictStore<OutcomeCore>> = Arc::new(VerdictStore::open(store_path));
    let warm_store_open = warm_store.open_report().clone();
    eprintln!("warm store preloaded {} verdicts", warm_store.preloaded());
    let warm_opts =
        ExploreOptions::corpus().with_threads(threads).with_store(Arc::clone(&warm_store));

    let mut all_identical = true;
    let mut warm_clean = true;
    for ((row, workload), (ex_report, cold_report)) in
        rows.iter_mut().zip(&corpus).zip(&reports)
    {
        let (por_warm, warm_report) = CorpusLeg::measure(workload, &warm_opts);
        row.por_warm = por_warm;
        row.schedules_enumerated = ex_report.outcomes.len();
        row.prune_ratio =
            row.schedules_enumerated as f64 / (row.por_cold.por_classes.max(1)) as f64;
        row.wall_speedup_warm = row.exhaustive.wall_ms / row.por_warm.wall_ms.max(f64::EPSILON);
        let ex_sig = ex_report.canonical_signature();
        row.reports_identical = ex_sig == cold_report.canonical_signature()
            && ex_sig == warm_report.canonical_signature();
        row.verdict_counts_identical = ex_report.counts() == cold_report.counts()
            && ex_report.counts() == warm_report.counts();
        if row.por_warm.images_classified != 0 || row.por_warm.blocks_replayed != 0 {
            warm_clean = false;
        }
        all_identical &= row.reports_identical && row.verdict_counts_identical;
        eprintln!(
            "  enumerated {} -> {} classes ({:.1}x pruned) | exhaustive {:.1} ms | \
             por {:.1} ms | warm {:.1} ms ({} store hits) | identical: {}",
            row.schedules_enumerated,
            row.por_cold.por_classes,
            row.prune_ratio,
            row.exhaustive.wall_ms,
            row.por_cold.wall_ms,
            row.por_warm.wall_ms,
            row.por_warm.store_hits,
            row.reports_identical,
        );
    }

    let totals = CorpusTotals {
        exhaustive_wall_ms: rows.iter().map(|r| r.exhaustive.wall_ms).sum(),
        por_cold_wall_ms: rows.iter().map(|r| r.por_cold.wall_ms).sum(),
        por_warm_wall_ms: rows.iter().map(|r| r.por_warm.wall_ms).sum(),
        schedules_enumerated: rows.iter().map(|r| r.schedules_enumerated).sum(),
        schedules_pruned: rows.iter().map(|r| r.por_cold.schedules_pruned).sum(),
        por_classes: rows.iter().map(|r| r.por_cold.por_classes).sum(),
        prune_ratio: rows.iter().map(|r| r.schedules_enumerated).sum::<usize>() as f64
            / rows.iter().map(|r| r.por_cold.por_classes).sum::<usize>().max(1) as f64,
        warm_store_hits: rows.iter().map(|r| r.por_warm.store_hits).sum(),
        warm_images_classified: rows.iter().map(|r| r.por_warm.images_classified).sum(),
        warm_blocks_replayed: rows.iter().map(|r| r.por_warm.blocks_replayed).sum(),
        corpus_wall_ratio_por: rows.iter().map(|r| r.exhaustive.wall_ms).sum::<f64>()
            / rows.iter().map(|r| r.por_cold.wall_ms).sum::<f64>().max(f64::EPSILON),
        corpus_wall_ratio_warm: rows.iter().map(|r| r.exhaustive.wall_ms).sum::<f64>()
            / rows.iter().map(|r| r.por_warm.wall_ms).sum::<f64>().max(f64::EPSILON),
    };
    eprintln!(
        "corpus total: {} schedules -> {} classes ({:.1}x) | exhaustive {:.1} ms -> \
         por {:.1} ms ({:.2}x) -> warm {:.1} ms ({:.2}x, {} cross-run hits)",
        totals.schedules_enumerated,
        totals.por_classes,
        totals.prune_ratio,
        totals.exhaustive_wall_ms,
        totals.por_cold_wall_ms,
        totals.corpus_wall_ratio_por,
        totals.por_warm_wall_ms,
        totals.corpus_wall_ratio_warm,
        totals.warm_store_hits,
    );

    CorpusSummary {
        description: "corpus-scale crash exploration: full deep-reorder enumeration vs \
                      partial-order reduction (cold persistent store) vs POR over the warm \
                      store, on generated multi-op workloads under journal group commit"
            .to_string(),
        store_path: store_path.display().to_string(),
        cold_store_open,
        warm_store_open,
        workloads: count,
        ops_per_workload: ops,
        max_batch_ops: batch,
        rows,
        totals,
        all_reports_identical: all_identical,
        warm_run_clean: warm_clean,
    }
}

fn build_workloads(smoke: bool) -> Vec<Workload> {
    let built = if smoke {
        // one small journalled workload: enough writes for a handful of
        // crash points, seconds of wall time
        vec![journaled_write_workload(&[("tiny".to_string(), vec![0x55u8; 300])])]
    } else {
        let files = vec![
            ("first".to_string(), vec![0x41u8; 900]),
            ("second".to_string(), vec![0x42u8; 500]),
        ];
        vec![
            format_workload(),
            figure1_resize_workload(),
            journaled_write_workload(&files),
            defrag_workload(),
        ]
    };
    built
        .into_iter()
        .map(|w| {
            w.unwrap_or_else(|e| {
                eprintln!("workload construction failed: {e}");
                std::process::exit(1);
            })
        })
        .collect()
}

fn run_bench(smoke: bool, threads: usize, out: &str, store_path: Option<&str>) {
    let cap = if smoke { 8 } else { 64 };
    let reps = if smoke { 1 } else { 3 };
    let sequential_opts = ExploreOptions {
        max_prefix_points: Some(cap),
        ..ExploreOptions::sequential_baseline()
    };
    let parallel_opts = ExploreOptions {
        verdict_cache: false,
        ..ExploreOptions::sampled(cap).with_threads(threads)
    };
    let cached_opts = ExploreOptions::sampled(cap).with_threads(threads);

    let mut rows = Vec::new();
    let mut all_identical = true;
    for workload in build_workloads(smoke) {
        eprintln!(
            "benchmarking '{}' ({} writes, {} flushes)...",
            workload.name,
            workload.trace.write_count(),
            workload.trace.flush_count()
        );
        let (sequential, seq_report) = BenchConfig::measure(&workload, &sequential_opts, reps);
        let (parallel, par_report) = BenchConfig::measure(&workload, &parallel_opts, reps);
        let (parallel_cached, cached_report) =
            BenchConfig::measure(&workload, &cached_opts, reps);
        let identical = seq_report.canonical_signature() == par_report.canonical_signature()
            && seq_report.canonical_signature() == cached_report.canonical_signature();
        all_identical &= identical;
        eprintln!(
            "  sequential {:.1} ms ({} blocks) | parallel {:.1} ms | cached {:.1} ms \
             ({} blocks, {} cache hits) | identical: {identical}",
            sequential.wall_ms,
            sequential.blocks_replayed,
            parallel.wall_ms,
            parallel_cached.wall_ms,
            parallel_cached.blocks_replayed,
            parallel_cached.cache_hits,
        );
        rows.push(BenchRow {
            workload: workload.name.clone(),
            writes: seq_report.writes,
            flushes: seq_report.flushes,
            crash_points: seq_report.outcomes.len(),
            wall_speedup_parallel: sequential.wall_ms / parallel.wall_ms.max(f64::EPSILON),
            wall_speedup_cached: sequential.wall_ms / parallel_cached.wall_ms.max(f64::EPSILON),
            sequential,
            parallel,
            parallel_cached,
            reports_identical: identical,
        });
    }

    let sum = |f: fn(&BenchRow) -> f64| rows.iter().map(f).sum::<f64>();
    let totals = BenchTotals {
        sequential_wall_ms: sum(|r| r.sequential.wall_ms),
        parallel_wall_ms: sum(|r| r.parallel.wall_ms),
        parallel_cached_wall_ms: sum(|r| r.parallel_cached.wall_ms),
        sequential_blocks_replayed: rows.iter().map(|r| r.sequential.blocks_replayed).sum(),
        incremental_blocks_replayed: rows
            .iter()
            .map(|r| r.parallel_cached.blocks_replayed)
            .sum(),
        cache_hits: rows.iter().map(|r| r.parallel_cached.cache_hits).sum(),
        wall_speedup_parallel: sum(|r| r.sequential.wall_ms)
            / sum(|r| r.parallel.wall_ms).max(f64::EPSILON),
        wall_speedup_cached: sum(|r| r.sequential.wall_ms)
            / sum(|r| r.parallel_cached.wall_ms).max(f64::EPSILON),
    };
    eprintln!(
        "total: sequential {:.1} ms / {} blocks -> parallel {:.1} ms ({:.2}x) -> \
         cached {:.1} ms ({:.2}x) / {} blocks, {} cache hits",
        totals.sequential_wall_ms,
        totals.sequential_blocks_replayed,
        totals.parallel_wall_ms,
        totals.wall_speedup_parallel,
        totals.parallel_cached_wall_ms,
        totals.wall_speedup_cached,
        totals.incremental_blocks_replayed,
        totals.cache_hits,
    );

    let default_store = std::env::temp_dir().join("crashsim_corpus.vstore");
    let store_path = store_path
        .map(std::path::PathBuf::from)
        .unwrap_or(default_store);
    let corpus = run_corpus(smoke, threads, &store_path);
    let corpus_ok = corpus.all_reports_identical && corpus.warm_run_clean;
    let corpus_warm_clean = corpus.warm_run_clean;

    let summary = BenchSummary {
        description: "crash-exploration engine benchmark: legacy sequential replay vs rolling \
                      CoW materialisation with a classification worker pool, without and with \
                      image-digest verdict caching; plus corpus-scale partial-order reduction \
                      over a persistent verdict store"
            .to_string(),
        smoke,
        prefix_points_cap: cap,
        rows,
        totals,
        all_reports_identical: all_identical,
        corpus,
    };
    let json = serde_json::to_string_pretty(&summary).unwrap_or_else(|e| {
        eprintln!("serialisation failed: {e}");
        std::process::exit(1);
    });
    if let Err(e) = std::fs::write(out, json + "\n") {
        eprintln!("writing {out} failed: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
    if !all_identical {
        eprintln!("ERROR: engine configurations disagreed on at least one report");
        std::process::exit(1);
    }
    if !corpus_ok {
        if !corpus_warm_clean {
            eprintln!("ERROR: warm-store corpus run still materialised or classified images");
        } else {
            eprintln!("ERROR: a pruned corpus run diverged from the exhaustive enumeration");
        }
        std::process::exit(1);
    }
}

fn run_repro(store_path: Option<&str>) {
    let mut opts = ExploreOptions::sampled(64).with_threads(0);
    let store = store_path.map(|p| {
        let s: Arc<VerdictStore<OutcomeCore>> = Arc::new(VerdictStore::open(p));
        eprintln!("verdict store '{}': {} verdicts preloaded", p, s.preloaded());
        s
    });
    if let Some(s) = &store {
        opts = opts.with_store(Arc::clone(s));
    }
    let mut entries = Vec::new();
    for workload in build_workloads(false) {
        eprintln!(
            "exploring '{}' ({} writes, {} flushes)...",
            workload.name,
            workload.trace.write_count(),
            workload.trace.flush_count()
        );
        let report = match explore(&workload, &opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("exploration of '{}' failed: {e}", workload.name);
                std::process::exit(1);
            }
        };
        let c = report.counts();
        eprintln!(
            "  {} crash points: {} consistent, {} repairable, {} data-loss, {} unrecoverable",
            report.outcomes.len(),
            c.consistent,
            c.repairable,
            c.data_loss,
            c.unrecoverable
        );
        let s = &report.stats;
        eprintln!(
            "  materialisation I/O: {} block writes ({} bulk calls), {} block reads \
             ({} bulk calls), {} vec allocs",
            s.blocks_replayed, s.bulk_writes, s.blocks_read, s.bulk_reads, s.vec_allocs
        );
        entries.push(Entry::from_report(report));
    }
    if let Some(s) = &store {
        eprintln!(
            "verdict store: {} hits, {} misses, {} verdicts held",
            s.hits(),
            s.misses(),
            s.len()
        );
    }

    let summary = Summary {
        description: "crash-consistency exploration: write prefixes, torn final writes and \
                      volatile-cache reorderings of each workload's recorded I/O trace"
            .to_string(),
        entries,
    };
    match serde_json::to_string_pretty(&summary) {
        Ok(json) => println!("{json}"),
        Err(e) => {
            eprintln!("serialisation failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench = false;
    let mut smoke = false;
    let mut threads = 0usize; // 0 = one worker per core
    let mut out = "BENCH_crashsim.json".to_string();
    let mut store: Option<String> = std::env::var("CRASHSIM_STORE").ok();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => bench = true,
            "--smoke" => smoke = true,
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a number");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            "--store" => {
                i += 1;
                store = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--store needs a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: repro_crashsim [--store PATH] \
                     [--bench [--smoke] [--threads N] [--out PATH]]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if bench {
        run_bench(smoke, threads, &out, store.as_deref());
    } else {
        run_repro(store.as_deref());
    }
}
