//! Crash-consistency exploration over the ecosystem's key workloads.
//!
//! Records each workload's write/flush stream, enumerates crash points
//! (write prefixes, torn final writes, out-of-order volatile-cache
//! states), pushes every post-crash image through the recovery stack,
//! and emits the classified results as JSON on stdout. Human-readable
//! progress goes to stderr so the JSON stays parseable.
//!
//! # Benchmark mode
//!
//! `repro_crashsim --bench` races the three engine configurations over
//! the same workloads —
//!
//! * `sequential`: the legacy baseline (full per-point replay, one
//!   thread, no verdict cache);
//! * `parallel`: rolling CoW materialisation + the classification
//!   worker pool;
//! * `parallel_cached`: the same plus image-digest verdict caching —
//!
//! verifies all three produce identical reports (canonical signature),
//! and writes the timings to `BENCH_crashsim.json` (`--out PATH` to
//! redirect). `--smoke` shrinks the run for CI gates; `--threads N`
//! pins the worker count (default: one per core).

use std::time::Instant;

use crashsim::{
    defrag_workload, explore, figure1_resize_workload, format_workload,
    journaled_write_workload, CrashReport, ExploreOptions, ExploreStats, Verdict, VerdictCounts,
    Workload,
};
use serde::Serialize;

/// One workload's results plus the derived summary numbers.
#[derive(Serialize)]
struct Entry {
    workload: String,
    writes: usize,
    flushes: usize,
    crash_points: usize,
    counts: VerdictCounts,
    worst: Verdict,
    corrupting: usize,
    stats: ExploreStats,
    outcomes: Vec<crashsim::CrashOutcome>,
}

impl Entry {
    fn from_report(report: CrashReport) -> Entry {
        Entry {
            workload: report.workload.clone(),
            writes: report.writes,
            flushes: report.flushes,
            crash_points: report.outcomes.len(),
            counts: report.counts(),
            worst: report.worst(),
            corrupting: report.corrupting(),
            stats: report.stats,
            outcomes: report.outcomes,
        }
    }
}

#[derive(Serialize)]
struct Summary {
    description: String,
    entries: Vec<Entry>,
}

/// One engine configuration's measured run over one workload.
#[derive(Serialize)]
struct BenchConfig {
    wall_ms: f64,
    blocks_replayed: u64,
    images_classified: usize,
    cache_hits: usize,
    threads: usize,
}

impl BenchConfig {
    /// Explores `reps` times with `opts` and keeps the fastest wall
    /// time (the runs are deterministic, so the I/O stats and the
    /// report are identical across repetitions).
    fn measure(
        workload: &Workload,
        opts: &ExploreOptions,
        reps: usize,
    ) -> (BenchConfig, CrashReport) {
        let mut best: Option<(f64, CrashReport)> = None;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let report = explore(workload, opts).unwrap_or_else(|e| {
                eprintln!("exploration of '{}' failed: {e}", workload.name);
                std::process::exit(1);
            });
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            if best.as_ref().is_none_or(|(b, _)| wall_ms < *b) {
                best = Some((wall_ms, report));
            }
        }
        let (wall_ms, report) = best.expect("at least one repetition ran");
        let s = report.stats;
        (
            BenchConfig {
                wall_ms,
                blocks_replayed: s.blocks_replayed,
                images_classified: s.images_classified,
                cache_hits: s.cache_hits,
                threads: s.threads,
            },
            report,
        )
    }
}

/// Per-workload comparison of the three engine configurations.
#[derive(Serialize)]
struct BenchRow {
    workload: String,
    writes: usize,
    flushes: usize,
    crash_points: usize,
    sequential: BenchConfig,
    parallel: BenchConfig,
    parallel_cached: BenchConfig,
    wall_speedup_parallel: f64,
    wall_speedup_cached: f64,
    reports_identical: bool,
}

#[derive(Serialize)]
struct BenchTotals {
    sequential_wall_ms: f64,
    parallel_wall_ms: f64,
    parallel_cached_wall_ms: f64,
    sequential_blocks_replayed: u64,
    incremental_blocks_replayed: u64,
    cache_hits: usize,
    wall_speedup_parallel: f64,
    wall_speedup_cached: f64,
}

#[derive(Serialize)]
struct BenchSummary {
    description: String,
    smoke: bool,
    prefix_points_cap: usize,
    rows: Vec<BenchRow>,
    totals: BenchTotals,
    all_reports_identical: bool,
}

fn build_workloads(smoke: bool) -> Vec<Workload> {
    let built = if smoke {
        // one small journalled workload: enough writes for a handful of
        // crash points, seconds of wall time
        vec![journaled_write_workload(&[("tiny".to_string(), vec![0x55u8; 300])])]
    } else {
        let files = vec![
            ("first".to_string(), vec![0x41u8; 900]),
            ("second".to_string(), vec![0x42u8; 500]),
        ];
        vec![
            format_workload(),
            figure1_resize_workload(),
            journaled_write_workload(&files),
            defrag_workload(),
        ]
    };
    built
        .into_iter()
        .map(|w| {
            w.unwrap_or_else(|e| {
                eprintln!("workload construction failed: {e}");
                std::process::exit(1);
            })
        })
        .collect()
}

fn run_bench(smoke: bool, threads: usize, out: &str) {
    let cap = if smoke { 8 } else { 64 };
    let reps = if smoke { 1 } else { 3 };
    let sequential_opts = ExploreOptions {
        max_prefix_points: Some(cap),
        ..ExploreOptions::sequential_baseline()
    };
    let parallel_opts = ExploreOptions {
        verdict_cache: false,
        ..ExploreOptions::sampled(cap).with_threads(threads)
    };
    let cached_opts = ExploreOptions::sampled(cap).with_threads(threads);

    let mut rows = Vec::new();
    let mut all_identical = true;
    for workload in build_workloads(smoke) {
        eprintln!(
            "benchmarking '{}' ({} writes, {} flushes)...",
            workload.name,
            workload.trace.write_count(),
            workload.trace.flush_count()
        );
        let (sequential, seq_report) = BenchConfig::measure(&workload, &sequential_opts, reps);
        let (parallel, par_report) = BenchConfig::measure(&workload, &parallel_opts, reps);
        let (parallel_cached, cached_report) =
            BenchConfig::measure(&workload, &cached_opts, reps);
        let identical = seq_report.canonical_signature() == par_report.canonical_signature()
            && seq_report.canonical_signature() == cached_report.canonical_signature();
        all_identical &= identical;
        eprintln!(
            "  sequential {:.1} ms ({} blocks) | parallel {:.1} ms | cached {:.1} ms \
             ({} blocks, {} cache hits) | identical: {identical}",
            sequential.wall_ms,
            sequential.blocks_replayed,
            parallel.wall_ms,
            parallel_cached.wall_ms,
            parallel_cached.blocks_replayed,
            parallel_cached.cache_hits,
        );
        rows.push(BenchRow {
            workload: workload.name.clone(),
            writes: seq_report.writes,
            flushes: seq_report.flushes,
            crash_points: seq_report.outcomes.len(),
            wall_speedup_parallel: sequential.wall_ms / parallel.wall_ms.max(f64::EPSILON),
            wall_speedup_cached: sequential.wall_ms / parallel_cached.wall_ms.max(f64::EPSILON),
            sequential,
            parallel,
            parallel_cached,
            reports_identical: identical,
        });
    }

    let sum = |f: fn(&BenchRow) -> f64| rows.iter().map(f).sum::<f64>();
    let totals = BenchTotals {
        sequential_wall_ms: sum(|r| r.sequential.wall_ms),
        parallel_wall_ms: sum(|r| r.parallel.wall_ms),
        parallel_cached_wall_ms: sum(|r| r.parallel_cached.wall_ms),
        sequential_blocks_replayed: rows.iter().map(|r| r.sequential.blocks_replayed).sum(),
        incremental_blocks_replayed: rows
            .iter()
            .map(|r| r.parallel_cached.blocks_replayed)
            .sum(),
        cache_hits: rows.iter().map(|r| r.parallel_cached.cache_hits).sum(),
        wall_speedup_parallel: sum(|r| r.sequential.wall_ms)
            / sum(|r| r.parallel.wall_ms).max(f64::EPSILON),
        wall_speedup_cached: sum(|r| r.sequential.wall_ms)
            / sum(|r| r.parallel_cached.wall_ms).max(f64::EPSILON),
    };
    eprintln!(
        "total: sequential {:.1} ms / {} blocks -> parallel {:.1} ms ({:.2}x) -> \
         cached {:.1} ms ({:.2}x) / {} blocks, {} cache hits",
        totals.sequential_wall_ms,
        totals.sequential_blocks_replayed,
        totals.parallel_wall_ms,
        totals.wall_speedup_parallel,
        totals.parallel_cached_wall_ms,
        totals.wall_speedup_cached,
        totals.incremental_blocks_replayed,
        totals.cache_hits,
    );

    let summary = BenchSummary {
        description: "crash-exploration engine benchmark: legacy sequential replay vs rolling \
                      CoW materialisation with a classification worker pool, without and with \
                      image-digest verdict caching"
            .to_string(),
        smoke,
        prefix_points_cap: cap,
        rows,
        totals,
        all_reports_identical: all_identical,
    };
    let json = serde_json::to_string_pretty(&summary).unwrap_or_else(|e| {
        eprintln!("serialisation failed: {e}");
        std::process::exit(1);
    });
    if let Err(e) = std::fs::write(out, json + "\n") {
        eprintln!("writing {out} failed: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
    if !all_identical {
        eprintln!("ERROR: engine configurations disagreed on at least one report");
        std::process::exit(1);
    }
}

fn run_repro() {
    let opts = ExploreOptions::sampled(64).with_threads(0);
    let mut entries = Vec::new();
    for workload in build_workloads(false) {
        eprintln!(
            "exploring '{}' ({} writes, {} flushes)...",
            workload.name,
            workload.trace.write_count(),
            workload.trace.flush_count()
        );
        let report = match explore(&workload, &opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("exploration of '{}' failed: {e}", workload.name);
                std::process::exit(1);
            }
        };
        let c = report.counts();
        eprintln!(
            "  {} crash points: {} consistent, {} repairable, {} data-loss, {} unrecoverable",
            report.outcomes.len(),
            c.consistent,
            c.repairable,
            c.data_loss,
            c.unrecoverable
        );
        let s = &report.stats;
        eprintln!(
            "  materialisation I/O: {} block writes ({} bulk calls), {} block reads \
             ({} bulk calls), {} vec allocs",
            s.blocks_replayed, s.bulk_writes, s.blocks_read, s.bulk_reads, s.vec_allocs
        );
        entries.push(Entry::from_report(report));
    }

    let summary = Summary {
        description: "crash-consistency exploration: write prefixes, torn final writes and \
                      volatile-cache reorderings of each workload's recorded I/O trace"
            .to_string(),
        entries,
    };
    match serde_json::to_string_pretty(&summary) {
        Ok(json) => println!("{json}"),
        Err(e) => {
            eprintln!("serialisation failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench = false;
    let mut smoke = false;
    let mut threads = 0usize; // 0 = one worker per core
    let mut out = "BENCH_crashsim.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => bench = true,
            "--smoke" => smoke = true,
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a number");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: repro_crashsim [--bench [--smoke] [--threads N] [--out PATH]]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if bench {
        run_bench(smoke, threads, &out);
    } else {
        run_repro();
    }
}
