//! Crash-consistency exploration over the ecosystem's key workloads.
//!
//! Records each workload's write/flush stream, enumerates crash points
//! (write prefixes, torn final writes, out-of-order volatile-cache
//! states), pushes every post-crash image through the recovery stack,
//! and emits the classified results as JSON on stdout. Human-readable
//! progress goes to stderr so the JSON stays parseable.

use crashsim::{
    defrag_workload, explore, figure1_resize_workload, format_workload,
    journaled_write_workload, CrashReport, ExploreOptions, Verdict, VerdictCounts,
};
use serde::Serialize;

/// One workload's results plus the derived summary numbers.
#[derive(Serialize)]
struct Entry {
    workload: String,
    writes: usize,
    flushes: usize,
    crash_points: usize,
    counts: VerdictCounts,
    worst: Verdict,
    corrupting: usize,
    outcomes: Vec<crashsim::CrashOutcome>,
}

impl Entry {
    fn from_report(report: CrashReport) -> Entry {
        Entry {
            workload: report.workload.clone(),
            writes: report.writes,
            flushes: report.flushes,
            crash_points: report.outcomes.len(),
            counts: report.counts(),
            worst: report.worst(),
            corrupting: report.corrupting(),
            outcomes: report.outcomes,
        }
    }
}

#[derive(Serialize)]
struct Summary {
    description: String,
    entries: Vec<Entry>,
}

fn main() {
    let opts = ExploreOptions::sampled(64);
    let files = vec![
        ("first".to_string(), vec![0x41u8; 900]),
        ("second".to_string(), vec![0x42u8; 500]),
    ];
    let workloads = vec![
        format_workload(),
        figure1_resize_workload(),
        journaled_write_workload(&files),
        defrag_workload(),
    ];

    let mut entries = Vec::new();
    for built in workloads {
        let workload = match built {
            Ok(w) => w,
            Err(e) => {
                eprintln!("workload construction failed: {e}");
                std::process::exit(1);
            }
        };
        eprintln!(
            "exploring '{}' ({} writes, {} flushes)...",
            workload.name,
            workload.trace.write_count(),
            workload.trace.flush_count()
        );
        let report = match explore(&workload, &opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("exploration of '{}' failed: {e}", workload.name);
                std::process::exit(1);
            }
        };
        let c = report.counts();
        eprintln!(
            "  {} crash points: {} consistent, {} repairable, {} data-loss, {} unrecoverable",
            report.outcomes.len(),
            c.consistent,
            c.repairable,
            c.data_loss,
            c.unrecoverable
        );
        entries.push(Entry::from_report(report));
    }

    let summary = Summary {
        description: "crash-consistency exploration: write prefixes, torn final writes and \
                      volatile-cache reorderings of each workload's recorded I/O trace"
            .to_string(),
        entries,
    };
    match serde_json::to_string_pretty(&summary) {
        Ok(json) => println!("{json}"),
        Err(e) => {
            eprintln!("serialisation failed: {e}");
            std::process::exit(1);
        }
    }
}
