//! Reproduces Figure 2: the four typical stages of configuring a file
//! system — create (mke2fs), mount (mount), online (e4defrag), and
//! offline (resize2fs, e2fsck) — driven for real against the simulator.

use blockdev::MemDevice;
use e2fstools::{E2fsck, E4defrag, FsckMode, Mke2fs, MountCmd, Resize2fs};
use ext4sim::Ext4Fs;

fn main() {
    println!("== Figure 2: Methods of Configuring File Systems ==");
    println!();

    // (a) create
    let mkfs = Mke2fs::from_args(&["-b", "1024", "-L", "fig2", "-m", "5", "/dev/fig2", "12288"])
        .expect("parses");
    let (dev, report) = mkfs.run(MemDevice::new(1024, 16384)).expect("formats");
    println!(
        "create : mke2fs -b 1024 -L fig2 -m 5  -> {} blocks, {} groups, features [{}]",
        report.blocks_count, report.group_count, report.features
    );

    // (a) mount + use
    let mount = MountCmd::from_option_string("data=ordered,barrier").expect("parses");
    let mut fs = mount.run(dev).expect("mounts");
    let root = fs.root_inode();
    let f1 = fs.create_file(root, "a.log").expect("create");
    let f2 = fs.create_file(root, "b.log").expect("create");
    for i in 0..6u64 {
        fs.write_file(f1, i * 1024, &[0xAA; 1024]).expect("write");
        fs.write_file(f2, i * 1024, &[0xBB; 1024]).expect("write");
    }
    println!("mount  : mount -o data=ordered,barrier  -> rw mount, wrote 2 interleaved files");

    // (b) online: e4defrag
    let defrag = E4defrag::new();
    let rep = defrag.run(&mut fs).expect("defrags");
    println!(
        "online : e4defrag  -> {} files, extents {} -> {}",
        rep.files_checked, rep.extents_before, rep.extents_after
    );
    let dev = fs.unmount().expect("unmounts");

    // (c) offline: resize2fs
    let (dev, res) = Resize2fs::to_size(16384).run(dev).expect("resizes");
    println!("offline: resize2fs {} -> {} blocks", res.old_blocks, res.new_blocks);

    // (c) offline: e2fsck
    let (dev, fsck) = E2fsck::with_mode(FsckMode::Fix).forced().run(dev).expect("checks");
    println!(
        "offline: e2fsck -f -y  -> exit {}, {} fixes",
        fsck.exit_code,
        fsck.fixes.len()
    );

    // final state
    let fs = Ext4Fs::mount(dev, &ext4sim::MountOptions::read_only()).expect("remounts");
    let (blocks, free, inodes, free_inodes) = fs.statfs();
    println!();
    println!(
        "final image: {blocks} blocks ({free} free), {inodes} inodes ({free_inodes} free), label '{}'",
        fs.superblock().label()
    );
    println!();
    println!("paper: an FS ecosystem is configured via different utilities at all four stages");
}
