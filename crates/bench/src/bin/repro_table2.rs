//! Regenerates Table 2: configuration coverage of test suites.

use study::coverage_table;

fn main() {
    let rows: Vec<Vec<String>> = coverage_table()
        .into_iter()
        .map(|r| {
            vec![
                r.suite.clone(),
                r.target.clone(),
                format!(">{}", r.total - 1),
                format!("{} (<= {:.1}%)", r.used, r.pct()),
            ]
        })
        .collect();
    print!(
        "{}",
        bench::render_table(
            "Table 2: Configuration Coverage of Test Suites",
            &["Test Suite", "Target Software", "# Params Total", "# Params Used"],
            &rows,
        )
    );
    println!();
    println!("paper: xfstest 29 of >85 (<34.1%); e2fsprogs-test 6 of >35 (<17.1%) / 7 of >15 (<46.7%)");
}
