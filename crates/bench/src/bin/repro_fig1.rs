//! Reproduces Figure 1 end to end: when the `sparse_super2` feature is
//! enabled and `resize2fs`'s size parameter exceeds the file-system
//! size, expanding the file system corrupts the metadata (incorrect free
//! blocks). The same expansion with the dependency unsatisfied (either
//! condition false) is clean.

use blockdev::MemDevice;
use e2fstools::{E2fsck, FsckMode, Mke2fs, Resize2fs, ResizeQuirks};

fn run_case(features: &str, target: u64, label: &str) {
    let mut args = vec!["-b", "1024"];
    if !features.is_empty() {
        args.push("-O");
        args.push(features);
    }
    args.push("/dev/fig1");
    args.push("12288");
    let dev = Mke2fs::from_args(&args)
        .expect("parses")
        .run(MemDevice::new(1024, 16384))
        .expect("formats")
        .0;
    let (before_blocks, _) = (12288u64, ());
    let (dev, res) = Resize2fs::to_size(target).run(dev).expect("resize runs");
    let (_, fsck) = E2fsck::with_mode(FsckMode::Check).forced().run(dev).expect("fsck runs");
    let verdict = if fsck.exit_code == 0 { "CLEAN" } else { "CORRUPTED" };
    println!(
        "{label}: {} -> {} blocks | e2fsck: {verdict}",
        before_blocks, res.new_blocks
    );
    for inc in &fsck.report.inconsistencies {
        println!("    finding: {:?}", inc.kind);
    }
}

fn main() {
    println!("== Figure 1: A Configuration-Related Issue of Ext4 ==");
    println!("dependencies: (1) P1 = sparse_super2 enabled; (2) P3 (resize2fs size) > P2 (Ext4 size)");
    println!();

    println!("-- both dependencies satisfied (the bug) --");
    run_case("sparse_super2,^sparse_super,^resize_inode", 16384, "sparse_super2 + expand");
    println!();

    println!("-- dependency (1) unsatisfied --");
    run_case("", 16384, "default features + expand");
    println!();

    println!("-- dependency (2) unsatisfied --");
    run_case("sparse_super2,^sparse_super,^resize_inode", 12288, "sparse_super2 + same size");
    println!();

    println!("-- fixed resize2fs (quirk disabled) --");
    let dev = Mke2fs::from_args(&[
        "-b", "1024", "-O", "sparse_super2,^sparse_super,^resize_inode", "/dev/fig1", "12288",
    ])
    .expect("parses")
    .run(MemDevice::new(1024, 16384))
    .expect("formats")
    .0;
    let quirks = ResizeQuirks { sparse_super2_resize_bug: false };
    let (dev, _) = Resize2fs::to_size(16384).with_quirks(quirks).run(dev).expect("resize");
    let (_, fsck) = E2fsck::with_mode(FsckMode::Check).forced().run(dev).expect("fsck");
    println!(
        "fixed resize2fs + expand | e2fsck: {}",
        if fsck.exit_code == 0 { "CLEAN" } else { "CORRUPTED" }
    );
    println!();
    println!("paper: only the (sparse_super2, expand) combination corrupts the free-block metadata");
}
