//! Regenerates Table 4: the taxonomy of critical configuration
//! dependencies observed in the corpus.

use study::{observed_sub_categories, taxonomy_table, total_critical_deps};

fn main() {
    let rows: Vec<Vec<String>> = taxonomy_table()
        .into_iter()
        .map(|r| {
            vec![
                r.kind.category().to_string(),
                r.kind.sub_category().to_string(),
                r.description.clone(),
                if r.observed { "Y".to_string() } else { "N".to_string() },
                if r.observed { r.count.to_string() } else { "-".to_string() },
            ]
        })
        .collect();
    print!(
        "{}",
        bench::render_table(
            "Table 4: A Taxonomy of Critical Configuration Dependencies",
            &["Category", "Sub-category", "Description", "Exist?", "Count"],
            &rows,
        )
    );
    println!();
    println!(
        "total: {} critical dependencies; {}/7 sub-categories observed",
        total_critical_deps(),
        observed_sub_categories()
    );
    println!("paper: 132 total; 5/7 observed (33/30/4/-/1/-/64)");
}
