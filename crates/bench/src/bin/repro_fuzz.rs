//! Coverage-guided constraint-fuzzing benchmark.
//!
//! Races the three ConBugCk campaign strategies — solver-guided
//! (coverage-seeded rounds plus pool-driven mutation), the legacy
//! dependency-aware generator, and naive random — under the same
//! dedup-and-memoize execution loop at several worker counts, and
//! checks the incremental verdict store: a cold persistent campaign
//! followed by a warm rerun that must execute nothing and reproduce
//! every verdict bit for bit.
//!
//! Writes the measurements to `BENCH_fuzz.json` (`--out PATH` to
//! redirect; `--store PATH` relocates the persistent verdict store,
//! default `target/fuzz_verdicts.vstr`). `--smoke` shrinks the round
//! and batch sizes for CI gates; `--threads N` replaces the default
//! 1/4/16 ladder with a single level.
//!
//! Exits nonzero when the solver strategy misses any achievable
//! polarity target, when the warm store rerun executes a config, or
//! when warm and cold campaigns disagree on any verdict.

use std::path::PathBuf;

use confdep::{extract_scenario, models, ConstraintSet, ExtractOptions};
use contools::fuzz::{fuzz_campaign, FuzzOptions, FuzzOutcome, FuzzReport, Strategy};
use serde::Serialize;

/// One strategy's measurement at one worker count.
#[derive(Serialize)]
struct Arm {
    report: FuzzReport,
    verdicts_per_sec: f64,
}

/// All three strategies at one worker count.
#[derive(Serialize)]
struct ThreadLevel {
    threads: usize,
    solver: Arm,
    aware: Arm,
    naive: Arm,
    /// Solver unique-verdict throughput over the aware generator's.
    speedup_vs_aware: f64,
    /// ... and over the naive generator's.
    speedup_vs_naive: f64,
}

/// The persistent-store leg: cold campaign, then a warm rerun.
#[derive(Serialize)]
struct StoreLeg {
    path: String,
    cold: FuzzReport,
    warm: FuzzReport,
    /// Configs the warm rerun executed (must be 0).
    warm_executed_fresh: usize,
    /// Whether warm and cold agreed on every verdict, bit for bit.
    verdicts_identical: bool,
}

#[derive(Serialize)]
struct Summary {
    description: String,
    smoke: bool,
    seed: u64,
    rounds: usize,
    batch: usize,
    thread_levels: Vec<ThreadLevel>,
    /// Solver coverage == universe at every thread level.
    solver_full_coverage: bool,
    /// Legacy-generator coverage fractions (highest thread level).
    aware_coverage_fraction: f64,
    naive_coverage_fraction: f64,
    store: StoreLeg,
}

/// Runs one campaign `reps` times (the verdict stream is deterministic)
/// and keeps the fastest wall time.
fn measure(set: &ConstraintSet, opts: &FuzzOptions, reps: usize) -> FuzzOutcome {
    let mut best: Option<FuzzOutcome> = None;
    for _ in 0..reps.max(1) {
        let outcome = fuzz_campaign(set, opts);
        if best.as_ref().is_none_or(|b| outcome.report.wall_ms < b.report.wall_ms) {
            best = Some(outcome);
        }
    }
    best.expect("at least one repetition ran")
}

fn arm(set: &ConstraintSet, opts: &FuzzOptions, reps: usize) -> (Arm, FuzzOutcome) {
    let outcome = measure(set, opts, reps);
    let vps = outcome.report.verdicts_per_sec();
    (Arm { report: outcome.report.clone(), verdicts_per_sec: vps }, outcome)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut thread_override: Option<usize> = None;
    let mut out = "BENCH_fuzz.json".to_string();
    let mut store_path = "target/fuzz_verdicts.vstr".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {} // benchmark is the only mode
            "--smoke" => smoke = true,
            "--threads" => {
                i += 1;
                thread_override =
                    Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--threads needs a number");
                        std::process::exit(2);
                    }));
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            "--store" => {
                i += 1;
                store_path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--store needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let seed = 42u64;
    let (rounds, batch) = if smoke { (2, 12) } else { (6, 64) };
    let reps = if smoke { 1 } else { 2 };
    let levels: Vec<usize> = match thread_override {
        Some(n) => vec![n],
        None if smoke => vec![1, 2],
        None => vec![1, 4, 16],
    };

    let set = match extract_scenario(&models::all(), ExtractOptions::default()) {
        Ok(deps) => ConstraintSet::compile(deps),
        Err(e) => {
            eprintln!("extraction failed: {e}");
            std::process::exit(1);
        }
    };

    let opts = |strategy: Strategy, threads: usize| FuzzOptions {
        seed,
        rounds,
        batch,
        threads,
        strategy,
        store_path: None,
    };

    let mut thread_levels = Vec::new();
    let mut solver_full_coverage = true;
    let mut aware_fraction = 0.0;
    let mut naive_fraction = 0.0;
    for &threads in &levels {
        eprintln!("fuzzing at {threads} thread(s): solver vs aware vs naive ...");
        let (solver, _) = arm(&set, &opts(Strategy::Solver, threads), reps);
        let (aware, _) = arm(&set, &opts(Strategy::Aware, threads), reps);
        let (naive, _) = arm(&set, &opts(Strategy::Naive, threads), reps);
        eprintln!(
            "  solver {}/{} targets, {} verdicts in {} ms ({:.0}/s) | \
             aware {} verdicts in {} ms ({:.0}/s) | naive {} verdicts in {} ms ({:.0}/s)",
            solver.report.coverage_covered,
            solver.report.coverage_universe,
            solver.report.unique_verdicts,
            solver.report.wall_ms,
            solver.verdicts_per_sec,
            aware.report.unique_verdicts,
            aware.report.wall_ms,
            aware.verdicts_per_sec,
            naive.report.unique_verdicts,
            naive.report.wall_ms,
            naive.verdicts_per_sec,
        );
        solver_full_coverage &=
            solver.report.coverage_covered == solver.report.coverage_universe;
        aware_fraction = aware.report.coverage_fraction;
        naive_fraction = naive.report.coverage_fraction;
        thread_levels.push(ThreadLevel {
            threads,
            speedup_vs_aware: solver.verdicts_per_sec / aware.verdicts_per_sec.max(f64::EPSILON),
            speedup_vs_naive: solver.verdicts_per_sec / naive.verdicts_per_sec.max(f64::EPSILON),
            solver,
            aware,
            naive,
        });
    }

    // store leg: cold campaign into a fresh persistent store, then a
    // warm rerun that must re-execute nothing and agree everywhere
    let store_threads = *levels.last().expect("at least one thread level");
    if let Some(parent) = PathBuf::from(&store_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let _ = std::fs::remove_file(&store_path);
    let store_opts = FuzzOptions {
        store_path: Some(PathBuf::from(&store_path)),
        ..opts(Strategy::Solver, store_threads)
    };
    eprintln!("cold campaign into {store_path} ...");
    let cold = fuzz_campaign(&set, &store_opts);
    eprintln!(
        "  {} verdicts, {} executed fresh",
        cold.report.unique_verdicts, cold.report.executed_fresh
    );
    eprintln!("warm rerun ...");
    let warm = fuzz_campaign(&set, &store_opts);
    eprintln!(
        "  {} verdicts, {} executed fresh, {} preloaded",
        warm.report.unique_verdicts, warm.report.executed_fresh, warm.report.store_preloaded
    );
    let verdicts_identical =
        warm.verdicts == cold.verdicts && warm.report.same_verdicts(&cold.report);
    let warm_executed_fresh = warm.report.executed_fresh;

    let store = StoreLeg {
        path: store_path,
        cold: cold.report,
        warm: warm.report,
        warm_executed_fresh,
        verdicts_identical,
    };
    let summary = Summary {
        description: "coverage-guided constraint fuzzing: solver-seeded campaigns vs the \
                      legacy dependency-aware and naive random generators under the same \
                      dedup-and-memoize loop, plus the incremental verdict store \
                      (cold campaign, then a warm rerun that executes nothing)"
            .to_string(),
        smoke,
        seed,
        rounds,
        batch,
        thread_levels,
        solver_full_coverage,
        aware_coverage_fraction: aware_fraction,
        naive_coverage_fraction: naive_fraction,
        store,
    };
    let json = serde_json::to_string_pretty(&summary).unwrap_or_else(|e| {
        eprintln!("serialisation failed: {e}");
        std::process::exit(1);
    });
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("writing {out} failed: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");

    if !solver_full_coverage {
        eprintln!("ERROR: the solver-guided campaign missed achievable polarity targets");
        std::process::exit(1);
    }
    if warm_executed_fresh != 0 {
        eprintln!("ERROR: the warm store rerun executed {warm_executed_fresh} configs");
        std::process::exit(1);
    }
    if !verdicts_identical {
        eprintln!("ERROR: warm and cold campaigns disagreed on at least one verdict");
        std::process::exit(1);
    }
}
