//! Regenerates Table 1: configuration methods of popular file systems.

use study::fs_catalog;

fn main() {
    let rows: Vec<Vec<String>> = fs_catalog()
        .into_iter()
        .map(|e| {
            let cell = |v: &[&str]| if v.is_empty() { "-".to_string() } else { v.join(", ") };
            vec![
                format!("{} ({})", e.fs, e.os),
                cell(&e.create),
                cell(&e.mount),
                cell(&e.online),
                cell(&e.offline),
            ]
        })
        .collect();
    print!(
        "{}",
        bench::render_table(
            "Table 1: Configuration methods for different file systems",
            &["FS (OS)", "Create", "Mount", "Online", "Offline"],
            &rows,
        )
    );
    println!();
    println!(
        "paper: 8 file systems, all with multi-stage modular configuration; MINIX lacks an online utility"
    );
}
