//! Fault-injection conformance campaigns over the configuration grid.
//!
//! Sweeps the standard mixed-metadata workload through every enumerated
//! single-fault schedule under all 12 configurations (3 `errors=`
//! policies × journal on/off × write-back/write-through cache), prints
//! the ConHandleCk-style conformance table to stderr, and emits the
//! classified results as JSON on stdout.
//!
//! # Benchmark mode
//!
//! `repro_faultsim --bench` races three engine configurations over the
//! same sweep —
//!
//! * `single`: one thread, no verdict cache;
//! * `parallel`: the classification worker pool, no cache;
//! * `parallel_cached`: the pool plus image-digest recovery memoisation
//!   shared across all 12 configurations —
//!
//! verifies all three produce identical reports (canonical signatures),
//! asserts zero `Panic` verdicts and full policy conformance, and
//! writes the timings to `BENCH_faultsim.json` (`--out PATH` to
//! redirect). `--smoke` shrinks the sampling caps for CI gates;
//! `--threads N` pins the worker count (default: one per core).

use std::time::Instant;

use faultsim::{
    conformance_sweep, format_conformance_table, CampaignOptions, CampaignReport,
    ConformanceRow, VerdictCounts,
};
use serde::Serialize;

/// Sampling caps for the two run sizes.
fn base_options(smoke: bool) -> CampaignOptions {
    if smoke {
        CampaignOptions::smoke()
    } else {
        CampaignOptions::default()
    }
}

/// One engine configuration's measured sweep.
#[derive(Serialize)]
struct BenchConfig {
    wall_ms: f64,
    faults_explored: usize,
    cache_hits: usize,
    cache_misses: usize,
    threads: usize,
}

/// Runs the full-grid sweep `reps` times with `opts`, keeping the
/// fastest wall time (the sweep is deterministic, so the reports are
/// identical across repetitions).
fn measure(
    opts: &CampaignOptions,
    reps: usize,
) -> (BenchConfig, Vec<ConformanceRow>, Vec<CampaignReport>) {
    let mut best: Option<(f64, Vec<ConformanceRow>, Vec<CampaignReport>)> = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let (rows, reports) = conformance_sweep(opts).unwrap_or_else(|e| {
            eprintln!("conformance sweep failed: {e}");
            std::process::exit(1);
        });
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if best.as_ref().is_none_or(|(b, _, _)| wall_ms < *b) {
            best = Some((wall_ms, rows, reports));
        }
    }
    let (wall_ms, rows, reports) = best.expect("at least one repetition ran");
    let cfg = BenchConfig {
        wall_ms,
        faults_explored: reports.iter().map(|r| r.stats.faults_explored).sum(),
        cache_hits: reports.iter().map(|r| r.stats.digest_cache_hits).sum(),
        cache_misses: reports.iter().map(|r| r.stats.digest_cache_misses).sum(),
        threads: conpool::effective_threads(opts.threads),
    };
    (cfg, rows, reports)
}

/// Order-independent signature of a whole sweep: every report's
/// canonical signature, concatenated in grid order.
fn sweep_signature(reports: &[CampaignReport]) -> Vec<String> {
    reports.iter().flat_map(CampaignReport::canonical_signature).collect()
}

fn total_counts(rows: &[ConformanceRow]) -> VerdictCounts {
    let mut total = VerdictCounts::default();
    for r in rows {
        total.clean_error += r.counts.clean_error;
        total.degraded_read_only += r.counts.degraded_read_only;
        total.data_loss += r.counts.data_loss;
        total.policy_violation += r.counts.policy_violation;
        total.panic += r.counts.panic;
    }
    total
}

#[derive(Serialize)]
struct BenchTotals {
    single_wall_ms: f64,
    parallel_wall_ms: f64,
    parallel_cached_wall_ms: f64,
    faults_explored: usize,
    cache_hits: usize,
    cache_misses: usize,
    wall_speedup_parallel: f64,
    wall_speedup_cached: f64,
}

#[derive(Serialize)]
struct BenchSummary {
    description: String,
    smoke: bool,
    configs: usize,
    single: BenchConfig,
    parallel: BenchConfig,
    parallel_cached: BenchConfig,
    rows: Vec<ConformanceRow>,
    counts: VerdictCounts,
    totals: BenchTotals,
    all_reports_identical: bool,
    zero_panics: bool,
    all_policies_honoured: bool,
}

fn run_bench(smoke: bool, threads: usize, out: &str) {
    let reps = if smoke { 1 } else { 2 };
    let single_opts = CampaignOptions {
        threads: 1,
        verdict_cache: false,
        ..base_options(smoke)
    };
    let parallel_opts = CampaignOptions {
        threads,
        verdict_cache: false,
        ..base_options(smoke)
    };
    let cached_opts = CampaignOptions { threads, verdict_cache: true, ..base_options(smoke) };

    eprintln!("sweeping the 12-configuration grid (single-threaded, uncached)...");
    let (single, _, single_reports) = measure(&single_opts, reps);
    eprintln!(
        "  {:.1} ms / {} faults",
        single.wall_ms, single.faults_explored
    );
    eprintln!("sweeping with the worker pool ({} threads, uncached)...", {
        conpool::effective_threads(threads)
    });
    let (parallel, _, parallel_reports) = measure(&parallel_opts, reps);
    eprintln!("  {:.1} ms", parallel.wall_ms);
    eprintln!("sweeping with the worker pool + shared digest cache...");
    let (parallel_cached, rows, cached_reports) = measure(&cached_opts, reps);
    eprintln!(
        "  {:.1} ms, {} cache hits / {} misses",
        parallel_cached.wall_ms, parallel_cached.cache_hits, parallel_cached.cache_misses
    );

    let identical = sweep_signature(&single_reports) == sweep_signature(&parallel_reports)
        && sweep_signature(&single_reports) == sweep_signature(&cached_reports);
    let counts = total_counts(&rows);
    let zero_panics = counts.panic == 0;
    let honoured = rows.iter().all(|r| r.honoured);

    eprint!("{}", format_conformance_table(&rows));
    eprintln!(
        "reports identical across engines: {identical} | zero panics: {zero_panics} | \
         all policies honoured: {honoured}"
    );

    let totals = BenchTotals {
        single_wall_ms: single.wall_ms,
        parallel_wall_ms: parallel.wall_ms,
        parallel_cached_wall_ms: parallel_cached.wall_ms,
        faults_explored: single.faults_explored,
        cache_hits: parallel_cached.cache_hits,
        cache_misses: parallel_cached.cache_misses,
        wall_speedup_parallel: single.wall_ms / parallel.wall_ms.max(f64::EPSILON),
        wall_speedup_cached: single.wall_ms / parallel_cached.wall_ms.max(f64::EPSILON),
    };
    let summary = BenchSummary {
        description: "fault-injection campaign benchmark: single-threaded uncached sweep vs \
                      the classification worker pool, without and with image-digest recovery \
                      memoisation shared across the configuration grid"
            .to_string(),
        smoke,
        configs: rows.len(),
        single,
        parallel,
        parallel_cached,
        rows,
        counts,
        totals,
        all_reports_identical: identical,
        zero_panics,
        all_policies_honoured: honoured,
    };
    let json = serde_json::to_string_pretty(&summary).unwrap_or_else(|e| {
        eprintln!("serialisation failed: {e}");
        std::process::exit(1);
    });
    if let Err(e) = std::fs::write(out, json + "\n") {
        eprintln!("writing {out} failed: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
    if !identical {
        eprintln!("ERROR: engine configurations disagreed on at least one report");
        std::process::exit(1);
    }
    if !zero_panics {
        eprintln!("ERROR: at least one fault schedule ended in a panic verdict");
        std::process::exit(1);
    }
    if !honoured {
        eprintln!("ERROR: at least one configuration violated its errors= policy");
        std::process::exit(1);
    }
}

/// Per-campaign entry of the repro-mode JSON.
#[derive(Serialize)]
struct Entry {
    workload: String,
    config: faultsim::CampaignConfig,
    faults_explored: usize,
    counts: VerdictCounts,
    outcomes: Vec<faultsim::FaultOutcome>,
}

#[derive(Serialize)]
struct Summary {
    description: String,
    rows: Vec<ConformanceRow>,
    entries: Vec<Entry>,
}

fn run_repro(threads: usize) {
    let opts = CampaignOptions { threads, ..CampaignOptions::default() };
    let (rows, reports) = conformance_sweep(&opts).unwrap_or_else(|e| {
        eprintln!("conformance sweep failed: {e}");
        std::process::exit(1);
    });
    eprint!("{}", format_conformance_table(&rows));
    let entries = reports
        .into_iter()
        .map(|r| Entry {
            workload: r.workload.clone(),
            config: r.config.clone(),
            faults_explored: r.stats.faults_explored,
            counts: r.counts(),
            outcomes: r.outcomes,
        })
        .collect();
    let summary = Summary {
        description: "single-fault injection campaigns over the errors= policy × journal × \
                      cache-policy configuration grid, every schedule classified through the \
                      full recovery stack"
            .to_string(),
        rows,
        entries,
    };
    match serde_json::to_string_pretty(&summary) {
        Ok(json) => println!("{json}"),
        Err(e) => {
            eprintln!("serialisation failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench = false;
    let mut smoke = false;
    let mut threads = 0usize; // 0 = one worker per core
    let mut out = "BENCH_faultsim.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => bench = true,
            "--smoke" => smoke = true,
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                });
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: repro_faultsim [--bench [--smoke] [--threads N] [--out PATH]]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if bench {
        run_bench(smoke, threads, &out);
    } else {
        run_repro(threads);
    }
}
