//! Seeded synthetic CIR program generator for the analyzer benchmark.
//!
//! The six real component models are too small to separate the
//! propagation engines; this module generates arbitrarily large CIR
//! sources with the shapes that matter to a taint analysis:
//!
//! * **reverse def-use chains** (`x0 = x1 + 1; … xN = param;`) laid out
//!   against program order — the worst case of a Gauss–Seidel sweep,
//!   which moves the taint one link per whole-program pass (`O(N²)`
//!   instruction visits) while a def-use worklist does `O(N)`;
//! * failing and non-failing **branches** over tainted comparisons and
//!   `&&`/`||` combinations (what fact extraction consumes);
//! * **metadata reads and writes** (the cross-component bridge);
//! * **calls** (uninterpreted taint joins) and **cross-function
//!   variables** feeding the inter-procedural mode.
//!
//! Generation is a pure function of [`SynthSpec`] — a splitmix64 stream
//! seeded from `spec.seed`, no wall clock, no ambient randomness — so
//! every consumer (benchmark, property tests) sees reproducible
//! programs.

use std::fmt::Write as _;

/// Scale knobs of one synthetic program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthSpec {
    /// Number of functions.
    pub functions: usize,
    /// Chain/branch blocks per function (each block is a reverse chain
    /// feeding a branch).
    pub blocks: usize,
    /// Number of configuration parameters.
    pub params: usize,
    /// Number of shared-metadata fields.
    pub meta_fields: usize,
    /// PRNG seed; equal specs generate byte-identical sources.
    pub seed: u64,
}

impl SynthSpec {
    /// A small default: a few functions of a few blocks.
    pub fn small(seed: u64) -> SynthSpec {
        SynthSpec { functions: 4, blocks: 3, params: 4, meta_fields: 2, seed }
    }
}

/// splitmix64 — the same tiny deterministic stream the rest of the
/// workspace uses for seeded generation.
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Generates the CIR source of one synthetic component.
///
/// The component is named `synth_<seed>`; the returned source always
/// compiles (asserted by the generator tests and, transitively, by
/// every benchmark run).
pub fn synth_model(spec: &SynthSpec) -> String {
    let mut rng = SplitMix64(spec.seed ^ 0xc0ff_ee00_dead_beef);
    let params = spec.params.max(1);
    let meta_fields = spec.meta_fields.max(1);
    let functions = spec.functions.max(1);
    let blocks = spec.blocks.max(1);

    let mut src = String::new();
    let _ = writeln!(src, "component synth_{};", spec.seed);

    let fields: Vec<String> = (0..meta_fields).map(|i| format!("m{i}")).collect();
    let _ = writeln!(src, "metadata sb {{ {} }}", fields.join(", "));
    for p in 0..params {
        // a mix of numeric options and boolean feature flags
        if p % 3 == 2 {
            let _ = writeln!(src, "param bool flag{p} = feature(\"f{p}\");");
        } else {
            let _ = writeln!(src, "param int opt{p} = option(\"-o{p}\");");
        }
    }

    // cross-function flow: function fi seeds `share{fi}` from one of
    // its chains; later functions may source a chain from `share{fi-1}`
    for fi in 0..functions {
        let _ = writeln!(src, "fn work{fi}() {{");
        for b in 0..blocks {
            // chain length scales with the block index so each program
            // mixes short and long chains
            let len = 3 + rng.below(6) + 2 * b.min(8);
            let var = |j: usize| format!("f{fi}_b{b}_x{j}");
            // the reverse chain: defs appear before the defs they read
            for j in 0..len {
                let _ = writeln!(src, "    {} = {} + 1;", var(j), var(j + 1));
            }
            // the chain's source: a param, a metadata read, a call over
            // a param, or (when available) a cross-function variable
            let source = match rng.below(if fi > 0 { 4 } else { 3 }) {
                0 => {
                    let p = rng.below(params);
                    if p % 3 == 2 { format!("flag{p}") } else { format!("opt{p}") }
                }
                1 => format!("sb.m{}", rng.below(meta_fields)),
                2 => {
                    let p = rng.below(params);
                    let arg = if p % 3 == 2 { format!("flag{p}") } else { format!("opt{p}") };
                    format!("derive{}({arg}, {})", rng.below(5), rng.below(100))
                }
                _ => format!("share{}", rng.below(fi)),
            };
            let _ = writeln!(src, "    {} = {source};", var(len));

            // every block ends in a branch over the chain head; some
            // fail, some write metadata, some call
            let k = rng.below(4096);
            match rng.below(4) {
                0 => {
                    let _ = writeln!(
                        src,
                        "    if ({} > {k}) {{ fail(\"f{fi}b{b} out of range\"); }}",
                        var(0)
                    );
                }
                1 => {
                    // a compound condition joining two taint sources
                    let p = rng.below(params);
                    let other =
                        if p % 3 == 2 { format!("flag{p}") } else { format!("opt{p} > {k}") };
                    let _ = writeln!(src, "    both = {} > {k} && {other};", var(0));
                    let _ = writeln!(src, "    if (both) {{ fail(\"f{fi}b{b} conflict\"); }}");
                }
                2 => {
                    let _ = writeln!(src, "    sb.m{} = {};", rng.below(meta_fields), var(0));
                    let _ = writeln!(
                        src,
                        "    if ({} < {}) {{ apply{}({}); }}",
                        var(0),
                        k,
                        rng.below(5),
                        var(0)
                    );
                }
                _ => {
                    let _ = writeln!(src, "    consume{}({}, {k});", rng.below(5), var(0));
                }
            }
        }
        // publish this function's last chain head for later functions
        let _ = writeln!(src, "    share{fi} = f{fi}_b{}_x0;", blocks - 1);
        let _ = writeln!(src, "}}");
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = SynthSpec::small(7);
        assert_eq!(synth_model(&spec), synth_model(&spec));
        let other = SynthSpec { seed: 8, ..spec };
        assert_ne!(synth_model(&spec), synth_model(&other));
    }

    #[test]
    fn generated_programs_compile_at_many_scales() {
        for (seed, functions, blocks, params, meta_fields) in [
            (1u64, 1usize, 1usize, 1usize, 1usize),
            (2, 2, 4, 3, 2),
            (3, 6, 8, 10, 4),
            (4, 12, 16, 6, 3),
        ] {
            let spec = SynthSpec { functions, blocks, params, meta_fields, seed };
            let src = synth_model(&spec);
            let program = cir::compile(&src)
                .unwrap_or_else(|e| panic!("spec {spec:?} failed to compile: {e}\n{src}"));
            assert_eq!(program.functions.len(), functions);
            assert_eq!(program.params.len(), params);
        }
    }

    #[test]
    fn generated_programs_exercise_all_shapes() {
        let spec = SynthSpec { functions: 8, blocks: 10, params: 6, meta_fields: 3, seed: 42 };
        let src = synth_model(&spec);
        assert!(src.contains("fail("), "no failing branches generated");
        assert!(src.contains("sb.m"), "no metadata access generated");
        assert!(src.contains("&&"), "no compound condition generated");
        assert!(src.contains("share0"), "no cross-function variable generated");
        let program = cir::compile(&src).unwrap();
        let r = taint::analyze(&program, taint::AnalysisOptions::default());
        assert!(!r.comparisons.is_empty());
        assert!(!r.meta_writes.is_empty());
        assert!(r.tainted_var_count > 0);
    }
}
