//! Performance of the static-analysis pipeline: compilation, taint
//! analysis, per-scenario extraction, and the full Table 5 evaluation
//! (the paper reports no timings, so these establish the overhead
//! baseline the authors list as a future metric).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use confdep::{extract_scenario, models, Evaluation, ExtractOptions};

fn bench_compile(c: &mut Criterion) {
    c.bench_function("cir_compile_mke2fs", |b| {
        b.iter(|| cir::compile(black_box(models::MKE2FS)).unwrap())
    });
    c.bench_function("cir_compile_all_models", |b| {
        b.iter(|| {
            for (_, src) in models::all() {
                black_box(cir::compile(src).unwrap());
            }
        })
    });
}

fn bench_taint(c: &mut Criterion) {
    let program = cir::compile(models::MKE2FS).unwrap();
    c.bench_function("taint_intra_mke2fs", |b| {
        b.iter(|| taint::analyze(black_box(&program), taint::AnalysisOptions::default()))
    });
    c.bench_function("taint_inter_mke2fs", |b| {
        b.iter(|| {
            taint::analyze(
                black_box(&program),
                taint::AnalysisOptions { interprocedural: true, ..Default::default() },
            )
        })
    });
}

fn bench_extraction(c: &mut Criterion) {
    c.bench_function("extract_scenario_s3", |b| {
        let sources = [
            ("mke2fs", models::MKE2FS),
            ("mount", models::MOUNT),
            ("ext4", models::EXT4),
            ("resize2fs", models::RESIZE2FS),
        ];
        b.iter(|| extract_scenario(black_box(&sources), ExtractOptions::default()).unwrap())
    });
    c.bench_function("table5_full_evaluation", |b| {
        b.iter(|| Evaluation::run(ExtractOptions::default()).unwrap())
    });
    c.bench_function("table5_interprocedural", |b| {
        b.iter(|| {
            Evaluation::run(ExtractOptions { interprocedural: true, ..Default::default() })
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_compile, bench_taint, bench_extraction);
criterion_main!(benches);
