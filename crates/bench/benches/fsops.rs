//! Performance of the file-system substrate and the utilities: format,
//! mount, file I/O, fsck, resize, and defragmentation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use blockdev::MemDevice;
use e2fstools::{E2fsck, E4defrag, FsckMode, Mke2fs, Resize2fs};
use ext4sim::{Ext4Fs, MkfsParams, MountOptions, ROOT_INODE};

fn fresh_image() -> MemDevice {
    let m = Mke2fs::from_args(&["-b", "1024", "/dev/bench", "12288"]).unwrap();
    m.run(MemDevice::new(1024, 16384)).unwrap().0
}

fn bench_format(c: &mut Criterion) {
    c.bench_function("mke2fs_12k_blocks", |b| {
        b.iter_batched(
            || MemDevice::new(1024, 16384),
            |dev| {
                let m = Mke2fs::from_args(&["-b", "1024", "/dev/bench", "12288"]).unwrap();
                black_box(m.run(dev).unwrap());
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("mke2fs_4k_64k_blocks", |b| {
        b.iter_batched(
            || MemDevice::new(4096, 65536),
            |dev| {
                let m = Mke2fs::from_args(&["-b", "4096", "/dev/bench"]).unwrap();
                black_box(m.run(dev).unwrap());
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_mount(c: &mut Criterion) {
    c.bench_function("mount_rw", |b| {
        b.iter_batched(
            fresh_image,
            |dev| black_box(Ext4Fs::mount(dev, &MountOptions::default()).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_file_io(c: &mut Criterion) {
    c.bench_function("write_1mb_file", |b| {
        let payload = vec![0xA5u8; 1 << 20];
        b.iter_batched(
            || {
                let dev = MemDevice::new(1024, 65536);
                Ext4Fs::format(dev, &MkfsParams { block_size: Some(1024), ..Default::default() })
                    .unwrap()
            },
            |mut fs| {
                let f = fs.create_file(ROOT_INODE, "big").unwrap();
                fs.write_file(f, 0, &payload).unwrap();
                black_box(fs)
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("read_1mb_file", |b| {
        let payload = vec![0xA5u8; 1 << 20];
        let dev = MemDevice::new(1024, 65536);
        let mut fs =
            Ext4Fs::format(dev, &MkfsParams { block_size: Some(1024), ..Default::default() })
                .unwrap();
        let f = fs.create_file(ROOT_INODE, "big").unwrap();
        fs.write_file(f, 0, &payload).unwrap();
        b.iter(|| black_box(fs.read_file_to_vec(f).unwrap()))
    });
    c.bench_function("create_100_files", |b| {
        b.iter_batched(
            || {
                let dev = MemDevice::new(1024, 16384);
                Ext4Fs::format(dev, &MkfsParams { block_size: Some(1024), ..Default::default() })
                    .unwrap()
            },
            |mut fs| {
                for i in 0..100 {
                    let name = format!("file-{i:03}");
                    fs.create_file(ROOT_INODE, &name).unwrap();
                }
                black_box(fs)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_utilities(c: &mut Criterion) {
    c.bench_function("e2fsck_clean_forced", |b| {
        b.iter_batched(
            fresh_image,
            |dev| black_box(E2fsck::with_mode(FsckMode::Check).forced().run(dev).unwrap()),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("resize2fs_grow_12k_to_16k", |b| {
        b.iter_batched(
            fresh_image,
            |dev| black_box(Resize2fs::to_size(16384).run(dev).unwrap()),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("e4defrag_fragmented_fs", |b| {
        b.iter_batched(
            || {
                let dev = fresh_image();
                let mut fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
                let a = fs.create_file(ROOT_INODE, "a").unwrap();
                let bfile = fs.create_file(ROOT_INODE, "b").unwrap();
                for i in 0..8u64 {
                    fs.write_file(a, i * 1024, &[1u8; 1024]).unwrap();
                    fs.write_file(bfile, i * 1024, &[2u8; 1024]).unwrap();
                }
                fs
            },
            |mut fs| black_box(E4defrag::new().run(&mut fs).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_format, bench_mount, bench_file_io, bench_utilities);
criterion_main!(benches);
