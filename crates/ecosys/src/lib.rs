//! The neutral multi-ecosystem registry layer.
//!
//! The study originally analyzed one file-system ecosystem (Ext4 and
//! the e2fsprogs utilities); this crate lifts the "which components
//! exist, which parameters do they own, which models does the analyzer
//! see" bookkeeping out of `e2fstools` into an ecosystem-agnostic
//! [`Ecosystem`] descriptor, so the extraction pipeline, the checkers,
//! the solver, and the validation front-end all run unchanged over any
//! registered ecosystem (currently Ext4 and the F2FS-flavored substrate
//! in `f2fstools`).
//!
//! On top of the per-ecosystem registries it adds the one genuinely
//! *cross*-ecosystem analysis: [`cross_fs_ccds`] detects mount
//! parameters shared by name between the two mount components (discard,
//! ro, barrier, the errors= policy, ...) and emits "must agree"
//! cross-component control dependencies, the configuration-portability
//! analog of the paper's CCDs.

use std::collections::BTreeSet;

use confdep::model::DepDetail;
use confdep::{
    extract_scenario, ConfdepError, ConstraintSet, DepKind, Dependency, Endpoint, ExtractOptions,
    ParamRef, SolverScope,
};
use e2fstools::manual::{DocConstraint, ManualOption, ManualPage};
use e2fstools::params::{ParamSpec, Stage};
use e2fstools::typed::TypedConfig;
use e2fstools::Component;

/// One registered file-system ecosystem: its component set, its CIR
/// models, its parameter universe, and how the constraint solver
/// renders configurations for it.
///
/// The descriptor is all function pointers so the static table in
/// [`all`] stays cheap to construct and every accessor returns fresh
/// owned values (the underlying crates hand out owned tables too).
#[derive(Clone, Copy)]
pub struct Ecosystem {
    /// Ecosystem name (`"ext4"`, `"f2fs"`); doubles as the lookup
    /// namespace in `"f2fs:mkfs"`-style queries.
    pub name: &'static str,
    /// The create-stage component name (`mke2fs`, `mkfs_f2fs`).
    pub create_component: &'static str,
    /// The mount-stage component name (`mount`, `f2fs`).
    pub mount_component: &'static str,
    components: fn() -> Vec<Box<dyn Component>>,
    models: fn() -> Vec<(&'static str, &'static str)>,
    extra_params: fn() -> Vec<ParamSpec>,
    extra_manuals: fn() -> Vec<ManualPage>,
    solver_scope: fn() -> SolverScope,
}

impl std::fmt::Debug for Ecosystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ecosystem")
            .field("name", &self.name)
            .field("create_component", &self.create_component)
            .field("mount_component", &self.mount_component)
            .finish_non_exhaustive()
    }
}

impl Ecosystem {
    /// The ecosystem's components, in stage order.
    pub fn components(&self) -> Vec<Box<dyn Component>> {
        (self.components)()
    }

    /// The CIR source models the analyzer runs over, `(component,
    /// source)` in stage order. Components without configuration-
    /// handling code worth modeling (read-only dump tools) have no
    /// model.
    pub fn models(&self) -> Vec<(&'static str, &'static str)> {
        (self.models)()
    }

    /// Parameters of the ecosystem that no [`Component`] impl owns
    /// (kernel-module knobs reached via sysfs rather than a CLI tool).
    pub fn extra_params(&self) -> Vec<ParamSpec> {
        (self.extra_params)()
    }

    /// The ecosystem's `ParamSpec` registry: every component's table
    /// plus [`Ecosystem::extra_params`].
    ///
    /// # Panics
    ///
    /// Panics if two specs share a `(component, name)` pair — the
    /// duplicate-registration guard.
    pub fn registry(&self) -> Vec<ParamSpec> {
        let mut specs: Vec<ParamSpec> =
            self.components().iter().flat_map(|c| c.param_specs()).collect();
        specs.extend(self.extra_params());
        guard_duplicates(&specs);
        specs
    }

    /// The manual-page corpus ConDocCk checks for this ecosystem: the
    /// pages of every *analyzed* component (those with a model), plus
    /// the kernel-side documentation pages no CLI component owns.
    pub fn doc_corpus(&self) -> Vec<ManualPage> {
        let analyzed: BTreeSet<&str> = self.models().iter().map(|(n, _)| *n).collect();
        let mut pages: Vec<ManualPage> = self
            .components()
            .iter()
            .filter(|c| analyzed.contains(c.name()))
            .map(|c| c.manual_page())
            .collect();
        pages.extend((self.extra_manuals)());
        pages
    }

    /// Looks up a component of this ecosystem by name. Accepts the
    /// canonical underscore name (`mkfs_f2fs`), the dotted tool
    /// spelling (`mkfs.f2fs`), and the ecosystem-relative short form
    /// (`mkfs` for `mkfs_f2fs`).
    pub fn component(&self, name: &str) -> Option<Box<dyn Component>> {
        let canonical = name.replace('.', "_");
        let suffixed = format!("{}_{}", canonical, self.name);
        self.components()
            .into_iter()
            .find(|c| c.name() == canonical || c.name() == suffixed)
    }

    /// Extracts the ecosystem's dependencies by running the (ecosystem-
    /// agnostic) analyzer over [`Ecosystem::models`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfdepError`] if a model fails to compile.
    pub fn dependencies(&self) -> Result<Vec<Dependency>, ConfdepError> {
        extract_scenario(&self.models(), ExtractOptions::default())
    }

    /// [`Ecosystem::dependencies`] compiled into executable constraints.
    ///
    /// # Errors
    ///
    /// Returns [`ConfdepError`] if a model fails to compile.
    pub fn constraints(&self) -> Result<ConstraintSet, ConfdepError> {
        Ok(ConstraintSet::compile(self.dependencies()?))
    }

    /// The solver scope generating create + mount configurations for
    /// this ecosystem.
    pub fn solver_scope(&self) -> SolverScope {
        (self.solver_scope)()
    }
}

fn guard_duplicates(specs: &[ParamSpec]) {
    let mut seen = BTreeSet::new();
    for spec in specs {
        assert!(
            seen.insert((spec.component.clone(), spec.name.clone())),
            "duplicate ParamSpec registration: {}:{}",
            spec.component,
            spec.name
        );
    }
}

/// The Ext4 ecosystem — e2fsprogs plus the ext4 kernel module, exactly
/// the surface the paper's study analyzed.
pub fn ext4() -> Ecosystem {
    Ecosystem {
        name: "ext4",
        create_component: "mke2fs",
        mount_component: "mount",
        components: e2fstools::ecosystem,
        models: confdep::models::all,
        extra_params: ext4_extra_params,
        extra_manuals: ext4_extra_manuals,
        solver_scope: SolverScope::ext4,
    }
}

fn ext4_extra_params() -> Vec<ParamSpec> {
    e2fstools::params::ext4_module_params()
}

fn ext4_extra_manuals() -> Vec<ManualPage> {
    vec![ext4_kernel_doc()]
}

/// The F2FS ecosystem — f2fs-tools plus the f2fs mount path, the second
/// substrate behind the same [`Component`] trait.
pub fn f2fs() -> Ecosystem {
    Ecosystem {
        name: "f2fs",
        create_component: "mkfs_f2fs",
        mount_component: "f2fs",
        components: f2fstools::ecosystem,
        models: confdep::models::f2fs_all,
        extra_params: Vec::new,
        extra_manuals: f2fs_extra_manuals,
        solver_scope: f2fs_solver_scope,
    }
}

fn f2fs_extra_manuals() -> Vec<ManualPage> {
    vec![f2fstools::mount::kernel_doc()]
}

/// Valued `mkfs.f2fs` flags the solver's renderer can spell.
const MKFS_F2FS_VALUED: [(&str, &str); 8] = [
    ("sector_size", "-w"),
    ("segs_per_sec", "-s"),
    ("secs_per_zone", "-z"),
    ("overprovision", "-o"),
    ("heap_alloc", "-a"),
    ("discard_policy", "-t"),
    ("debug_level", "-d"),
    ("label", "-l"),
];

fn f2fs_solver_scope() -> SolverScope {
    SolverScope {
        create_component: "mkfs_f2fs",
        mount_component: "f2fs",
        valued: &MKFS_F2FS_VALUED,
        keyed: &[],
        operand_params: &["sectors"],
        // mkfs.f2fs takes the device before the sector count, and the
        // lenient view only reads a numeric *second* operand as sectors
        fixed_operands: &["/dev/sim"],
        base_create_ints: &["sectors"],
        base_create_bools: &["extra_attr"],
        base_mount_enums: &["background_gc"],
        registry: {
            let mut specs = f2fstools::mkfs::param_table();
            specs.extend(f2fstools::mount::param_table());
            specs
        },
        parse_create: f2fstools::typed::from_mkfs_f2fs_args_lenient,
        parse_mount: f2fstools::typed::from_f2fs_mount_opts_lenient,
    }
}

/// All registered ecosystems, Ext4 first (the paper's study order).
pub fn all() -> Vec<Ecosystem> {
    vec![ext4(), f2fs()]
}

/// Looks up an ecosystem by name.
pub fn by_name(name: &str) -> Option<Ecosystem> {
    all().into_iter().find(|e| e.name == name)
}

/// Resolves a possibly-namespaced component query to `(ecosystem,
/// component)`.
///
/// `"f2fs:mkfs"` scopes the lookup to one ecosystem (accepting the
/// short, dotted, or canonical spelling on the right of the colon); a
/// bare name like `"mke2fs"` or `"resize.f2fs"` searches every
/// ecosystem and resolves only when unambiguous.
pub fn resolve(query: &str) -> Option<(Ecosystem, Box<dyn Component>)> {
    if let Some((eco_name, comp_name)) = query.split_once(':') {
        let eco = by_name(eco_name)?;
        let comp = eco.component(comp_name)?;
        return Some((eco, comp));
    }
    let canonical = query.replace('.', "_");
    let mut hits: Vec<(Ecosystem, Box<dyn Component>)> = all()
        .into_iter()
        .filter_map(|eco| {
            eco.components()
                .into_iter()
                .find(|c| c.name() == canonical)
                .map(|c| (eco, c))
        })
        .collect();
    if hits.len() == 1 {
        return hits.pop();
    }
    None
}

/// The merged cross-ecosystem `ParamSpec` registry, duplicate-guarded
/// over `(component, name)` — component names are namespaced per
/// ecosystem, so the merge is collision-free by construction and the
/// guard enforces that it stays so.
///
/// # Panics
///
/// Panics if two ecosystems register the same `(component, name)` pair.
pub fn merged_registry() -> Vec<ParamSpec> {
    let specs: Vec<ParamSpec> = all().iter().flat_map(|e| e.registry()).collect();
    guard_duplicates(&specs);
    specs
}

/// The mount-stage parameter names shared by every registered
/// ecosystem's mount component — the surface of the cross-FS pass.
pub fn shared_mount_params() -> Vec<String> {
    let mut ecos = all().into_iter();
    let Some(first) = ecos.next() else { return Vec::new() };
    let mut shared: Vec<String> = mount_param_names(&first).into_iter().collect();
    for eco in ecos {
        let names = mount_param_names(&eco);
        shared.retain(|n| names.contains(n));
    }
    shared
}

fn mount_param_names(eco: &Ecosystem) -> BTreeSet<String> {
    eco.registry()
        .into_iter()
        .filter(|p| p.component == eco.mount_component && p.stage == Stage::Mount)
        .map(|p| p.name)
        .collect()
}

/// The cross-ecosystem CCD pass: for every mount parameter both
/// ecosystems expose under the same name (`discard`, `ro`, `barrier`,
/// the `errors=` policy, ...), a fleet that mounts Ext4 and F2FS
/// volumes side by side wants the setting to *agree* — a divergent
/// `errors=` policy on one substrate is exactly the kind of silent
/// behavioural split §5 warns about. Each shared parameter yields one
/// `CcdControl` dependency whose relation carries the "must agree"
/// marker the constraint evaluator understands and whose bridge field
/// names the shared surface rather than an on-disk field.
pub fn cross_fs_ccds() -> Vec<Dependency> {
    let ecos = all();
    if ecos.len() < 2 {
        return Vec::new();
    }
    let (a, b) = (&ecos[0], &ecos[1]);
    shared_mount_params()
        .into_iter()
        .map(|name| Dependency {
            kind: DepKind::CcdControl,
            subject: ParamRef::new(a.mount_component, &name),
            object: Some(Endpoint::Param(ParamRef::new(b.mount_component, &name))),
            detail: DepDetail {
                relation: Some(
                    "shared mount parameters must agree across ecosystems".to_string(),
                ),
                bridge_field: Some(format!("shared:{name}")),
                ..Default::default()
            },
            evidence: vec![format!(
                "ecosys: {}:{} and {}:{} share a mount-option name",
                a.mount_component, name, b.mount_component, name
            )],
        })
        .collect()
}

/// [`cross_fs_ccds`] compiled into executable constraints.
pub fn cross_fs_constraints() -> ConstraintSet {
    ConstraintSet::compile(cross_fs_ccds())
}

/// Evaluates the cross-FS agreement constraints over one mount config
/// per ecosystem, returning the violated constraints' signatures.
pub fn cross_fs_violations(configs: &[&TypedConfig]) -> Vec<String> {
    cross_fs_constraints()
        .constraints()
        .iter()
        .filter(|c| c.evaluate(configs) == confdep::Verdict::Violated)
        .map(|c| c.signature().to_string())
        .collect()
}

/// The kernel-side documentation for the ext4 module knobs
/// (Documentation/admin-guide + sysfs docs): it documents the knobs'
/// types, and a range only for `mb_stream_req` — the
/// `inode_readahead_blks` power-of-two/limit constraint is one of the
/// paper's missing-documentation findings.
pub fn ext4_kernel_doc() -> ManualPage {
    ManualPage {
        component: "ext4".to_string(),
        synopsis: "/sys/fs/ext4/<disk>/...".to_string(),
        description: "Tunables of the ext4 kernel module.".to_string(),
        options: vec![
            ManualOption::valued(
                "inode_readahead_blks",
                "n",
                "Tuning parameter which controls the maximum number of inode table blocks that ext4's inode table readahead algorithm will pre-read.",
            )
            .with(DocConstraint::DataType { param: "inode_readahead_blks".into(), ty: "int".into() }),
            // GAP(paper): the power-of-two/upper-bound constraint is
            // enforced in code but absent here.
            ManualOption::valued(
                "mb_stream_req",
                "n",
                "Files smaller than this number of blocks use group preallocation; at most 1048576.",
            )
            .with(DocConstraint::DataType { param: "mb_stream_req".into(), ty: "int".into() })
            .with(DocConstraint::ValueRange { param: "mb_stream_req".into(), min: 0, max: 1_048_576 }),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confdep::{Solver, Verdict};

    #[test]
    fn ext4_registry_matches_the_legacy_e2fstools_registry() {
        // the lifted layer must not change the ext4 parameter universe
        let lifted: BTreeSet<(String, String)> =
            ext4().registry().into_iter().map(|p| (p.component, p.name)).collect();
        let legacy: BTreeSet<(String, String)> =
            e2fstools::registry().into_iter().map(|p| (p.component, p.name)).collect();
        assert_eq!(lifted, legacy);
    }

    #[test]
    fn both_ecosystems_register_and_merge() {
        let ecos = all();
        assert_eq!(ecos.len(), 2);
        assert_eq!(ecos[0].name, "ext4");
        assert_eq!(ecos[1].name, "f2fs");
        let merged = merged_registry(); // panics on any collision
        let ext4_len = ext4().registry().len();
        let f2fs_len = f2fs().registry().len();
        assert_eq!(merged.len(), ext4_len + f2fs_len);
    }

    #[test]
    fn namespaced_lookup_resolves_short_dotted_and_canonical_names() {
        for (query, component, eco) in [
            ("f2fs:mkfs", "mkfs_f2fs", "f2fs"),
            ("f2fs:mkfs.f2fs", "mkfs_f2fs", "f2fs"),
            ("f2fs:fsck", "fsck_f2fs", "f2fs"),
            ("ext4:mke2fs", "mke2fs", "ext4"),
            ("ext4:mount", "mount", "ext4"),
            ("mke2fs", "mke2fs", "ext4"),
            ("resize.f2fs", "resize_f2fs", "f2fs"),
            ("dump_f2fs", "dump_f2fs", "f2fs"),
        ] {
            let (e, c) = resolve(query).unwrap_or_else(|| panic!("{query} unresolved"));
            assert_eq!(c.name(), component, "{query}");
            assert_eq!(e.name, eco, "{query}");
        }
        assert!(resolve("xfs:mkfs").is_none());
        assert!(resolve("f2fs:mke2fs").is_none());
        assert!(resolve("nonexistent").is_none());
    }

    #[test]
    fn every_ecosystem_extracts_and_compiles() {
        for eco in all() {
            let deps = eco.dependencies().unwrap();
            assert!(deps.len() >= 25, "{}: only {} deps", eco.name, deps.len());
            let set = eco.constraints().unwrap();
            assert_eq!(set.constraints().len(), deps.len());
        }
    }

    #[test]
    fn cross_fs_pass_finds_the_shared_mount_surface() {
        let shared = shared_mount_params();
        for expected in ["ro", "discard", "barrier", "errors", "norecovery", "lazytime"] {
            assert!(shared.iter().any(|n| n == expected), "{expected} missing: {shared:?}");
        }
        let ccds = cross_fs_ccds();
        assert_eq!(ccds.len(), shared.len());
        for d in &ccds {
            assert_eq!(d.kind, DepKind::CcdControl);
            assert_eq!(d.subject.component, "mount");
            assert!(matches!(&d.object, Some(Endpoint::Param(p)) if p.component == "f2fs"));
            assert!(d.detail.bridge_field.as_deref().unwrap().starts_with("shared:"));
        }
    }

    #[test]
    fn cross_fs_constraints_evaluate_agreement() {
        let set = cross_fs_constraints();
        let sig = "CcdControl|mount:discard|f2fs:discard";
        let c = set.find(sig).expect("discard agreement constraint");
        let mut ext4_mnt = TypedConfig::new("mount");
        let mut f2fs_mnt = TypedConfig::new("f2fs");
        ext4_mnt.set_bool("discard", true);
        f2fs_mnt.set_bool("discard", true);
        assert_eq!(c.evaluate(&[&ext4_mnt, &f2fs_mnt]), Verdict::Satisfied);
        f2fs_mnt.set_bool("discard", false);
        assert_eq!(c.evaluate(&[&ext4_mnt, &f2fs_mnt]), Verdict::Violated);
        assert_eq!(cross_fs_violations(&[&ext4_mnt, &f2fs_mnt]), vec![sig.to_string()]);
        let lone = TypedConfig::new("f2fs");
        assert_eq!(c.evaluate(&[&ext4_mnt, &lone]), Verdict::NotApplicable);
    }

    #[test]
    fn f2fs_solver_scope_witnesses_a_substantial_universe() {
        let set = f2fs().constraints().unwrap();
        let solver = Solver::with_scope(&set, f2fs().solver_scope());
        let targets = solver.witness_targets();
        assert!(targets.len() >= 30, "only {} f2fs targets", targets.len());
        for (i, polarity, solved) in &targets {
            assert!(
                solved.render_with(solver.scope()).is_some(),
                "target {i} {polarity} unrenderable"
            );
        }
    }

    #[test]
    fn doc_corpora_cover_the_analyzed_components() {
        let ext4_pages = ext4().doc_corpus();
        let names: Vec<&str> = ext4_pages.iter().map(|p| p.component.as_str()).collect();
        for c in ["mke2fs", "mount", "e4defrag", "resize2fs", "e2fsck", "ext4"] {
            assert!(names.contains(&c), "{c} missing from ext4 corpus: {names:?}");
        }
        // tune2fs has no model, so ConDocCk does not read its page
        assert!(!names.contains(&"tune2fs"));
        let f2fs_pages = f2fs().doc_corpus();
        let names: Vec<&str> = f2fs_pages.iter().map(|p| p.component.as_str()).collect();
        for c in ["mkfs_f2fs", "f2fs", "fsck_f2fs", "resize_f2fs", "f2fs_kernel"] {
            assert!(names.contains(&c), "{c} missing from f2fs corpus: {names:?}");
        }
    }
}
