//! The serving layer: validate, explain, and repair queries over a
//! compiled [`ValidationPlan`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use confdep::{DocVerdict, SolvedConfig, Solver, Verdict};
use e2fstools::typed::TypedConfig;
use serde::{Deserialize, Serialize};

use crate::memo::{MemoOptions, MemoStats, ShardedMemo};
use crate::plan::ValidationPlan;
use crate::query::ConfigQuery;

/// Which evaluation path answers queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalStrategy {
    /// Evaluate every compiled constraint per query (the baseline).
    Naive,
    /// Evaluate only the constraints the query's parameters engage.
    Indexed,
}

/// Engine configuration: evaluation strategy plus optional memoization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// The evaluation path.
    pub strategy: EvalStrategy,
    /// Memo sizing; `None` disables memoization.
    pub memo: Option<MemoOptions>,
}

impl EngineOptions {
    /// The full-table baseline: every query walks all constraints.
    pub fn naive() -> Self {
        EngineOptions { strategy: EvalStrategy::Naive, memo: None }
    }

    /// Indexed evaluation, no memo.
    pub fn indexed() -> Self {
        EngineOptions { strategy: EvalStrategy::Indexed, memo: None }
    }

    /// The production shape: indexed evaluation behind the sharded
    /// verdict memo.
    pub fn serving() -> Self {
        EngineOptions { strategy: EvalStrategy::Indexed, memo: Some(MemoOptions::default()) }
    }
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions::serving()
    }
}

/// The answer to one query.
#[derive(Debug, Clone)]
pub struct ValidationOutcome {
    /// Per-constraint verdicts, in the plan's constraint order.
    pub verdicts: Arc<[Verdict]>,
    /// Constraints actually evaluated for this answer (0 on a memo
    /// hit).
    pub evaluated: usize,
    /// Whether the memo answered without evaluating.
    pub memo_hit: bool,
}

impl ValidationOutcome {
    /// True when nothing is violated.
    pub fn ok(&self) -> bool {
        !self.verdicts.contains(&Verdict::Violated)
    }

    /// Positions of the violated constraints.
    pub fn violations(&self) -> Vec<usize> {
        self.verdicts
            .iter()
            .enumerate()
            .filter(|(_, v)| **v == Verdict::Violated)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of satisfied constraints.
    pub fn satisfied(&self) -> usize {
        self.verdicts.iter().filter(|v| **v == Verdict::Satisfied).count()
    }
}

/// One violated constraint, explained.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Explanation {
    /// Position in the plan's constraint order.
    pub position: usize,
    /// The constraint's interned signature.
    pub signature: String,
    /// Taxonomy label (`SD:Value Range`, `CPD:Control`, ...).
    pub kind: String,
    /// Human-readable rendering of the dependency.
    pub dependency: String,
    /// Whether any manual page documents the dependency (precomputed
    /// against the ecosystem's manual corpus at plan compile time).
    pub doc: DocVerdict,
    /// Source-model evidence strings backing the extraction.
    pub evidence: Vec<String>,
}

/// One parameter the repair changed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairChange {
    /// Component of the changed parameter.
    pub component: String,
    /// The parameter (registry name).
    pub param: String,
    /// What happened: `set <value>`, or `removed`.
    pub action: String,
}

/// A proposed minimal satisfying assignment for a violating query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairProposal {
    /// The repaired configurations, same component order as the query.
    pub configs: Vec<TypedConfig>,
    /// Parameter-level diff against the original query.
    pub changes: Vec<RepairChange>,
    /// Whether the repaired state validates with zero violations (the
    /// invariant the repair loop enforces; recorded for the caller).
    pub clean: bool,
}

/// Cumulative engine counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Queries served.
    pub queries: usize,
    /// Constraints evaluated across all queries (memo hits add 0).
    pub constraints_evaluated: usize,
    /// Memo counters, when memoization is enabled.
    pub memo: Option<MemoStats>,
}

impl EngineStats {
    /// Mean constraints evaluated per query.
    pub fn evaluated_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.constraints_evaluated as f64 / self.queries as f64
        }
    }
}

/// The validation engine: an immutable plan behind `Arc`, an optional
/// sharded memo, and atomic counters — fully `Sync`, no locks on the
/// plan read path.
#[derive(Debug)]
pub struct ValidationEngine {
    plan: Arc<ValidationPlan>,
    strategy: EvalStrategy,
    memo: Option<ShardedMemo>,
    queries: AtomicUsize,
    constraints_evaluated: AtomicUsize,
}

impl ValidationEngine {
    /// Builds an engine over a compiled plan.
    pub fn new(plan: Arc<ValidationPlan>, options: EngineOptions) -> Self {
        ValidationEngine {
            plan,
            strategy: options.strategy,
            memo: options.memo.map(ShardedMemo::new),
            queries: AtomicUsize::new(0),
            constraints_evaluated: AtomicUsize::new(0),
        }
    }

    /// The plan being served.
    pub fn plan(&self) -> &ValidationPlan {
        &self.plan
    }

    fn evaluate(&self, query: &ConfigQuery) -> (Vec<Verdict>, usize) {
        match self.strategy {
            EvalStrategy::Naive => self.plan.evaluate_naive(&query.views()),
            EvalStrategy::Indexed => self.plan.evaluate_indexed(query),
        }
    }

    /// Answers one query: memo lookup (when enabled), then the
    /// configured evaluation path, filling the memo on a miss.
    pub fn validate(&self, query: &ConfigQuery) -> ValidationOutcome {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.validate_uncounted(query)
    }

    /// [`ValidationEngine::validate`] without the per-query counter
    /// bump — the batch path counts whole chunks instead.
    fn validate_uncounted(&self, query: &ConfigQuery) -> ValidationOutcome {
        if let Some(memo) = &self.memo {
            // hot path: stream the FNV fingerprint without rendering the
            // canonical-state string; the memo compares stored queries
            // structurally, so no allocation happens on a hit
            let fingerprint = query.fingerprint();
            if let Some(verdicts) = memo.lookup(fingerprint, query) {
                return ValidationOutcome { verdicts, evaluated: 0, memo_hit: true };
            }
            let (verdicts, evaluated) = self.evaluate(query);
            self.constraints_evaluated.fetch_add(evaluated, Ordering::Relaxed);
            let verdicts: Arc<[Verdict]> = verdicts.into();
            memo.insert(fingerprint, query, Arc::clone(&verdicts));
            return ValidationOutcome { verdicts, evaluated, memo_hit: false };
        }
        let (verdicts, evaluated) = self.evaluate(query);
        self.constraints_evaluated.fetch_add(evaluated, Ordering::Relaxed);
        ValidationOutcome { verdicts: verdicts.into(), evaluated, memo_hit: false }
    }

    /// Fans a batch out over `conpool`'s worker pool, preserving input
    /// order. `threads == 0` uses one worker per core. The batch is
    /// split into contiguous chunks (~8 per worker) so each queue
    /// hand-off amortises over many queries instead of paying the
    /// pool's synchronisation per query.
    pub fn validate_many(
        &self,
        queries: &[ConfigQuery],
        threads: usize,
    ) -> Vec<ValidationOutcome> {
        if queries.is_empty() {
            return Vec::new();
        }
        let workers = conpool::effective_threads(threads);
        let chunk = queries.len().div_ceil(workers.saturating_mul(8).max(1)).max(1);
        let ranges: Vec<std::ops::Range<usize>> = (0..queries.len())
            .step_by(chunk)
            .map(|start| start..(start + chunk).min(queries.len()))
            .collect();
        conpool::parallel_map(ranges, threads, |_, range| {
            self.queries.fetch_add(range.len(), Ordering::Relaxed);
            queries[range].iter().map(|q| self.validate_uncounted(q)).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Explains every violated constraint of a query: signature,
    /// taxonomy kind, rendered dependency, precomputed documentation
    /// verdict, and extraction evidence.
    pub fn explain(&self, query: &ConfigQuery) -> Vec<Explanation> {
        let outcome = self.validate(query);
        let constraints = self.plan.constraints().constraints();
        outcome
            .violations()
            .into_iter()
            .map(|position| {
                let c = &constraints[position];
                Explanation {
                    position,
                    signature: c.signature().to_string(),
                    kind: c.dependency.kind.to_string(),
                    dependency: c.dependency.to_string(),
                    doc: self.plan.doc_verdict(position),
                    evidence: c.dependency.evidence.clone(),
                }
            })
            .collect()
    }

    /// Proposes a minimal satisfying assignment for a violating query.
    ///
    /// Two passes: first [`Solver::repair`] propagates the compiled
    /// constraints over the plan ecosystem's create/mount halves (SD
    /// ranges clamp, data types coerce, control pairs disengage —
    /// touching only parameters that engage a violated constraint),
    /// then any still-violated constraint is disengaged by removing
    /// its subject parameter. Removal can never create a violation (an
    /// absent value is `NotApplicable` for every constraint kind), so
    /// the loop converges to a clean state.
    pub fn repair(&self, query: &ConfigQuery) -> RepairProposal {
        let mut configs = query.configs.clone();
        // the propagation pass runs in the plan ecosystem's solver
        // scope: the right component names, registry, and renderers —
        // an f2fs plan repairs mkfs_f2fs/f2fs halves, not mke2fs/mount
        let eco = self.plan.ecosystem();
        let solver = Solver::with_scope(self.plan.constraints(), eco.solver_scope());
        // the solver's propagation works on the create/mount state
        // shape; splice those halves through it when the query carries
        // them
        let mkfs_at = configs.iter().position(|c| c.component == eco.create_component);
        let mount_at = configs.iter().position(|c| c.component == eco.mount_component);
        let mut solved = SolvedConfig {
            mkfs: mkfs_at
                .map_or_else(|| TypedConfig::new(eco.create_component), |i| configs[i].clone()),
            mount: mount_at
                .map_or_else(|| TypedConfig::new(eco.mount_component), |i| configs[i].clone()),
        };
        solver.repair(&mut solved);
        if let Some(i) = mkfs_at {
            configs[i] = solved.mkfs;
        }
        if let Some(i) = mount_at {
            configs[i] = solved.mount;
        }
        // disengage the leftovers: propagation repairs only what it can
        // render; anything still violated loses its subject parameter
        let constraints = self.plan.constraints().constraints();
        loop {
            let views: Vec<&TypedConfig> = configs.iter().collect();
            let violated: Vec<usize> = constraints
                .iter()
                .enumerate()
                .filter(|(_, c)| c.evaluate(&views) == Verdict::Violated)
                .map(|(i, _)| i)
                .collect();
            drop(views);
            if violated.is_empty() {
                break;
            }
            for i in violated {
                let d = &constraints[i].dependency;
                let name =
                    confdep::constraint::registry_name(&d.subject.component, &d.subject.param);
                if let Some(cfg) =
                    configs.iter_mut().find(|c| c.component == d.subject.component)
                {
                    cfg.values.remove(name);
                }
            }
        }
        let views: Vec<&TypedConfig> = configs.iter().collect();
        let clean =
            constraints.iter().all(|c| c.evaluate(&views) != Verdict::Violated);
        drop(views);
        let changes = diff(&query.configs, &configs);
        RepairProposal { configs, changes, clean }
    }

    /// Cumulative counter snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            queries: self.queries.load(Ordering::Relaxed),
            constraints_evaluated: self.constraints_evaluated.load(Ordering::Relaxed),
            memo: self.memo.as_ref().map(ShardedMemo::stats),
        }
    }
}

/// Parameter-level diff between the original and repaired configs.
fn diff(before: &[TypedConfig], after: &[TypedConfig]) -> Vec<RepairChange> {
    let mut changes = Vec::new();
    for (b, a) in before.iter().zip(after) {
        for (name, old) in &b.values {
            match a.values.get(name) {
                Some(new) if new != old => changes.push(RepairChange {
                    component: b.component.clone(),
                    param: name.clone(),
                    action: format!("set {new}"),
                }),
                None => changes.push(RepairChange {
                    component: b.component.clone(),
                    param: name.clone(),
                    action: "removed".to_string(),
                }),
                _ => {}
            }
        }
        for name in a.values.keys() {
            if !b.values.contains_key(name) {
                changes.push(RepairChange {
                    component: b.component.clone(),
                    param: name.clone(),
                    action: format!("set {}", a.values[name]),
                });
            }
        }
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use confdep::{extract_scenario, models, ConstraintSet, ExtractOptions};

    fn plan() -> Arc<ValidationPlan> {
        Arc::new(ValidationPlan::compile(ConstraintSet::compile(
            extract_scenario(&models::all(), ExtractOptions::default()).unwrap(),
        )))
    }

    #[test]
    fn memo_hit_skips_evaluation() {
        let engine = ValidationEngine::new(plan(), EngineOptions::serving());
        let q = ConfigQuery::parse_line("-b 1024 -O meta_bg,resize_inode | ro").unwrap();
        let first = engine.validate(&q);
        assert!(!first.memo_hit);
        assert!(first.evaluated > 0);
        let second = engine.validate(&q);
        assert!(second.memo_hit);
        assert_eq!(second.evaluated, 0);
        assert_eq!(first.verdicts, second.verdicts);
        let stats = engine.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.memo.unwrap().hits, 1);
        assert!(stats.evaluated_per_query() < 64.0);
    }

    #[test]
    fn all_strategies_agree() {
        let p = plan();
        let naive = ValidationEngine::new(Arc::clone(&p), EngineOptions::naive());
        let indexed = ValidationEngine::new(Arc::clone(&p), EngineOptions::indexed());
        let serving = ValidationEngine::new(p, EngineOptions::serving());
        let q = ConfigQuery::parse_line("-b 99 -m 80 | data=journal,norecovery").unwrap();
        let a = naive.validate(&q);
        let b = indexed.validate(&q);
        let c = serving.validate(&q);
        assert_eq!(a.verdicts, b.verdicts);
        assert_eq!(b.verdicts, c.verdicts);
        assert!(b.evaluated < a.evaluated);
    }

    #[test]
    fn batch_preserves_order() {
        let engine = ValidationEngine::new(plan(), EngineOptions::serving());
        let queries: Vec<ConfigQuery> = (0..16)
            .map(|i| ConfigQuery::parse_line(&format!("-b {} | ro", 1024 + i)).unwrap())
            .collect();
        let batched = engine.validate_many(&queries, 4);
        assert_eq!(batched.len(), queries.len());
        for (q, out) in queries.iter().zip(&batched) {
            let solo = engine.validate(q);
            assert_eq!(solo.verdicts, out.verdicts);
        }
    }

    #[test]
    fn explain_reports_violations() {
        let engine = ValidationEngine::new(plan(), EngineOptions::indexed());
        let q = ConfigQuery::parse_line("-O meta_bg,resize_inode").unwrap();
        let explanations = engine.explain(&q);
        assert!(!explanations.is_empty());
        let e = explanations
            .iter()
            .find(|e| e.signature == "CpdControl|mke2fs|meta_bg~resize_inode")
            .expect("known conflict explained");
        assert_eq!(e.kind, "CPD:Control");
        assert!(e.dependency.contains("meta_bg"));
    }

    #[test]
    fn repair_yields_clean_config() {
        let engine = ValidationEngine::new(plan(), EngineOptions::indexed());
        let q = ConfigQuery::parse_line("-b 99999999 -O meta_bg,resize_inode | ro").unwrap();
        assert!(!engine.validate(&q).ok());
        let proposal = engine.repair(&q);
        assert!(proposal.clean);
        assert!(!proposal.changes.is_empty());
        let repaired = ConfigQuery::new(proposal.configs);
        assert!(engine.validate(&repaired).ok());
    }

    #[test]
    fn repair_on_clean_query_changes_nothing() {
        let engine = ValidationEngine::new(plan(), EngineOptions::indexed());
        let q = ConfigQuery::parse_line("-b 4096 -m 5 | data=ordered").unwrap();
        assert!(engine.validate(&q).ok());
        let proposal = engine.repair(&q);
        assert!(proposal.clean);
        assert!(proposal.changes.is_empty(), "{:?}", proposal.changes);
    }

    fn f2fs_engine(options: EngineOptions) -> ValidationEngine {
        let eco = ecosys::f2fs();
        let plan = Arc::new(ValidationPlan::compile_for(eco.constraints().unwrap(), eco));
        ValidationEngine::new(plan, options)
    }

    #[test]
    fn f2fs_engine_validates_explains_and_repairs() {
        // the serving layer is ecosystem-agnostic end to end: an f2fs
        // plan validates a tagged f2fs query, explains the violation
        // with the f2fs manual corpus's verdict, and repairs it in the
        // f2fs solver scope
        let engine = f2fs_engine(EngineOptions::serving());
        let eco = ecosys::f2fs();
        let q = ConfigQuery::parse_line_for(&eco, "-O casefold,encrypt | ro").unwrap();
        let outcome = engine.validate(&q);
        assert!(!outcome.ok());
        let explanations = engine.explain(&q);
        let e = explanations
            .iter()
            .find(|e| e.signature == "CpdControl|mkfs_f2fs|casefold~encrypt")
            .expect("casefold/encrypt conflict explained");
        assert_eq!(e.kind, "CPD:Control");
        // the conflict is enforced at format time but stated by no
        // f2fs manual — the corpus verdict must say so
        assert_eq!(e.doc, DocVerdict::Missing);
        let proposal = engine.repair(&q);
        assert!(proposal.clean);
        assert!(!proposal.changes.is_empty());
        assert!(proposal.changes.iter().all(|c| c.component.contains("f2fs")),
            "repair touched a non-f2fs component: {:?}", proposal.changes);
        let repaired = ConfigQuery::tagged("f2fs", proposal.configs);
        assert!(engine.validate(&repaired).ok());
    }

    #[test]
    fn memo_entries_never_cross_ecosystems() {
        // two queries with byte-identical configs but different tags
        // must occupy distinct memo slots: warming one leaves the
        // other cold
        let engine = f2fs_engine(EngineOptions::serving());
        let configs = vec![TypedConfig::new("mkfs_f2fs"), TypedConfig::new("f2fs")];
        let a = ConfigQuery::tagged("f2fs", configs.clone());
        let b = ConfigQuery::tagged("ext4", configs.clone());
        let untagged = ConfigQuery::new(configs);
        assert!(!engine.validate(&a).memo_hit);
        assert!(engine.validate(&a).memo_hit, "same tag must re-hit");
        assert!(!engine.validate(&b).memo_hit, "different tag must miss");
        assert!(!engine.validate(&untagged).memo_hit, "untagged must miss both");
    }

    #[test]
    fn cross_fs_agreement_violations_are_explained() {
        // the ≥1 cross-ecosystem CCD of the acceptance criteria, served
        // through validate/explain: divergent errors= policies across
        // the two mount components
        let plan =
            Arc::new(ValidationPlan::compile_for(ecosys::cross_fs_constraints(), ecosys::ext4()));
        let engine = ValidationEngine::new(plan, EngineOptions::serving());
        let mut ext4_mnt = TypedConfig::new("mount");
        let mut f2fs_mnt = TypedConfig::new("f2fs");
        ext4_mnt.set_str("errors", "remount-ro");
        f2fs_mnt.set_str("errors", "panic");
        let q = ConfigQuery::new(vec![ext4_mnt.clone(), f2fs_mnt.clone()]);
        let outcome = engine.validate(&q);
        assert!(!outcome.ok());
        let explanations = engine.explain(&q);
        let e = explanations
            .iter()
            .find(|e| e.signature == "CcdControl|mount:errors|f2fs:errors")
            .expect("errors= agreement CCD explained");
        assert_eq!(e.kind, "CCD:Control");
        assert!(e.dependency.contains("errors"));
        // agreeing policies validate clean
        f2fs_mnt.set_str("errors", "remount-ro");
        let ok = ConfigQuery::new(vec![ext4_mnt, f2fs_mnt]);
        assert!(engine.validate(&ok).ok());
    }
}
