//! Sharded verdict memoization for the serving path.
//!
//! Whole verdict vectors are cached under the query's canonical-state
//! FNV fingerprint. The map is striped across N independently-locked
//! shards (shard = fingerprint mod N) so concurrent readers rarely
//! contend; each shard evicts FIFO at its capacity. Entries store the
//! full query next to the fingerprint and compare it structurally on
//! every hit — cheaper than rendering the canonical-state string on
//! the hot path, and strictly finer-grained (two queries with equal
//! canonical keys have equal configs), so a 64-bit collision degrades
//! to a miss instead of a wrong answer and the memoized path stays
//! semantically exact.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use confdep::Verdict;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::query::ConfigQuery;

/// Sizing of a [`ShardedMemo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoOptions {
    /// Number of mutex-striped shards.
    pub shards: usize,
    /// Total entry capacity across all shards.
    pub capacity: usize,
}

impl Default for MemoOptions {
    fn default() -> Self {
        MemoOptions { shards: 64, capacity: 65536 }
    }
}

/// A point-in-time snapshot of the memo's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that fell through to evaluation.
    pub misses: usize,
    /// Entries evicted FIFO at shard capacity.
    pub evictions: usize,
    /// Entries currently cached, summed over shards.
    pub entries: usize,
    /// Number of shards.
    pub shards: usize,
}

impl MemoStats {
    /// Hit fraction over all lookups (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    /// The exact query, compared structurally on every hit so a
    /// fingerprint collision can never serve the wrong verdicts.
    query: ConfigQuery,
    verdicts: Arc<[Verdict]>,
}

/// Pass-through hasher for keys that are already FNV fingerprints —
/// re-hashing a 64-bit hash through SipHash would be pure overhead on
/// the lookup hot path.
#[derive(Default)]
struct FingerprintHasher(u64);

impl std::hash::Hasher for FingerprintHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // not used by u64 keys (they call write_u64), but keep it sound
        for b in bytes {
            self.0 = (self.0 ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

type FingerprintMap = HashMap<u64, Entry, std::hash::BuildHasherDefault<FingerprintHasher>>;

#[derive(Default)]
struct Shard {
    map: FingerprintMap,
    order: VecDeque<u64>,
    // counters live under the shard lock the lookup already holds, so
    // the hot path pays no extra atomic read-modify-writes
    hits: usize,
    misses: usize,
    evictions: usize,
}

/// The sharded, collision-checked verdict cache.
pub struct ShardedMemo {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl std::fmt::Debug for ShardedMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMemo")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .finish_non_exhaustive()
    }
}

impl ShardedMemo {
    /// Builds an empty memo with the given sizing (shard count and
    /// capacity are clamped to at least 1).
    pub fn new(options: MemoOptions) -> Self {
        let shards = options.shards.max(1);
        let per_shard_capacity = (options.capacity / shards).max(1);
        ShardedMemo {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
        }
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<Shard> {
        &self.shards[(fingerprint % self.shards.len() as u64) as usize]
    }

    /// The cached verdicts for a state, if present. `query` is the
    /// state behind `fingerprint`; a fingerprint match whose stored
    /// query differs counts as a miss.
    pub fn lookup(&self, fingerprint: u64, query: &ConfigQuery) -> Option<Arc<[Verdict]>> {
        let mut shard = self.shard(fingerprint).lock();
        match shard.map.get(&fingerprint) {
            Some(entry) if entry.query == *query => {
                let verdicts = Arc::clone(&entry.verdicts);
                shard.hits += 1;
                Some(verdicts)
            }
            _ => {
                shard.misses += 1;
                None
            }
        }
    }

    /// Caches the verdicts for a state, evicting the shard's oldest
    /// entry when it is full.
    pub fn insert(&self, fingerprint: u64, query: &ConfigQuery, verdicts: Arc<[Verdict]>) {
        let mut shard = self.shard(fingerprint).lock();
        if shard.map.insert(fingerprint, Entry { query: query.clone(), verdicts }).is_none() {
            shard.order.push_back(fingerprint);
            if shard.order.len() > self.per_shard_capacity {
                if let Some(oldest) = shard.order.pop_front() {
                    shard.map.remove(&oldest);
                    shard.evictions += 1;
                }
            }
        }
    }

    /// Counter snapshot, summed over all shards.
    pub fn stats(&self) -> MemoStats {
        let mut stats = MemoStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            entries: 0,
            shards: self.shards.len(),
        };
        for shard in &self.shards {
            let shard = shard.lock();
            stats.hits += shard.hits;
            stats.misses += shard.misses;
            stats.evictions += shard.evictions;
            stats.entries += shard.map.len();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdicts(n: usize) -> Arc<[Verdict]> {
        vec![Verdict::Satisfied; n].into()
    }

    fn query(line: &str) -> ConfigQuery {
        ConfigQuery::parse_line(line).unwrap()
    }

    #[test]
    fn hit_miss_and_counters() {
        let memo = ShardedMemo::new(MemoOptions { shards: 4, capacity: 16 });
        let a = query("-b 1024 | ro");
        let b = query("-b 2048 | ro");
        assert!(memo.lookup(7, &a).is_none());
        memo.insert(7, &a, verdicts(3));
        assert_eq!(memo.lookup(7, &a).unwrap().len(), 3);
        // same fingerprint, different query: collision counts as a miss
        assert!(memo.lookup(7, &b).is_none());
        let stats = memo.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
        assert!(stats.hit_rate() > 0.3 && stats.hit_rate() < 0.4);
    }

    #[test]
    fn fifo_eviction_at_shard_capacity() {
        // one shard, two entries total
        let memo = ShardedMemo::new(MemoOptions { shards: 1, capacity: 2 });
        let queries: Vec<ConfigQuery> =
            (0..3).map(|i| query(&format!("-b {}", 1024 << i))).collect();
        for (fp, q) in queries.iter().enumerate() {
            memo.insert(fp as u64, q, verdicts(1));
        }
        let stats = memo.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert!(memo.lookup(0, &queries[0]).is_none(), "oldest entry evicted");
        assert!(memo.lookup(2, &queries[2]).is_some());
    }

    #[test]
    fn reinsert_does_not_duplicate_order() {
        let memo = ShardedMemo::new(MemoOptions { shards: 1, capacity: 2 });
        let q = query("-b 1024");
        memo.insert(1, &q, verdicts(1));
        memo.insert(1, &q, verdicts(2));
        let stats = memo.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(memo.lookup(1, &q).unwrap().len(), 2);
    }
}
