//! convalid — the read-optimized configuration-validation engine.
//!
//! The paper's end product is a dependency table that tools consult to
//! catch misconfigurations. This crate turns the compiled
//! [`confdep::ConstraintSet`] into a *service*: answer "validate this
//! configuration", "explain the violated dependency", and "repair this
//! configuration" at production query rates.
//!
//! The serving shape is build-once, read-many:
//!
//! * [`ValidationPlan`] is compiled once at startup from the constraint
//!   set — a per-`(component, parameter)` inverted index from canonical
//!   parameter keys to the constraints that mention them, each
//!   constraint lowered to a pre-resolved [check](plan) (no string
//!   matching on the hot path), a precomputed control-pair table, and
//!   per-constraint documentation verdicts. The plan is immutable and
//!   shared behind an `Arc`; queries take no locks against it.
//! * [`ValidationEngine`] serves queries over the plan. The *indexed*
//!   path evaluates only the constraints whose parameters the query
//!   actually touches (everything else is `NotApplicable` by
//!   construction); the *naive* path — every query walks all compiled
//!   constraints — is retained as the equivalence baseline.
//! * [`ShardedMemo`] memoizes whole verdict vectors by the query's
//!   canonical-state FNV fingerprint across N mutex-striped shards with
//!   hit/miss/eviction counters; repeated configurations are answered
//!   without evaluating anything.
//! * [`ValidationEngine::validate_many`] fans a batch out over
//!   `conpool::parallel_map`, preserving input order.
//! * [`ValidationEngine::explain`] reports each violated constraint's
//!   interned signature, taxonomy kind, and manual-corpus
//!   [`confdep::DocVerdict`]; [`ValidationEngine::repair`] reuses
//!   [`confdep::Solver`]'s propagation/repair machinery to propose a
//!   minimal satisfying assignment.
//!
//! All three paths (indexed, memoized, batched) return verdicts
//! bit-identical to evaluating every constraint directly with
//! [`confdep::Constraint::evaluate`] — the property `repro_service` and
//! `tests/validation_engine.rs` enforce.
//!
//! The engine is ecosystem-agnostic: [`ValidationPlan::compile_for`]
//! builds a plan for any registered [`ecosys::Ecosystem`] (doc
//! verdicts from that ecosystem's manual corpus, repair in its solver
//! scope), and [`ConfigQuery::tagged`] / [`ConfigQuery::from_cli_for`]
//! fold the ecosystem name into the canonical state key and FNV
//! fingerprint, so memo entries can never collide across ecosystems.
//! Untagged queries and [`ValidationPlan::compile`] keep the original
//! ext4 identity bytes exactly. The cross-ecosystem agreement
//! constraints ([`ecosys::cross_fs_constraints`]) compile into the
//! same plan machinery — "must agree" control pairs violate when the
//! two mount components set a shared parameter to different values.

pub mod engine;
pub mod memo;
pub mod plan;
pub mod query;

pub use engine::{
    EngineOptions, EngineStats, EvalStrategy, Explanation, RepairChange, RepairProposal,
    ValidationEngine, ValidationOutcome,
};
pub use memo::{MemoOptions, MemoStats, ShardedMemo};
pub use plan::{PairEntry, ValidationPlan};
pub use query::ConfigQuery;
