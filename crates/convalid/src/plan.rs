//! The immutable, read-optimized validation plan compiled from a
//! [`ConstraintSet`].
//!
//! Compilation happens once at startup; every query afterwards reads
//! the plan lock-free. Each constraint is lowered into a pre-resolved
//! [check](Check) — the kind dispatch, the registry parameter-name
//! mapping, the `"must not equal"` relation probe, and the data-type
//! shape string are all resolved at compile time, so the hot path does
//! no string matching. An inverted index maps every
//! `(component, registry parameter)` a constraint reads to the
//! constraint's position, so a query evaluates only the constraints
//! its touched parameters participate in; everything else is
//! `NotApplicable` by construction (the equivalence argument is spelled
//! out on [`ValidationPlan::evaluate_indexed`]).

use std::collections::HashMap;

use confdep::constraint::registry_name;
use confdep::{ConstraintSet, DepKind, DocVerdict, Endpoint, Verdict};
use e2fstools::typed::{TypedConfig, TypedValue};
use ecosys::Ecosystem;
use serde::{Deserialize, Serialize};

use crate::query::ConfigQuery;

/// One precomputed control-pair row of the plan: a CPD/CCD control
/// constraint with both ends resolved to `(component, registry
/// parameter)` names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairEntry {
    /// Position of the constraint in the compiled set.
    pub position: usize,
    /// Subject component.
    pub s_component: String,
    /// Subject parameter (registry name).
    pub s_param: String,
    /// Object component.
    pub o_component: String,
    /// Object parameter (registry name).
    pub o_param: String,
    /// `true` for a requirement, `false` for mutual exclusion.
    pub requires: bool,
    /// `true` for a cross-ecosystem agreement pair (the "must agree"
    /// relation of the shared-mount-parameter CCDs): both ends engaged
    /// must carry equal values.
    pub agrees: bool,
    /// `true` when the pair spans two components (CCD).
    pub cross_component: bool,
}

/// The required value shape of a data-type check, pre-resolved from
/// the detail's type string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Int,
    Bool,
    Str,
    /// Unknown type strings satisfy vacuously once the value exists.
    Any,
}

impl Shape {
    fn of(ty: &str) -> Shape {
        match ty {
            "integer" | "int" | "size" => Shape::Int,
            "boolean" | "bool" | "flag" => Shape::Bool,
            "string" | "enum" | "path" => Shape::Str,
            _ => Shape::Any,
        }
    }

    fn matches(self, v: &TypedValue) -> bool {
        match self {
            Shape::Int => matches!(v, TypedValue::Int(_)),
            Shape::Bool => matches!(v, TypedValue::Bool(_)),
            Shape::Str => matches!(v, TypedValue::Str(_)),
            Shape::Any => true,
        }
    }
}

/// How a control pair relates its two ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairMode {
    /// Subject engaged requires the object engaged.
    Requires,
    /// Subject and object engaged together is the violation.
    Excludes,
    /// Both ends present must carry *equal* values — the cross-
    /// ecosystem "must agree" relation of the shared-mount-parameter
    /// CCDs.
    Agrees,
}

/// One constraint lowered to its pre-resolved executable form. The
/// evaluation of each variant reproduces `Constraint::evaluate` for
/// the corresponding kind exactly — same falls-through-duplicates
/// value lookup, same predicates, same verdicts.
#[derive(Debug, Clone)]
enum Check {
    /// `SdValueRange` over an integer subject.
    Range {
        component: String,
        param: String,
        min: Option<i64>,
        max: Option<i64>,
        /// Non-empty only when the relation says "must not equal".
        must_not: Vec<i64>,
    },
    /// `SdDataType` with a known required type.
    Type { component: String, param: String, shape: Shape },
    /// `CpdControl`/`CcdControl` with a parameter object.
    Pair {
        s_component: String,
        s_param: String,
        o_component: String,
        o_param: String,
        mode: PairMode,
    },
    /// Statically inert: value couplings, behavioural CCDs, data-type
    /// constraints with no required type, control pairs with no
    /// parameter object. Always `NotApplicable`.
    Inert,
}

/// The exact value-lookup rule of `Constraint::evaluate`: walk every
/// config whose `component` matches and take the first that holds the
/// registry-named parameter. Falling through duplicate components
/// matters once a query can carry more than one config per component
/// (or configs from two ecosystems): stopping at the first match — the
/// plan's original single-ecosystem shortcut — would silently diverge
/// from the direct path.
fn lookup<'a>(views: &[&'a TypedConfig], component: &str, param: &str) -> Option<&'a TypedValue> {
    views.iter().filter(|c| c.component == component).find_map(|c| c.get(param))
}

/// Whether a typed value counts as "engaged" for control pairs —
/// mirrors the constraint compiler's rule.
fn engaged(v: &TypedValue) -> bool {
    match v {
        TypedValue::Bool(b) => *b,
        TypedValue::Int(_) | TypedValue::Str(_) => true,
    }
}

impl Check {
    fn evaluate(&self, views: &[&TypedConfig]) -> Verdict {
        match self {
            Check::Range { component, param, min, max, must_not } => {
                match lookup(views, component, param) {
                    Some(TypedValue::Int(v)) => {
                        if min.is_some_and(|m| *v < m) || max.is_some_and(|m| *v > m) {
                            return Verdict::Violated;
                        }
                        if must_not.contains(v) {
                            return Verdict::Violated;
                        }
                        Verdict::Satisfied
                    }
                    _ => Verdict::NotApplicable,
                }
            }
            Check::Type { component, param, shape } => match lookup(views, component, param) {
                Some(v) => {
                    if shape.matches(v) {
                        Verdict::Satisfied
                    } else {
                        Verdict::Violated
                    }
                }
                None => Verdict::NotApplicable,
            },
            Check::Pair { s_component, s_param, o_component, o_param, mode } => {
                let (Some(s), Some(o)) =
                    (lookup(views, s_component, s_param), lookup(views, o_component, o_param))
                else {
                    return Verdict::NotApplicable;
                };
                if *mode == PairMode::Agrees {
                    return if s == o { Verdict::Satisfied } else { Verdict::Violated };
                }
                let (s_on, o_on) = (engaged(s), engaged(o));
                let conflict = match mode {
                    PairMode::Requires => s_on && !o_on,
                    _ => s_on && o_on,
                };
                if conflict {
                    Verdict::Violated
                } else {
                    Verdict::Satisfied
                }
            }
            Check::Inert => Verdict::NotApplicable,
        }
    }
}

/// The compiled, immutable serving plan over one constraint set.
///
/// Build once (ideally behind an `Arc`), then serve reads from any
/// number of threads — nothing here is interior-mutable.
#[derive(Debug)]
pub struct ValidationPlan {
    set: ConstraintSet,
    /// The ecosystem the plan serves: its manual corpus supplies the
    /// precomputed documentation verdicts, and its solver scope drives
    /// the repair propagation.
    eco: Ecosystem,
    checks: Vec<Check>,
    /// component → registry parameter → positions of the checks that
    /// read that parameter as their *subject*. Two nested maps so the
    /// hot lookup borrows `&str` keys without allocating.
    by_param: HashMap<String, HashMap<String, Vec<u32>>>,
    pairs: Vec<PairEntry>,
    docs: Vec<DocVerdict>,
}

impl ValidationPlan {
    /// Compiles the serving plan over the Ext4 ecosystem — the original
    /// single-ecosystem entry point, byte-compatible with every
    /// established call site.
    pub fn compile(set: ConstraintSet) -> Self {
        ValidationPlan::compile_for(set, ecosys::ext4())
    }

    /// Compiles the serving plan for one registered ecosystem: lower
    /// each constraint to its check, build the inverted parameter index
    /// and the control-pair table, and precompute every constraint's
    /// verdict against the *ecosystem's* manual corpus. The constraint
    /// set need not come from the ecosystem's own models — the
    /// cross-ecosystem agreement set compiles here too.
    pub fn compile_for(set: ConstraintSet, eco: Ecosystem) -> Self {
        let mut checks = Vec::with_capacity(set.len());
        let mut by_param: HashMap<String, HashMap<String, Vec<u32>>> = HashMap::new();
        let mut pairs = Vec::new();
        let mut index = |component: &str, param: &str, pos: usize| {
            by_param
                .entry(component.to_string())
                .or_default()
                .entry(param.to_string())
                .or_default()
                .push(pos as u32);
        };
        for (i, c) in set.constraints().iter().enumerate() {
            let d = &c.dependency;
            let s_component = d.subject.component.clone();
            let s_param = registry_name(&d.subject.component, &d.subject.param).to_string();
            let check = match d.kind {
                DepKind::SdValueRange => {
                    let must_not = if d
                        .detail
                        .relation
                        .as_deref()
                        .is_some_and(|r| r.contains("must not equal"))
                    {
                        d.detail.value_set.clone()
                    } else {
                        Vec::new()
                    };
                    index(&s_component, &s_param, i);
                    Check::Range {
                        component: s_component,
                        param: s_param,
                        min: d.detail.min,
                        max: d.detail.max,
                        must_not,
                    }
                }
                DepKind::SdDataType => match d.detail.data_type.as_deref() {
                    Some(ty) => {
                        index(&s_component, &s_param, i);
                        Check::Type {
                            component: s_component,
                            param: s_param,
                            shape: Shape::of(ty),
                        }
                    }
                    None => Check::Inert,
                },
                DepKind::CpdControl | DepKind::CcdControl => match &d.object {
                    Some(Endpoint::Param(o)) => {
                        let o_param = registry_name(&o.component, &o.param).to_string();
                        let relation = d.detail.relation.as_deref();
                        let mode = if relation.is_some_and(|r| r.contains("must agree")) {
                            PairMode::Agrees
                        } else if relation == Some("requires") {
                            PairMode::Requires
                        } else {
                            PairMode::Excludes
                        };
                        // a pair engages only when *both* ends hold a
                        // value, so indexing under the subject alone
                        // triggers it whenever it can be non-inert
                        index(&s_component, &s_param, i);
                        pairs.push(PairEntry {
                            position: i,
                            s_component: s_component.clone(),
                            s_param: s_param.clone(),
                            o_component: o.component.clone(),
                            o_param: o_param.clone(),
                            requires: mode == PairMode::Requires,
                            agrees: mode == PairMode::Agrees,
                            cross_component: d.kind == DepKind::CcdControl,
                        });
                        Check::Pair {
                            s_component,
                            s_param,
                            o_component: o.component.clone(),
                            o_param,
                            mode,
                        }
                    }
                    _ => Check::Inert,
                },
                DepKind::CpdValue | DepKind::CcdValue | DepKind::CcdBehavioral => Check::Inert,
            };
            checks.push(check);
        }
        // the ecosystem's ConDocCk corpus — the same pages the doc
        // checker reads, so an explanation's doc verdict agrees with
        // `run_condocck_for` over the same dependency
        let manuals = eco.doc_corpus();
        let pages: Vec<&e2fstools::ManualPage> = manuals.iter().collect();
        let docs = set.constraints().iter().map(|c| c.doc_verdict(&pages)).collect();
        ValidationPlan { set, eco, checks, by_param, pairs, docs }
    }

    /// The underlying compiled constraint set.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.set
    }

    /// The ecosystem the plan was compiled for.
    pub fn ecosystem(&self) -> Ecosystem {
        self.eco
    }

    /// Number of constraints in the plan.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// True when the plan holds no constraints.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }

    /// The precomputed control-pair table.
    pub fn pairs(&self) -> &[PairEntry] {
        &self.pairs
    }

    /// The precomputed manual-corpus verdict of the constraint at
    /// `position`.
    pub fn doc_verdict(&self, position: usize) -> DocVerdict {
        self.docs[position]
    }

    /// The baseline: evaluate every compiled constraint directly with
    /// [`confdep::Constraint::evaluate`]. Returns the verdict vector
    /// and the number of constraints evaluated (always the full set).
    pub fn evaluate_naive(&self, views: &[&TypedConfig]) -> (Vec<Verdict>, usize) {
        let verdicts: Vec<Verdict> =
            self.set.constraints().iter().map(|c| c.evaluate(views)).collect();
        let n = verdicts.len();
        (verdicts, n)
    }

    /// The indexed path: evaluate only the checks whose subject
    /// parameter the query actually sets; every other slot stays
    /// `NotApplicable`. Returns the verdict vector and the number of
    /// checks evaluated.
    ///
    /// Equivalence with [`ValidationPlan::evaluate_naive`] holds by
    /// construction: a constraint can only evaluate to something other
    /// than `NotApplicable` when its subject parameter has a value in
    /// *some* config matching its component (ranges and types need the
    /// subject value; control pairs need the subject *and* object
    /// values). The index walk visits every config of the query —
    /// duplicate components included — so any such query triggers the
    /// constraint. Spuriously triggered checks (object-only pairs)
    /// evaluate with the same falls-through-duplicates lookup the
    /// direct path uses, so they land on `NotApplicable` identically.
    pub fn evaluate_indexed(&self, query: &ConfigQuery) -> (Vec<Verdict>, usize) {
        let views = query.views();
        let mut verdicts = vec![Verdict::NotApplicable; self.checks.len()];
        let mut seen = vec![0u64; self.checks.len().div_ceil(64)];
        let mut evaluated = 0usize;
        for cfg in &query.configs {
            let Some(params) = self.by_param.get(&cfg.component) else { continue };
            for name in cfg.values.keys() {
                let Some(positions) = params.get(name) else { continue };
                for &pos in positions {
                    let (word, bit) = ((pos / 64) as usize, pos % 64);
                    if seen[word] & (1 << bit) != 0 {
                        continue;
                    }
                    seen[word] |= 1 << bit;
                    verdicts[pos as usize] = self.checks[pos as usize].evaluate(&views);
                    evaluated += 1;
                }
            }
        }
        (verdicts, evaluated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confdep::{extract_scenario, models, ExtractOptions};

    fn plan() -> ValidationPlan {
        ValidationPlan::compile(ConstraintSet::compile(
            extract_scenario(&models::all(), ExtractOptions::default()).unwrap(),
        ))
    }

    #[test]
    fn compiles_full_set() {
        let p = plan();
        assert_eq!(p.len(), 64);
        assert!(!p.is_empty());
        assert!(!p.pairs().is_empty());
        // every pair row points at a control constraint
        for row in p.pairs() {
            let kind = p.constraints().constraints()[row.position].dependency.kind;
            assert!(matches!(kind, DepKind::CpdControl | DepKind::CcdControl));
            assert_eq!(row.cross_component, kind == DepKind::CcdControl);
        }
    }

    #[test]
    fn indexed_matches_naive_and_skips_untouched() {
        let p = plan();
        let q = ConfigQuery::parse_line(
            "-b 1024 -m 80 -O meta_bg,resize_inode | data=journal,commit=5",
        )
        .unwrap();
        let (naive, full) = p.evaluate_naive(&q.views());
        let (indexed, evaluated) = p.evaluate_indexed(&q);
        assert_eq!(naive, indexed);
        assert_eq!(full, 64);
        assert!(evaluated < full, "indexed evaluated {evaluated} of {full}");
        assert!(naive.contains(&Verdict::Violated), "query built to violate");
    }

    #[test]
    fn empty_query_evaluates_nothing() {
        let p = plan();
        let q = ConfigQuery::parse_line("|").unwrap_or_else(|| ConfigQuery::from_cli(&[], ""));
        let (indexed, evaluated) = p.evaluate_indexed(&q);
        assert_eq!(evaluated, 0);
        assert!(indexed.iter().all(|v| *v == Verdict::NotApplicable));
        let (naive, _) = p.evaluate_naive(&q.views());
        assert_eq!(naive, indexed);
    }

    #[test]
    fn doc_verdicts_precomputed() {
        let p = plan();
        let any_documented =
            (0..p.len()).any(|i| p.doc_verdict(i) == confdep::DocVerdict::Documented);
        assert!(any_documented);
    }

    #[test]
    fn doc_verdicts_use_the_ecosystem_corpus() {
        // the plan reads the same corpus as ConDocCk, which carries the
        // ext4 kernel page — so an ext4-subject constraint must never
        // report NoManual
        let p = plan();
        for (i, c) in p.constraints().constraints().iter().enumerate() {
            if c.dependency.subject.component == "ext4" {
                assert_ne!(
                    p.doc_verdict(i),
                    DocVerdict::NoManual,
                    "{} fell back to NoManual despite the kernel page",
                    c.signature()
                );
            }
        }
    }

    #[test]
    fn indexed_falls_through_duplicate_components() {
        // regression: the indexed path used to stop at the *first*
        // config matching a constraint's component, while the direct
        // path falls through duplicates — a query carrying an empty
        // `mke2fs` view before a populated one diverged
        let p = plan();
        let empty = TypedConfig::new("mke2fs");
        let mut populated = TypedConfig::new("mke2fs");
        populated.set_int("blocksize", 99); // violates the 1024..=65536 range
        let q = ConfigQuery::new(vec![empty, populated, TypedConfig::new("mount")]);
        let (naive, _) = p.evaluate_naive(&q.views());
        let (indexed, evaluated) = p.evaluate_indexed(&q);
        assert_eq!(naive, indexed, "indexed diverged on duplicate components");
        assert!(evaluated > 0);
        assert!(naive.contains(&Verdict::Violated), "the range violation must surface");
    }

    #[test]
    fn cross_fs_agreement_set_compiles_and_serves() {
        // the cross-ecosystem shared-mount-parameter CCDs flow through
        // the same plan machinery: "must agree" pairs violate exactly
        // when both ends hold *different* values, on both eval paths
        let p = ValidationPlan::compile_for(ecosys::cross_fs_constraints(), ecosys::ext4());
        assert!(!p.is_empty());
        assert!(p.pairs().iter().all(|row| row.agrees && row.cross_component));
        let mut ext4_mnt = TypedConfig::new("mount");
        let mut f2fs_mnt = TypedConfig::new("f2fs");
        ext4_mnt.set_bool("discard", true);
        f2fs_mnt.set_bool("discard", false);
        let q = ConfigQuery::new(vec![ext4_mnt.clone(), f2fs_mnt.clone()]);
        let (naive, _) = p.evaluate_naive(&q.views());
        let (indexed, _) = p.evaluate_indexed(&q);
        assert_eq!(naive, indexed, "must-agree pairs diverged between eval paths");
        assert!(naive.contains(&Verdict::Violated), "divergent discard must violate");
        // agreement satisfies
        f2fs_mnt.set_bool("discard", true);
        let q = ConfigQuery::new(vec![ext4_mnt, f2fs_mnt]);
        let (naive, _) = p.evaluate_naive(&q.views());
        let (indexed, _) = p.evaluate_indexed(&q);
        assert_eq!(naive, indexed);
        assert!(!naive.contains(&Verdict::Violated));
        assert!(naive.contains(&Verdict::Satisfied));
    }

    #[test]
    fn f2fs_plan_serves_the_second_ecosystem() {
        let eco = ecosys::f2fs();
        let p = ValidationPlan::compile_for(eco.constraints().unwrap(), eco);
        assert!(p.len() >= 25, "only {} f2fs constraints", p.len());
        assert_eq!(p.ecosystem().name, "f2fs");
        // the casefold/encrypt format-time conflict must violate on
        // both paths for a tagged f2fs query
        let q = ConfigQuery::parse_line_for(&eco, "-O casefold,encrypt | ro").unwrap();
        let (naive, full) = p.evaluate_naive(&q.views());
        let (indexed, evaluated) = p.evaluate_indexed(&q);
        assert_eq!(naive, indexed);
        assert!(evaluated < full, "indexed evaluated {evaluated} of {full}");
        assert!(naive.contains(&Verdict::Violated));
    }
}
