//! The unit of work the engine serves: one whole-configuration state.

use std::sync::OnceLock;

use e2fstools::typed::TypedConfig;
use ecosys::Ecosystem;
use serde::{Deserialize, Serialize};

/// One validation query: the typed configurations of a
/// whole-configuration state (typically the `mke2fs` invocation plus
/// the `mount` option string, but any component set works).
///
/// The query carries its own canonical identity — the concatenated
/// [`TypedConfig::canonical_key`]s, prefixed with the ecosystem tag
/// when one is set — and an FNV-1a fingerprint of it, the key the
/// sharded memo shards and indexes by. Like the fuzz corpus's
/// `GeneratedConfig::state_id`, the fingerprint is computed once and
/// travels with the query (clones included), so repeated serving of
/// the same state never re-hashes it.
///
/// Untagged queries (the original single-ecosystem shape) keep their
/// exact historical identity: the state key, the fingerprint, and the
/// serialized wire format are byte-identical to before the ecosystem
/// tag existed. Tagged queries fold the tag into all three, so two
/// ecosystems whose typed views happen to render the same canonical
/// keys can never share a memo entry.
#[derive(Debug, Clone)]
pub struct ConfigQuery {
    /// The component configurations, one per component.
    pub configs: Vec<TypedConfig>,
    /// The ecosystem this state belongs to, when the caller serves more
    /// than one (`None` preserves the original single-ecosystem
    /// identity bytes).
    ecosystem: Option<String>,
    /// Lazily-computed, clone-carried FNV fingerprint. May go stale if
    /// `configs` is mutated after the first [`ConfigQuery::fingerprint`]
    /// call — safe regardless, because the memo compares stored queries
    /// structurally on every hit — but rebuild the query to keep the
    /// memo effective.
    fingerprint: OnceLock<u64>,
}

impl PartialEq for ConfigQuery {
    fn eq(&self, other: &Self) -> bool {
        self.ecosystem == other.ecosystem && self.configs == other.configs
    }
}

impl Eq for ConfigQuery {}

// Keep the wire format of the former derive: `{"configs": [...]}`. The
// `ecosystem` key is emitted only when a tag is set, so untagged
// queries serialize byte-identically to the pre-tag format. The cached
// fingerprint is recomputed on demand after deserialisation.
impl Serialize for ConfigQuery {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![("configs".to_string(), self.configs.to_value())];
        if let Some(eco) = &self.ecosystem {
            entries.push(("ecosystem".to_string(), serde::Value::Str(eco.clone())));
        }
        serde::Value::Map(entries)
    }
}

impl<'de> Deserialize<'de> for ConfigQuery {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let configs = serde::__private::map_field(value, "configs")?;
        let mut query = ConfigQuery::new(Vec::<TypedConfig>::from_value(configs)?);
        if let Some(eco) = serde::__private::opt_map_field(value, "ecosystem")? {
            query.ecosystem = Some(String::from_value(eco)?);
        }
        Ok(query)
    }
}

impl ConfigQuery {
    /// A query over pre-built typed configurations, untagged — the
    /// original single-ecosystem identity.
    pub fn new(configs: Vec<TypedConfig>) -> Self {
        ConfigQuery { configs, ecosystem: None, fingerprint: OnceLock::new() }
    }

    /// A query tagged with the ecosystem it belongs to. The tag becomes
    /// part of the canonical state key and the FNV fingerprint, so memo
    /// entries of different ecosystems can never collide.
    pub fn tagged(ecosystem: &str, configs: Vec<TypedConfig>) -> Self {
        ConfigQuery {
            configs,
            ecosystem: Some(ecosystem.to_string()),
            fingerprint: OnceLock::new(),
        }
    }

    /// The ecosystem tag, when one is set.
    pub fn ecosystem(&self) -> Option<&str> {
        self.ecosystem.as_deref()
    }

    /// A query from the concrete CLI surface: raw `mke2fs` arguments
    /// plus a `mount -o` option string, lowered through the same
    /// lenient typed views the fuzz campaigns key states with.
    pub fn from_cli(mkfs_args: &[String], mount_opts: &str) -> Self {
        ConfigQuery::new(vec![
            TypedConfig::from_mkfs_args_lenient(mkfs_args),
            TypedConfig::from_mount_opts_lenient(mount_opts),
        ])
    }

    /// [`ConfigQuery::from_cli`] for any registered ecosystem: the
    /// create arguments and mount options are lowered through the
    /// ecosystem's own lenient views (the same parsers its solver scope
    /// re-keys rendered states with), and the query is tagged with the
    /// ecosystem's name.
    pub fn from_cli_for(eco: &Ecosystem, create_args: &[String], mount_opts: &str) -> Self {
        let scope = eco.solver_scope();
        ConfigQuery::tagged(
            eco.name,
            vec![(scope.parse_create)(create_args), (scope.parse_mount)(mount_opts)],
        )
    }

    /// Parses one batch-file line: `<mke2fs args> | <mount opts>`, e.g.
    /// `-b 1024 -O meta_bg,resize_inode | data=journal,commit=5`. The
    /// `|` separator (and the mount half) may be omitted; blank lines
    /// and `#` comments yield `None`.
    pub fn parse_line(line: &str) -> Option<Self> {
        let (args, mount_part) = split_line(line)?;
        Some(ConfigQuery::from_cli(&args, mount_part))
    }

    /// [`ConfigQuery::parse_line`] against a specific ecosystem: same
    /// line format (`<create args> | <mount opts>`), lowered through
    /// the ecosystem's lenient views and tagged with its name.
    pub fn parse_line_for(eco: &Ecosystem, line: &str) -> Option<Self> {
        let (args, mount_part) = split_line(line)?;
        Some(ConfigQuery::from_cli_for(eco, &args, mount_part))
    }

    /// Borrowed views in component order — the shape
    /// [`confdep::Constraint::evaluate`] takes.
    pub fn views(&self) -> Vec<&TypedConfig> {
        self.configs.iter().collect()
    }

    /// The canonical identity string: every config's canonical key,
    /// `;`-joined in the order given, prefixed `<ecosystem>#` when the
    /// query is tagged. Used for display, dedup, and debugging; the
    /// memo's hot path hashes the same byte stream via
    /// [`ConfigQuery::fingerprint`] without rendering this string.
    pub fn state_key(&self) -> String {
        let mut key = String::new();
        if let Some(eco) = &self.ecosystem {
            key.push_str(eco);
            key.push('#');
        }
        for (i, cfg) in self.configs.iter().enumerate() {
            if i > 0 {
                key.push(';');
            }
            cfg.canonical_key_into(&mut key).expect("String formatting is infallible");
        }
        key
    }

    /// FNV-1a fingerprint of [`ConfigQuery::state_key`], folded
    /// directly over the typed structure ([`TypedConfig::canonical_fnv1a`])
    /// — no string rendering, no `fmt` machinery — and computed at most
    /// once per query lineage (the cache travels with clones). This is
    /// the serving hot path: every memoized lookup starts here.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            if let Some(eco) = &self.ecosystem {
                for b in eco.bytes().chain(std::iter::once(b'#')) {
                    hash ^= u64::from(b);
                    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            for (i, cfg) in self.configs.iter().enumerate() {
                if i > 0 {
                    hash ^= u64::from(b';');
                    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
                }
                hash = cfg.canonical_fnv1a(hash);
            }
            hash
        })
    }
}

/// Splits one batch line into `(create argv, mount half)`; `None` for
/// blanks and `#` comments.
fn split_line(line: &str) -> Option<(Vec<String>, &str)> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let (create_part, mount_part) = match line.split_once('|') {
        Some((m, o)) => (m.trim(), o.trim()),
        None => (line, ""),
    };
    let args: Vec<String> = create_part.split_whitespace().map(str::to_string).collect();
    Some((args, mount_part))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_matches_keyed_hash() {
        let q = ConfigQuery::parse_line("-b 1024 -O extent | data=journal").unwrap();
        let direct = q.state_key().bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        assert_eq!(q.fingerprint(), direct);
    }

    #[test]
    fn tagged_fingerprint_matches_keyed_hash_too() {
        // the fingerprint == FNV(state_key) invariant holds with the
        // ecosystem prefix folded in
        let q = ConfigQuery::parse_line_for(&ecosys::f2fs(), "-o 10 | discard").unwrap();
        assert!(q.state_key().starts_with("f2fs#"));
        let direct = q.state_key().bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        assert_eq!(q.fingerprint(), direct);
    }

    #[test]
    fn parse_line_splits_halves() {
        let q = ConfigQuery::parse_line("-b 1024 | ro,commit=5").unwrap();
        assert_eq!(q.configs.len(), 2);
        assert_eq!(q.configs[0].component, "mke2fs");
        assert_eq!(q.configs[0].get_int("blocksize"), Some(1024));
        assert_eq!(q.configs[1].component, "mount");
        assert_eq!(q.configs[1].get_int("commit"), Some(5));
        // mount half optional
        let bare = ConfigQuery::parse_line("-m 5").unwrap();
        assert!(bare.configs[1].values.is_empty());
        // comments and blanks skipped
        assert!(ConfigQuery::parse_line("# comment").is_none());
        assert!(ConfigQuery::parse_line("   ").is_none());
    }

    #[test]
    fn state_key_is_argument_order_independent() {
        let a = ConfigQuery::parse_line("-b 1024 -m 5 | ro").unwrap();
        let b = ConfigQuery::parse_line("-m 5 -b 1024 | ro").unwrap();
        assert_eq!(a.state_key(), b.state_key());
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = ConfigQuery::parse_line("-m 6 -b 1024 | ro").unwrap();
        assert_ne!(a.state_key(), c.state_key());
    }

    #[test]
    fn untagged_identity_and_wire_format_are_the_pre_tag_bytes() {
        // the single-ecosystem shape is pinned: no tag in the state
        // key, the fingerprint is the plain FNV of the joined keys, and
        // the wire format is exactly `{"configs": [...]}`
        let q = ConfigQuery::parse_line("-b 1024 -O extent | data=journal").unwrap();
        assert!(q.ecosystem().is_none());
        assert!(!q.state_key().contains('#'));
        let serde::Value::Map(entries) = q.to_value() else { panic!("not a map") };
        assert_eq!(entries.len(), 1, "untagged wire format grew a key: {entries:?}");
        assert_eq!(entries[0].0, "configs");
        let json = serde_json::to_string(&q).unwrap();
        assert!(json.starts_with("{\"configs\":"), "{json}");
        assert!(!json.contains("ecosystem"), "{json}");
    }

    #[test]
    fn ecosystem_tag_changes_key_and_fingerprint() {
        let untagged = ConfigQuery::parse_line("-b 1024 | ro").unwrap();
        let tagged = ConfigQuery::tagged("ext4", untagged.configs.clone());
        assert_ne!(untagged, tagged);
        assert_ne!(untagged.state_key(), tagged.state_key());
        assert_ne!(untagged.fingerprint(), tagged.fingerprint());
        assert_eq!(tagged.state_key(), format!("ext4#{}", untagged.state_key()));
        // two different tags over the same configs diverge as well
        let other = ConfigQuery::tagged("f2fs", untagged.configs.clone());
        assert_ne!(tagged.fingerprint(), other.fingerprint());
        assert_ne!(tagged, other);
    }

    #[test]
    fn tagged_queries_roundtrip_through_serde() {
        let q = ConfigQuery::parse_line_for(&ecosys::f2fs(), "-s 2 | ro,discard").unwrap();
        assert_eq!(q.ecosystem(), Some("f2fs"));
        assert_eq!(q.configs[0].component, "mkfs_f2fs");
        assert_eq!(q.configs[1].component, "f2fs");
        let json = serde_json::to_string(&q).unwrap();
        assert!(json.contains("\"ecosystem\":\"f2fs\""), "{json}");
        let back: ConfigQuery = serde_json::from_str(&json).unwrap();
        assert_eq!(back, q);
        assert_eq!(back.fingerprint(), q.fingerprint());
    }
}
