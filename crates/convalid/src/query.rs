//! The unit of work the engine serves: one whole-configuration state.

use std::sync::OnceLock;

use e2fstools::typed::TypedConfig;
use serde::{Deserialize, Serialize};

/// One validation query: the typed configurations of a
/// whole-configuration state (typically the `mke2fs` invocation plus
/// the `mount` option string, but any component set works).
///
/// The query carries its own canonical identity — the concatenated
/// [`TypedConfig::canonical_key`]s — and an FNV-1a fingerprint of it,
/// the key the sharded memo shards and indexes by. Like the fuzz
/// corpus's `GeneratedConfig::state_id`, the fingerprint is computed
/// once and travels with the query (clones included), so repeated
/// serving of the same state never re-hashes it.
#[derive(Debug, Clone)]
pub struct ConfigQuery {
    /// The component configurations, one per component.
    pub configs: Vec<TypedConfig>,
    /// Lazily-computed, clone-carried FNV fingerprint. May go stale if
    /// `configs` is mutated after the first [`ConfigQuery::fingerprint`]
    /// call — safe regardless, because the memo compares stored queries
    /// structurally on every hit — but rebuild the query to keep the
    /// memo effective.
    fingerprint: OnceLock<u64>,
}

impl PartialEq for ConfigQuery {
    fn eq(&self, other: &Self) -> bool {
        self.configs == other.configs
    }
}

impl Eq for ConfigQuery {}

// Keep the wire format of the former derive: `{"configs": [...]}`.
// The cached fingerprint is recomputed on demand after deserialisation.
impl Serialize for ConfigQuery {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![("configs".to_string(), self.configs.to_value())])
    }
}

impl<'de> Deserialize<'de> for ConfigQuery {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let configs = serde::__private::map_field(value, "configs")?;
        Ok(ConfigQuery::new(Vec::<TypedConfig>::from_value(configs)?))
    }
}

impl ConfigQuery {
    /// A query over pre-built typed configurations.
    pub fn new(configs: Vec<TypedConfig>) -> Self {
        ConfigQuery { configs, fingerprint: OnceLock::new() }
    }

    /// A query from the concrete CLI surface: raw `mke2fs` arguments
    /// plus a `mount -o` option string, lowered through the same
    /// lenient typed views the fuzz campaigns key states with.
    pub fn from_cli(mkfs_args: &[String], mount_opts: &str) -> Self {
        ConfigQuery::new(vec![
            TypedConfig::from_mkfs_args_lenient(mkfs_args),
            TypedConfig::from_mount_opts_lenient(mount_opts),
        ])
    }

    /// Parses one batch-file line: `<mke2fs args> | <mount opts>`, e.g.
    /// `-b 1024 -O meta_bg,resize_inode | data=journal,commit=5`. The
    /// `|` separator (and the mount half) may be omitted; blank lines
    /// and `#` comments yield `None`.
    pub fn parse_line(line: &str) -> Option<Self> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return None;
        }
        let (mkfs_part, mount_part) = match line.split_once('|') {
            Some((m, o)) => (m.trim(), o.trim()),
            None => (line, ""),
        };
        let args: Vec<String> = mkfs_part.split_whitespace().map(str::to_string).collect();
        Some(ConfigQuery::from_cli(&args, mount_part))
    }

    /// Borrowed views in component order — the shape
    /// [`confdep::Constraint::evaluate`] takes.
    pub fn views(&self) -> Vec<&TypedConfig> {
        self.configs.iter().collect()
    }

    /// The canonical identity string: every config's canonical key,
    /// `;`-joined in the order given. Used for display, dedup, and
    /// debugging; the memo's hot path hashes the same byte stream via
    /// [`ConfigQuery::fingerprint`] without rendering this string.
    pub fn state_key(&self) -> String {
        let mut key = String::new();
        for (i, cfg) in self.configs.iter().enumerate() {
            if i > 0 {
                key.push(';');
            }
            cfg.canonical_key_into(&mut key).expect("String formatting is infallible");
        }
        key
    }

    /// FNV-1a fingerprint of [`ConfigQuery::state_key`], folded
    /// directly over the typed structure ([`TypedConfig::canonical_fnv1a`])
    /// — no string rendering, no `fmt` machinery — and computed at most
    /// once per query lineage (the cache travels with clones). This is
    /// the serving hot path: every memoized lookup starts here.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for (i, cfg) in self.configs.iter().enumerate() {
                if i > 0 {
                    hash ^= u64::from(b';');
                    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
                }
                hash = cfg.canonical_fnv1a(hash);
            }
            hash
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_matches_keyed_hash() {
        let q = ConfigQuery::parse_line("-b 1024 -O extent | data=journal").unwrap();
        let direct = q.state_key().bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        assert_eq!(q.fingerprint(), direct);
    }

    #[test]
    fn parse_line_splits_halves() {
        let q = ConfigQuery::parse_line("-b 1024 | ro,commit=5").unwrap();
        assert_eq!(q.configs.len(), 2);
        assert_eq!(q.configs[0].component, "mke2fs");
        assert_eq!(q.configs[0].get_int("blocksize"), Some(1024));
        assert_eq!(q.configs[1].component, "mount");
        assert_eq!(q.configs[1].get_int("commit"), Some(5));
        // mount half optional
        let bare = ConfigQuery::parse_line("-m 5").unwrap();
        assert!(bare.configs[1].values.is_empty());
        // comments and blanks skipped
        assert!(ConfigQuery::parse_line("# comment").is_none());
        assert!(ConfigQuery::parse_line("   ").is_none());
    }

    #[test]
    fn state_key_is_argument_order_independent() {
        let a = ConfigQuery::parse_line("-b 1024 -m 5 | ro").unwrap();
        let b = ConfigQuery::parse_line("-m 5 -b 1024 | ro").unwrap();
        assert_eq!(a.state_key(), b.state_key());
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = ConfigQuery::parse_line("-m 6 -b 1024 | ro").unwrap();
        assert_ne!(a.state_key(), c.state_key());
    }
}
