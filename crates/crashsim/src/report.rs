//! Report types: what happened at each explored crash point.

use serde::{Deserialize, Serialize};

/// How a crash image was derived from the recorded trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashKind {
    /// Power failed after exactly `writes` writes reached the platter
    /// (in issue order, nothing reordered).
    Prefix {
        /// Writes that completed before the failure.
        writes: usize,
    },
    /// Write number `write` (1-based) was torn: only its first
    /// `persisted` bytes made it, the rest of the block kept its old
    /// contents.
    TornWrite {
        /// The interrupted write.
        write: usize,
        /// Bytes of the new data that persisted.
        persisted: usize,
    },
    /// The device had a volatile write cache: at the crash, every write
    /// after the last completed flush barrier was dropped — except
    /// write `straggler` (1-based), which the cache had already evicted
    /// out of order.
    VolatileCache {
        /// Writes guaranteed durable by the last flush barrier.
        durable: usize,
        /// The one post-barrier write that persisted anyway.
        straggler: usize,
    },
    /// Deep reordering inside the volatile cache: the crash struck
    /// after write `crashed_at` (1-based) had been issued, the cache
    /// dropped everything after the last completed flush barrier —
    /// except write `straggler`, which it had evicted out of order.
    /// Unlike [`CrashKind::VolatileCache`], the straggler here is an
    /// *interior* post-barrier write (`straggler < crashed_at`), so one
    /// crash instant yields many reordering scenarios.
    ReorderedWrite {
        /// Writes guaranteed durable by the last flush barrier.
        durable: usize,
        /// The interior post-barrier write that persisted anyway.
        straggler: usize,
        /// The write whose completion the crash interrupted.
        crashed_at: usize,
    },
}

impl CrashKind {
    /// Writes guaranteed present in the crash image and covered by its
    /// durability contract — data loss is only judged against these.
    pub fn guaranteed_writes(&self) -> usize {
        match *self {
            CrashKind::Prefix { writes } => writes,
            CrashKind::TornWrite { write, .. } => write - 1,
            CrashKind::VolatileCache { durable, .. } => durable,
            CrashKind::ReorderedWrite { durable, .. } => durable,
        }
    }
}

/// The engine-independent core of a classification: everything about a
/// crash image's fate except the [`CrashKind`] it was reached through.
/// This is what the digest memo and the persistent verdict store key by
/// image content — two crash kinds producing byte-identical images
/// under the same durability contract share one `OutcomeCore`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCore {
    /// The classification.
    pub verdict: Verdict,
    /// Exit code of the deciding `e2fsck` run, when one completed.
    pub fsck_exit: Option<i32>,
    /// Number of fixes the repair applied.
    pub fixes: usize,
    /// Whether recovery needed a backup superblock.
    pub used_backup_superblock: bool,
    /// Human-readable explanation.
    pub detail: String,
}

impl OutcomeCore {
    /// Attaches the crash kind, yielding a full [`CrashOutcome`].
    pub fn into_outcome(self, kind: CrashKind) -> CrashOutcome {
        CrashOutcome {
            kind,
            verdict: self.verdict,
            fsck_exit: self.fsck_exit,
            fixes: self.fixes,
            used_backup_superblock: self.used_backup_superblock,
            detail: self.detail,
        }
    }
}

/// Outcome class of one crash point, worst last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// `e2fsck -n -f` finds nothing; the image mounts as-is.
    Consistent,
    /// `e2fsck -y` (possibly via a backup superblock) restores a clean,
    /// mountable image with all flush-covered data intact.
    Repairable,
    /// The image was repaired and mounts, but data a flush barrier had
    /// guaranteed durable is gone.
    DataLoss,
    /// No fsck strategy produced a clean, mountable image.
    Unrecoverable,
}

/// One explored crash point and its fate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrashOutcome {
    /// How the image was derived.
    pub kind: CrashKind,
    /// The classification.
    pub verdict: Verdict,
    /// Exit code of the deciding `e2fsck` run, when one ran to
    /// completion (0 = clean, 1 = corrected, 4 = uncorrected).
    pub fsck_exit: Option<i32>,
    /// Number of fixes the repair applied.
    pub fixes: usize,
    /// Whether recovery needed a backup superblock (`e2fsck -b`).
    pub used_backup_superblock: bool,
    /// Human-readable explanation.
    pub detail: String,
}

/// Per-verdict totals of a report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictCounts {
    /// Crash points already consistent.
    pub consistent: usize,
    /// Crash points repaired losslessly.
    pub repairable: usize,
    /// Crash points repaired with durable data missing.
    pub data_loss: usize,
    /// Crash points no strategy recovered.
    pub unrecoverable: usize,
}

/// I/O-level accounting of one exploration run: the denominators any
/// future performance change is measured against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreStats {
    /// Crash points enumerated (= `outcomes.len()`).
    pub crash_points: usize,
    /// Block writes issued materialising crash images, counted by
    /// `blockdev` stats wrappers. The legacy full-replay engine pays
    /// O(W²) here; the rolling engine O(W).
    pub blocks_replayed: u64,
    /// Images pushed through the full recovery stack.
    pub images_classified: usize,
    /// Crash points whose verdict came from the image-digest cache
    /// (their image was byte-identical to an already-classified one
    /// under the same durability contract).
    pub cache_hits: usize,
    /// Flush barriers observed in the recorded trace.
    pub flushes_observed: usize,
    /// Classification worker threads used.
    pub threads: usize,
    /// Block reads issued materialising crash images.
    #[serde(default)]
    pub blocks_read: u64,
    /// Bulk `read_blocks` calls during materialisation (their blocks are
    /// also counted into `blocks_read`).
    #[serde(default)]
    pub bulk_reads: u64,
    /// Bulk `write_blocks` calls during materialisation (their blocks
    /// are also counted into `blocks_replayed`).
    #[serde(default)]
    pub bulk_writes: u64,
    /// Per-read buffer allocations (`read_block_vec`) during
    /// materialisation.
    #[serde(default)]
    pub vec_allocs: u64,
    /// Crash schedules the partial-order reduction proved equivalent to
    /// an already-planned representative and therefore never
    /// materialised (POR engine only; zero elsewhere).
    #[serde(default)]
    pub schedules_pruned: usize,
    /// Distinct image-equivalence classes the POR engine planned from
    /// the trace (POR engine only; zero elsewhere).
    #[serde(default)]
    pub por_classes: usize,
    /// Verdicts answered by the persistent cross-run store.
    #[serde(default)]
    pub store_hits: usize,
    /// Store lookups that had to fall through to classification.
    #[serde(default)]
    pub store_misses: usize,
}

/// Everything the explorer learned about one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrashReport {
    /// Workload name.
    pub workload: String,
    /// Writes in the recorded trace.
    pub writes: usize,
    /// Flush barriers in the recorded trace.
    pub flushes: usize,
    /// One entry per explored crash point.
    pub outcomes: Vec<CrashOutcome>,
    /// I/O accounting of the exploration itself (engine-dependent;
    /// excluded from cross-engine report equality).
    #[serde(default)]
    pub stats: ExploreStats,
}

impl CrashReport {
    /// Totals by verdict.
    pub fn counts(&self) -> VerdictCounts {
        let mut c = VerdictCounts::default();
        for o in &self.outcomes {
            match o.verdict {
                Verdict::Consistent => c.consistent += 1,
                Verdict::Repairable => c.repairable += 1,
                Verdict::DataLoss => c.data_loss += 1,
                Verdict::Unrecoverable => c.unrecoverable += 1,
            }
        }
        c
    }

    /// Crash points that left the image in need of repair (or worse).
    pub fn corrupting(&self) -> usize {
        self.outcomes.len() - self.counts().consistent
    }

    /// The worst verdict seen, or `Consistent` for an empty report.
    pub fn worst(&self) -> Verdict {
        self.outcomes.iter().map(|o| o.verdict).max().unwrap_or(Verdict::Consistent)
    }

    /// A canonical, engine-independent rendering of the outcomes: one
    /// string per crash point, sorted. Two explorations agree exactly
    /// when their signatures are equal, regardless of engine, thread
    /// count or cache configuration.
    pub fn canonical_signature(&self) -> Vec<String> {
        let mut sig: Vec<String> = self.outcomes.iter().map(|o| format!("{o:?}")).collect();
        sig.sort();
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(verdict: Verdict) -> CrashOutcome {
        CrashOutcome {
            kind: CrashKind::Prefix { writes: 0 },
            verdict,
            fsck_exit: Some(0),
            fixes: 0,
            used_backup_superblock: false,
            detail: String::new(),
        }
    }

    #[test]
    fn verdicts_order_by_severity() {
        assert!(Verdict::Consistent < Verdict::Repairable);
        assert!(Verdict::Repairable < Verdict::DataLoss);
        assert!(Verdict::DataLoss < Verdict::Unrecoverable);
    }

    #[test]
    fn counts_and_worst() {
        let report = CrashReport {
            workload: "t".to_string(),
            writes: 3,
            flushes: 1,
            outcomes: vec![
                outcome(Verdict::Consistent),
                outcome(Verdict::Repairable),
                outcome(Verdict::Repairable),
            ],
            stats: ExploreStats::default(),
        };
        let c = report.counts();
        assert_eq!((c.consistent, c.repairable, c.data_loss, c.unrecoverable), (1, 2, 0, 0));
        assert_eq!(report.corrupting(), 2);
        assert_eq!(report.worst(), Verdict::Repairable);
    }

    #[test]
    fn guaranteed_writes_per_kind() {
        assert_eq!(CrashKind::Prefix { writes: 5 }.guaranteed_writes(), 5);
        assert_eq!(CrashKind::TornWrite { write: 5, persisted: 100 }.guaranteed_writes(), 4);
        assert_eq!(CrashKind::VolatileCache { durable: 2, straggler: 5 }.guaranteed_writes(), 2);
        let deep = CrashKind::ReorderedWrite { durable: 2, straggler: 4, crashed_at: 6 };
        assert_eq!(deep.guaranteed_writes(), 2);
    }

    #[test]
    fn outcome_core_round_trips_into_outcome() {
        let core = OutcomeCore {
            verdict: Verdict::Repairable,
            fsck_exit: Some(1),
            fixes: 3,
            used_backup_superblock: true,
            detail: "fixed".to_string(),
        };
        let json = serde_json::to_string(&core).unwrap();
        let back: OutcomeCore = serde_json::from_str(&json).unwrap();
        assert_eq!(back, core);
        let kind = CrashKind::ReorderedWrite { durable: 1, straggler: 2, crashed_at: 3 };
        let full = core.into_outcome(kind);
        assert_eq!(full.kind, kind);
        assert_eq!(full.verdict, Verdict::Repairable);
        assert!(full.used_backup_superblock);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = CrashReport {
            workload: "t".to_string(),
            writes: 1,
            flushes: 0,
            outcomes: vec![outcome(Verdict::Unrecoverable)],
            stats: ExploreStats { crash_points: 1, threads: 2, ..ExploreStats::default() },
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: CrashReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.workload, report.workload);
        assert_eq!(back.outcomes[0].verdict, Verdict::Unrecoverable);
        assert_eq!(back.stats, report.stats);
    }

    #[test]
    fn stats_default_when_absent_from_json() {
        // reports serialised before the stats field existed still parse
        let json = r#"{"workload":"t","writes":0,"flushes":0,"outcomes":[]}"#;
        let back: CrashReport = serde_json::from_str(json).unwrap();
        assert_eq!(back.stats, ExploreStats::default());
    }

    #[test]
    fn canonical_signature_ignores_order_but_not_content() {
        let a = CrashReport {
            workload: "t".to_string(),
            writes: 2,
            flushes: 0,
            outcomes: vec![outcome(Verdict::Consistent), outcome(Verdict::Repairable)],
            stats: ExploreStats::default(),
        };
        let mut b = a.clone();
        b.outcomes.reverse();
        b.stats.cache_hits = 7; // stats never affect the signature
        assert_eq!(a.canonical_signature(), b.canonical_signature());
        let mut c = a.clone();
        c.outcomes[0].verdict = Verdict::DataLoss;
        assert_ne!(a.canonical_signature(), c.canonical_signature());
    }
}
