//! Crash-consistency exploration for the simulated Ext4 ecosystem.
//!
//! The paper's dependency violations corrupt file systems through
//! *completed* operations (Figure 1: a `sparse_super2` resize). This
//! crate asks the complementary robustness question: what does every
//! *interrupted* operation leave behind? It takes the write/flush
//! stream a [`blockdev::RecordingDevice`] captured, enumerates crash
//! points over it ([`explore`]), materialises the post-crash image for
//! each, and pushes the image through the real recovery stack —
//! `e2fsck -n -f`, `e2fsck -y -f` with a backup-superblock fallback
//! (locations supplied by [`e2fstools::backup_superblock_candidates`],
//! themselves a cross-component dependency on the `mke2fs` sparse
//! features), and a read-only remount with a durable-data audit.
//!
//! Every crash point lands in one of four classes ([`Verdict`]):
//! `Consistent`, `Repairable`, `DataLoss` or `Unrecoverable`. For a
//! journalled workload the first two are the contract: the jbd2-style
//! commit protocol (data, flush, commit record, flush) must make every
//! write prefix recoverable. [`workloads`] packages the operations the
//! repro drives: `mke2fs` format, the Figure 1 resize, journalled file
//! writes, and `e4defrag`.
//!
//! # Examples
//!
//! ```
//! use crashsim::{explore, journaled_write_workload, ExploreOptions, Verdict};
//!
//! let files = vec![("note".to_string(), vec![42u8; 100])];
//! let workload = journaled_write_workload(&files).unwrap();
//! let report = explore(&workload, &ExploreOptions::sampled(4)).unwrap();
//! assert!(report.outcomes.iter().all(|o| o.verdict <= Verdict::Repairable));
//! ```

mod explore;
mod report;
mod workloads;

pub use blockdev::{IoEvent, IoTrace, StoreKey, StoreOpenReport, VerdictStore};
pub use explore::{explore, ExploreOptions};
pub use report::{
    CrashKind, CrashOutcome, CrashReport, ExploreStats, OutcomeCore, Verdict, VerdictCounts,
};
pub use workloads::{
    defrag_workload, figure1_resize_workload, format_workload, generated_corpus,
    generated_workload, journaled_write_workload, CorpusSpec, DurableExpectation, Workload,
};
