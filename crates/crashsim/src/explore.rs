//! Crash-point enumeration, image materialisation and classification.
//!
//! For a recorded trace of `W` writes the explorer considers:
//!
//! * every **write prefix** — power fails after exactly `k` writes,
//!   `k = 0..=W`;
//! * a **torn** variant of each prefix's final write — the interrupted
//!   write persisted only its first half;
//! * **volatile-cache** variants — writes issued after the last flush
//!   barrier are dropped, except the most recent one, which the cache
//!   evicted out of order. This is the scenario the journal's flush
//!   barriers exist to prevent: a commit record persisting before the
//!   data it seals.
//!
//! Each image is judged with the real (simulated) recovery stack:
//! `e2fsck -n -f`, then `e2fsck -y -f` with a backup-superblock
//! fallback, then a read-only mount and a durable-data audit.
//!
//! # Engine
//!
//! Materialisation is **incremental** by default: one rolling
//! [`CowDevice`] advances write-by-write (O(W) block writes for the
//! whole trace) and every crash point freezes a copy-on-write
//! [`CowDevice::snapshot`] instead of replaying its prefix from
//! scratch (O(W²) in total). Classification of the independent images
//! fans out across a scoped worker pool ([`ExploreOptions::threads`])
//! with a deterministic input-order merge, and verdicts are memoised by
//! image content digest ([`ExploreOptions::verdict_cache`]): torn and
//! reordered variants frequently collapse to byte-identical images, so
//! the recovery stack only ever sees each distinct image once. The
//! legacy full-replay engine survives as
//! [`ExploreOptions::sequential_baseline`] — the benchmark's reference
//! point — and produces an identical report.

use std::collections::HashMap;

use blockdev::{
    digest_device, BlockDevice, CowDevice, DeviceError, ImageDigest, IoEvent, IoStats, MemDevice,
    StatsDevice,
};
use contools::pool::{effective_threads, parallel_map};
use e2fstools::{E2fsck, FsckMode};
use ext4sim::{Ext4Fs, InodeNo, MountOptions};

use crate::report::{CrashKind, CrashOutcome, CrashReport, ExploreStats, Verdict};
use crate::workloads::Workload;

/// Which crash models to enumerate, how densely, and how the engine
/// materialises and classifies the images.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Add a torn variant of each explored prefix's final write.
    pub torn_writes: bool,
    /// Add out-of-order volatile-cache variants.
    pub volatile_cache: bool,
    /// Cap on the number of prefix points (evenly sampled, always
    /// including the empty and the complete prefix). `None` explores
    /// every prefix; caps below 2 are clamped to 2, since the two
    /// endpoints are always kept.
    pub max_prefix_points: Option<usize>,
    /// Classification worker threads: `1` runs inline and sequential,
    /// `0` uses one worker per available core.
    pub threads: usize,
    /// Memoise classification verdicts by image content digest, so
    /// byte-identical crash images are classified once.
    pub verdict_cache: bool,
    /// Materialise images with the rolling copy-on-write engine (O(W)
    /// block writes in total). `false` falls back to the legacy
    /// full-prefix replay (O(W²) block writes), kept as the benchmark
    /// baseline and for equivalence testing.
    pub incremental: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            torn_writes: true,
            volatile_cache: true,
            max_prefix_points: None,
            threads: 1,
            verdict_cache: true,
            incremental: true,
        }
    }
}

impl ExploreOptions {
    /// A cheaper configuration for large traces: at most `points`
    /// prefixes, with both extra crash models still on.
    pub fn sampled(points: usize) -> Self {
        ExploreOptions { max_prefix_points: Some(points), ..ExploreOptions::default() }
    }

    /// Classifies on `threads` workers (0 = one per available core).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The pre-optimisation engine: single-threaded, no verdict cache,
    /// and every image replayed in full from the pre-workload state.
    /// The benchmark measures the rolling engine against this.
    pub fn sequential_baseline() -> Self {
        ExploreOptions {
            threads: 1,
            verdict_cache: false,
            incremental: false,
            ..ExploreOptions::default()
        }
    }
}

/// Explores every enumerated crash point of `workload` and classifies
/// each post-crash image.
///
/// The report's outcome list is independent of the engine
/// configuration: parallel, cached and incremental runs produce the
/// same outcomes in the same order as the sequential replay baseline.
/// Only [`CrashReport::stats`] reflects the engine used.
///
/// # Errors
///
/// Propagates device errors from materialising crash images (out of
/// range writes in a malformed trace; not produced by the built-in
/// workloads).
pub fn explore(workload: &Workload, opts: &ExploreOptions) -> Result<CrashReport, DeviceError> {
    let threads = effective_threads(opts.threads);
    let mut stats = ExploreStats {
        flushes_observed: workload.trace.flush_count(),
        threads,
        ..ExploreStats::default()
    };
    let outcomes = if opts.incremental {
        let jobs = materialize_incremental(workload, opts, &mut stats)?;
        classify_all(jobs, workload, opts, threads, &mut stats)
    } else {
        let jobs = materialize_replay(workload, opts, &mut stats)?;
        classify_all(jobs, workload, opts, threads, &mut stats)
    };
    stats.crash_points = outcomes.len();
    Ok(CrashReport {
        workload: workload.name.clone(),
        writes: workload.trace.write_count(),
        flushes: workload.trace.flush_count(),
        outcomes,
        stats,
    })
}

/// The prefix lengths to explore: all of `0..=writes`, or an even
/// sample of at most `cap` of them that keeps both endpoints (`cap` is
/// clamped to 2, the endpoints themselves).
fn prefix_points(writes: usize, cap: Option<usize>) -> Vec<usize> {
    match cap {
        Some(max) => {
            let max = max.max(2);
            if writes + 1 > max {
                let mut ks: Vec<usize> = (0..max).map(|i| i * writes / (max - 1)).collect();
                ks.dedup();
                ks
            } else {
                (0..=writes).collect()
            }
        }
        None => (0..=writes).collect(),
    }
}

/// `durable[k]` = writes guaranteed durable when power fails just after
/// write `k` (the write count at the last preceding flush barrier).
fn durable_counts(workload: &Workload) -> Vec<usize> {
    let mut out = vec![0usize; workload.trace.write_count() + 1];
    let mut seen = 0usize;
    let mut durable = 0usize;
    for event in workload.trace.events() {
        match event {
            IoEvent::Flush => durable = seen,
            IoEvent::Write { .. } => {
                seen += 1;
                out[seen] = durable;
            }
        }
    }
    out
}

/// The `n`-th write of the trace (1-based): `(block, data, pre)`.
fn nth_write(workload: &Workload, n: usize) -> (u64, &[u8], &[u8]) {
    let mut seen = 0usize;
    for event in workload.trace.events() {
        if let IoEvent::Write { block, data, pre } = event {
            seen += 1;
            if seen == n {
                return (*block, data, pre);
            }
        }
    }
    panic!("trace has no write #{n}");
}

/// The first-half-persisted image of write `n`: the recorded pre-image
/// with the new data's first `persisted` bytes laid over it.
fn torn_bytes(data: &[u8], pre: &[u8], persisted: usize) -> Vec<u8> {
    let mut torn = pre.to_vec();
    torn[..persisted].copy_from_slice(&data[..persisted]);
    torn
}

// ---------------------------------------------------------------------
// materialisation
// ---------------------------------------------------------------------

/// Folds one materialisation device's I/O counters into the run stats.
fn absorb_io(stats: &mut ExploreStats, io: IoStats) {
    stats.blocks_replayed += io.writes;
    stats.blocks_read += io.reads;
    stats.bulk_reads += io.bulk_reads;
    stats.bulk_writes += io.bulk_writes;
    stats.vec_allocs += io.vec_allocs;
}

/// Incremental engine: one rolling CoW device advances write-by-write;
/// each crash point freezes a snapshot (plus at most one extra block
/// write for torn/volatile variants). Total cost is O(W) block writes
/// for the whole enumeration.
fn materialize_incremental(
    workload: &Workload,
    opts: &ExploreOptions,
    stats: &mut ExploreStats,
) -> Result<Vec<(CrashKind, CowDevice)>, DeviceError> {
    let writes = workload.trace.write_count();
    let points = prefix_points(writes, opts.max_prefix_points);
    let mut next_point = points.iter().copied().peekable();
    let mut jobs: Vec<(CrashKind, CowDevice)> = Vec::new();

    let mut rolling = StatsDevice::new(CowDevice::from_device(&workload.pre)?);
    let pre_snap = rolling.inner().snapshot();
    // the state at the last flush barrier: the base every volatile-cache
    // variant is built on
    let mut durable_snap: Option<CowDevice> = None;
    let mut durable = 0usize;
    let mut done = 0usize;

    if next_point.peek() == Some(&0) {
        next_point.next();
        jobs.push((CrashKind::Prefix { writes: 0 }, rolling.inner().snapshot()));
    }
    for event in workload.trace.events() {
        match event {
            IoEvent::Flush => {
                durable = done;
                durable_snap = Some(rolling.inner().snapshot());
            }
            IoEvent::Write { block, data, pre } => {
                let k = done + 1;
                let explored = next_point.peek() == Some(&k);
                // the torn variant needs the k-1 state: snapshot before
                // the rolling device absorbs write k
                let mut torn_job = None;
                if explored && opts.torn_writes {
                    let persisted = data.len() / 2;
                    let mut dev = StatsDevice::new(rolling.inner().snapshot());
                    dev.write_block(*block, &torn_bytes(data, pre, persisted))?;
                    absorb_io(stats, dev.stats());
                    torn_job =
                        Some((CrashKind::TornWrite { write: k, persisted }, dev.into_inner()));
                }
                rolling.write_block(*block, data)?;
                done = k;
                if explored {
                    next_point.next();
                    jobs.push((CrashKind::Prefix { writes: k }, rolling.inner().snapshot()));
                    if let Some(job) = torn_job {
                        jobs.push(job);
                    }
                    // only interesting when the straggler actually jumps
                    // a queue: with durable == k-1 the image equals the
                    // plain prefix
                    if opts.volatile_cache && durable + 1 < k {
                        let base = durable_snap.as_ref().unwrap_or(&pre_snap);
                        let mut dev = StatsDevice::new(base.snapshot());
                        dev.write_block(*block, data)?;
                        absorb_io(stats, dev.stats());
                        jobs.push((
                            CrashKind::VolatileCache { durable, straggler: k },
                            dev.into_inner(),
                        ));
                    }
                }
            }
        }
    }
    absorb_io(stats, rolling.stats());
    Ok(jobs)
}

/// Legacy engine: every image is replayed in full from the pre-workload
/// state — O(k) block writes per crash point, O(W²) in total. Kept as
/// the benchmark baseline and the equivalence-test reference.
fn materialize_replay(
    workload: &Workload,
    opts: &ExploreOptions,
    stats: &mut ExploreStats,
) -> Result<Vec<(CrashKind, MemDevice)>, DeviceError> {
    let writes = workload.trace.write_count();
    let durable = durable_counts(workload);
    let mut jobs: Vec<(CrashKind, MemDevice)> = Vec::new();
    let replay = |prefix: usize,
                  straggler: Option<(u64, Vec<u8>)>,
                  stats: &mut ExploreStats|
     -> Result<MemDevice, DeviceError> {
        let mut dev = StatsDevice::new(workload.pre.clone());
        workload.trace.apply_prefix(&mut dev, prefix)?;
        if let Some((block, data)) = straggler {
            dev.write_block(block, &data)?;
        }
        absorb_io(stats, dev.stats());
        Ok(dev.into_inner())
    };
    for k in prefix_points(writes, opts.max_prefix_points) {
        jobs.push((CrashKind::Prefix { writes: k }, replay(k, None, stats)?));
        if k == 0 {
            continue;
        }
        if opts.torn_writes {
            let (block, data, pre) = nth_write(workload, k);
            let persisted = data.len() / 2;
            jobs.push((
                CrashKind::TornWrite { write: k, persisted },
                replay(k - 1, Some((block, torn_bytes(data, pre, persisted))), stats)?,
            ));
        }
        if opts.volatile_cache && durable[k] + 1 < k {
            let (block, data, _) = nth_write(workload, k);
            jobs.push((
                CrashKind::VolatileCache { durable: durable[k], straggler: k },
                replay(durable[k], Some((block, data.to_vec())), stats)?,
            ));
        }
    }
    Ok(jobs)
}

// ---------------------------------------------------------------------
// classification
// ---------------------------------------------------------------------

/// A crash image with a content identity — what the verdict cache and
/// the classification pool operate on.
trait CrashImage: BlockDevice + Clone + Send {
    fn content_digest(&self) -> ImageDigest;
    /// Called once the image's identity has been taken and only repair
    /// writes remain; lets the device drop bookkeeping it no longer
    /// needs (digest upkeep on [`CowDevice`]).
    fn freeze_identity(&mut self) {}
}

impl CrashImage for CowDevice {
    fn content_digest(&self) -> ImageDigest {
        self.digest().expect("materialized crash images track their digest")
    }

    fn freeze_identity(&mut self) {
        self.stop_digest_tracking();
    }
}

impl CrashImage for MemDevice {
    fn content_digest(&self) -> ImageDigest {
        digest_device(self).expect("in-range scan of an in-memory device")
    }
}

/// The kind-independent part of a classification: everything the
/// recovery stack decides from the image bytes and the applicable
/// durability expectations alone.
#[derive(Clone)]
struct OutcomeCore {
    verdict: Verdict,
    fsck_exit: Option<i32>,
    fixes: usize,
    used_backup: bool,
    detail: String,
}

impl OutcomeCore {
    fn into_outcome(self, kind: CrashKind) -> CrashOutcome {
        CrashOutcome {
            kind,
            verdict: self.verdict,
            fsck_exit: self.fsck_exit,
            fixes: self.fixes,
            used_backup_superblock: self.used_backup,
            detail: self.detail,
        }
    }
}

/// Indices of the durability expectations covered by a crash point
/// guaranteeing `guaranteed` writes. Classification depends on the
/// crash kind *only* through this set, so it is the second half of the
/// verdict-cache key: byte-identical images under the same applicable
/// set always share a verdict.
fn applicable_expectations(workload: &Workload, guaranteed: usize) -> Vec<u16> {
    workload
        .expectations
        .iter()
        .enumerate()
        .filter(|(_, e)| e.durable_after <= guaranteed)
        .map(|(i, _)| i as u16)
        .collect()
}

/// Classifies all materialised images: deduplicates byte-identical ones
/// via the digest cache, fans the unique classifications out across the
/// worker pool, and re-assembles the outcomes in enumeration order.
fn classify_all<D: CrashImage>(
    jobs: Vec<(CrashKind, D)>,
    workload: &Workload,
    opts: &ExploreOptions,
    threads: usize,
    stats: &mut ExploreStats,
) -> Vec<CrashOutcome> {
    // map every crash point to a unique image slot
    let mut kinds: Vec<CrashKind> = Vec::with_capacity(jobs.len());
    let mut slot_of: Vec<usize> = Vec::with_capacity(jobs.len());
    let mut unique: Vec<(D, usize)> = Vec::new();
    let mut seen: HashMap<(ImageDigest, Vec<u16>), usize> = HashMap::new();
    for (kind, mut image) in jobs {
        let guaranteed = kind.guaranteed_writes();
        kinds.push(kind);
        if opts.verdict_cache {
            let key = (image.content_digest(), applicable_expectations(workload, guaranteed));
            if let Some(&slot) = seen.get(&key) {
                stats.cache_hits += 1;
                slot_of.push(slot);
                continue;
            }
            seen.insert(key, unique.len());
        }
        image.freeze_identity();
        slot_of.push(unique.len());
        unique.push((image, guaranteed));
    }
    stats.images_classified = unique.len();

    let cores: Vec<OutcomeCore> = parallel_map(unique, threads, |_, (image, guaranteed)| {
        classify_image(image, workload, guaranteed)
    });
    kinds
        .into_iter()
        .zip(slot_of)
        .map(|(kind, slot)| cores[slot].clone().into_outcome(kind))
        .collect()
}

/// Result of the read-only remount plus durable-data audit.
enum DataCheck {
    Ok,
    Missing(String),
    Unmountable(String),
}

fn check_mount_and_data<D: BlockDevice>(
    dev: D,
    workload: &Workload,
    guaranteed: usize,
) -> DataCheck {
    let fs = match Ext4Fs::mount(dev, &MountOptions::read_only()) {
        Ok(fs) => fs,
        Err(e) => return DataCheck::Unmountable(e.to_string()),
    };
    let root = fs.root_inode();
    for exp in &workload.expectations {
        if exp.durable_after > guaranteed {
            continue; // not yet covered by a flush at this crash point
        }
        match fs.lookup(root, &exp.file) {
            Ok(Some(entry)) => match fs.read_file_to_vec(InodeNo(entry.inode)) {
                Ok(data) if data == exp.content => {}
                Ok(_) => {
                    return DataCheck::Missing(format!("durable file '{}' content differs", exp.file))
                }
                Err(e) => {
                    return DataCheck::Missing(format!("durable file '{}' unreadable: {e}", exp.file))
                }
            },
            Ok(None) => return DataCheck::Missing(format!("durable file '{}' missing", exp.file)),
            Err(e) => {
                return DataCheck::Missing(format!("lookup of durable file '{}' failed: {e}", exp.file))
            }
        }
    }
    DataCheck::Ok
}

fn core(
    verdict: Verdict,
    fsck_exit: Option<i32>,
    fixes: usize,
    used_backup: bool,
    detail: String,
) -> OutcomeCore {
    OutcomeCore { verdict, fsck_exit, fixes, used_backup, detail }
}

/// Classifies one materialised crash image. Takes the image by value:
/// the `-n` probe lends it out and gets it back untouched, and each
/// repair attempt makes at most one copy (a cheap CoW snapshot on the
/// incremental engine).
fn classify_image<D: BlockDevice + Clone>(
    img: D,
    workload: &Workload,
    guaranteed: usize,
) -> OutcomeCore {
    // an untouched copy left over from the probe, consumed by the first
    // repair attempt so the probe and that attempt share one copy
    let mut spare: Option<D> = None;

    // 1. already consistent? `e2fsck -n -f` must find nothing AND the
    // image must mount with its durable data intact
    match E2fsck::with_mode(FsckMode::Check).forced().run(img.clone()) {
        Ok((dev, res)) if res.exit_code == 0 => {
            match check_mount_and_data(dev, workload, guaranteed) {
                DataCheck::Ok => {
                    return core(
                        Verdict::Consistent,
                        Some(0),
                        0,
                        false,
                        "clean without repair".to_string(),
                    )
                }
                DataCheck::Missing(what) => {
                    return core(
                        Verdict::DataLoss,
                        Some(0),
                        0,
                        false,
                        format!("image checks clean but {what}"),
                    )
                }
                // clean yet unmountable: fall through to the repair path
                DataCheck::Unmountable(_) => {}
            }
        }
        // `-n` leaves the image untouched, so the returned device is
        // still pristine — reuse it instead of cloning again
        Ok((dev, _)) => spare = Some(dev),
        Err(_) => {}
    }

    // 2. repair: primary superblock first, then each backup candidate
    let mut attempts: Vec<Option<u64>> = vec![None];
    attempts.extend(workload.backup_superblocks.iter().map(|&b| Some(b)));
    let mut last_failure = "image not recognisable as a file system".to_string();
    for attempt in attempts {
        let mut fsck = E2fsck::with_mode(FsckMode::Fix).forced();
        if let Some(block) = attempt {
            fsck = fsck.with_backup_superblock(block, workload.block_size);
        }
        let target = spare.take().unwrap_or_else(|| img.clone());
        let (dev, res) = match fsck.run(target) {
            Ok(pair) => pair,
            Err(e) => {
                last_failure = e.to_string();
                continue;
            }
        };
        let mut fixes = res.fixes.len();
        let mut exit = res.exit_code;
        let mut dev = dev;
        if exit == 4 {
            // structural repairs can expose counter drift; give the
            // tool the customary second pass
            match E2fsck::with_mode(FsckMode::Fix).forced().run(dev) {
                Ok((d, second)) => {
                    fixes += second.fixes.len();
                    exit = second.exit_code;
                    dev = d;
                }
                Err(e) => {
                    last_failure = e.to_string();
                    continue;
                }
            }
        }
        if exit == 4 {
            last_failure = "errors left uncorrected after two fsck passes".to_string();
            continue;
        }
        // verify the repair took
        let (dev, verify) = match E2fsck::with_mode(FsckMode::Check).forced().run(dev) {
            Ok(pair) => pair,
            Err(e) => {
                last_failure = e.to_string();
                continue;
            }
        };
        if verify.exit_code != 0 {
            last_failure = "repaired image still fails a forced check".to_string();
            continue;
        }
        let used_backup = attempt.is_some();
        let via = match attempt {
            Some(block) => format!(" via backup superblock at block {block}"),
            None => String::new(),
        };
        match check_mount_and_data(dev, workload, guaranteed) {
            DataCheck::Ok => {
                return core(
                    Verdict::Repairable,
                    Some(exit),
                    fixes,
                    used_backup,
                    format!("repaired with {fixes} fix(es){via}"),
                )
            }
            DataCheck::Missing(what) => {
                return core(
                    Verdict::DataLoss,
                    Some(exit),
                    fixes,
                    used_backup,
                    format!("repaired{via}, but {what}"),
                )
            }
            DataCheck::Unmountable(e) => {
                last_failure = format!("repaired image does not mount: {e}");
                continue;
            }
        }
    }

    core(Verdict::Unrecoverable, None, 0, false, last_failure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{figure1_resize_workload, journaled_write_workload, Workload};
    use blockdev::RecordingDevice;
    use contest_helpers::*;

    // small helpers shared by the tests below
    mod contest_helpers {
        use super::*;
        use e2fstools::Mke2fs;

        /// A clean sparse_super image (backups in group 1 and 3).
        pub fn clean_image() -> MemDevice {
            let m = Mke2fs::from_args(&["-b", "1024", "/dev/t", "12288"]).unwrap();
            m.run(MemDevice::new(1024, 16384)).unwrap().0
        }
    }

    #[test]
    fn prefix_points_sampling_keeps_endpoints() {
        assert_eq!(prefix_points(4, None), vec![0, 1, 2, 3, 4]);
        assert_eq!(prefix_points(4, Some(10)), vec![0, 1, 2, 3, 4]);
        let sampled = prefix_points(100, Some(5));
        assert_eq!(sampled.first(), Some(&0));
        assert_eq!(sampled.last(), Some(&100));
        assert_eq!(sampled.len(), 5);
    }

    #[test]
    fn prefix_points_tiny_caps_clamp_to_endpoints() {
        // caps below 2 cannot honour "at most `points`" and keep both
        // endpoints; they clamp to exactly the endpoints
        assert_eq!(prefix_points(100, Some(0)), vec![0, 100]);
        assert_eq!(prefix_points(100, Some(1)), vec![0, 100]);
        assert_eq!(prefix_points(100, Some(2)), vec![0, 100]);
        // degenerate traces still honour the bound
        assert_eq!(prefix_points(0, Some(0)), vec![0]);
        assert_eq!(prefix_points(1, Some(1)), vec![0, 1]);
    }

    #[test]
    fn durable_counts_track_flush_barriers() {
        let mut rec = RecordingDevice::new(MemDevice::new(512, 8));
        rec.write_block(0, &[1u8; 512]).unwrap();
        rec.write_block(1, &[2u8; 512]).unwrap();
        rec.flush().unwrap();
        rec.write_block(2, &[3u8; 512]).unwrap();
        let (_, trace) = rec.into_parts();
        let w = Workload {
            name: "t".to_string(),
            pre: MemDevice::new(512, 8),
            trace,
            block_size: 512,
            expectations: Vec::new(),
            backup_superblocks: Vec::new(),
        };
        assert_eq!(durable_counts(&w), vec![0, 0, 0, 2]);
    }

    #[test]
    fn garbage_trace_on_blank_device_is_unrecoverable() {
        let mut rec = RecordingDevice::new(MemDevice::new(1024, 64));
        rec.write_block(0, &[0xFFu8; 1024]).unwrap();
        let (_, trace) = rec.into_parts();
        let w = Workload {
            name: "garbage".to_string(),
            pre: MemDevice::new(1024, 64),
            trace,
            block_size: 1024,
            expectations: Vec::new(),
            backup_superblocks: Vec::new(),
        };
        let report = explore(&w, &ExploreOptions::default()).unwrap();
        assert!(report.outcomes.iter().all(|o| o.verdict == Verdict::Unrecoverable));
    }

    #[test]
    fn overwritten_primary_superblock_recovers_from_backup() {
        // the traced "workload" wipes block 1 (the primary superblock)
        let pre = clean_image();
        let mut rec = RecordingDevice::new(pre.clone());
        rec.write_block(1, &vec![0u8; 1024]).unwrap();
        let (_, trace) = rec.into_parts();
        let w = Workload {
            name: "sb-wipe".to_string(),
            pre,
            trace,
            block_size: 1024,
            expectations: Vec::new(),
            backup_superblocks: vec![8193],
        };
        let report = explore(&w, &ExploreOptions::default()).unwrap();
        // prefix 1 = superblock gone; must come back via block 8193
        let wiped = report
            .outcomes
            .iter()
            .find(|o| matches!(o.kind, CrashKind::Prefix { writes: 1 }))
            .expect("prefix 1 explored");
        assert_eq!(wiped.verdict, Verdict::Repairable, "{}", wiped.detail);
        assert!(wiped.used_backup_superblock, "{}", wiped.detail);
    }

    #[test]
    fn journaled_prefixes_never_lose_the_file_system() {
        let files = vec![("steady".to_string(), vec![7u8; 600])];
        let w = journaled_write_workload(&files).unwrap();
        let report = explore(&w, &ExploreOptions::default()).unwrap();
        assert!(report.writes > 0);
        for o in &report.outcomes {
            assert!(
                o.verdict <= Verdict::Repairable,
                "{:?} -> {:?}: {}",
                o.kind,
                o.verdict,
                o.detail
            );
        }
    }

    #[test]
    fn defrag_crashes_never_lose_durable_data() {
        // regression: the defragmenter must (a) publish the new block
        // mapping only after the copied data, with a flush barrier in
        // between, and (b) free the old blocks only after the publish —
        // otherwise prefix, torn and volatile-cache crash points all
        // surface the pre-existing files with wrong contents
        let w = crate::workloads::defrag_workload().unwrap();
        let report = explore(&w, &ExploreOptions::default()).unwrap();
        let counts = report.counts();
        assert_eq!(counts.data_loss, 0, "{:?}", counts);
        assert_eq!(counts.unrecoverable, 0, "{:?}", counts);
    }

    #[test]
    fn figure1_resize_has_corrupting_crash_points() {
        let w = figure1_resize_workload().unwrap();
        let report = explore(&w, &ExploreOptions::sampled(9)).unwrap();
        assert!(report.corrupting() >= 1, "counts: {:?}", report.counts());
        // the *completed* resize is itself corrupt (the Figure 1 bug):
        let full = report
            .outcomes
            .iter()
            .find(|o| matches!(o.kind, CrashKind::Prefix { writes } if writes == report.writes))
            .expect("complete prefix explored");
        assert_ne!(full.verdict, Verdict::Consistent, "{}", full.detail);
    }

    #[test]
    fn engines_threads_and_cache_agree_exactly() {
        let files = vec![
            ("alpha".to_string(), vec![1u8; 700]),
            ("beta".to_string(), vec![2u8; 300]),
        ];
        let w = journaled_write_workload(&files).unwrap();
        let baseline = explore(&w, &ExploreOptions::sequential_baseline()).unwrap();
        let rolling = explore(
            &w,
            &ExploreOptions { threads: 1, verdict_cache: false, ..ExploreOptions::default() },
        )
        .unwrap();
        let cached_parallel =
            explore(&w, &ExploreOptions::default().with_threads(4)).unwrap();
        // identical outcome lists, in the same enumeration order
        let debug = |r: &CrashReport| {
            r.outcomes.iter().map(|o| format!("{o:?}")).collect::<Vec<_>>()
        };
        assert_eq!(debug(&baseline), debug(&rolling));
        assert_eq!(debug(&baseline), debug(&cached_parallel));
        // the rolling engine replays O(W) blocks where the baseline
        // replays O(W²)
        assert!(
            rolling.stats.blocks_replayed < baseline.stats.blocks_replayed,
            "rolling {} vs baseline {}",
            rolling.stats.blocks_replayed,
            baseline.stats.blocks_replayed
        );
        // journalled traces collapse many torn variants onto their
        // prefix images, so the cache must fire without changing a
        // single verdict
        assert!(cached_parallel.stats.cache_hits > 0, "{:?}", cached_parallel.stats);
        assert_eq!(
            cached_parallel.stats.images_classified + cached_parallel.stats.cache_hits,
            cached_parallel.outcomes.len()
        );
        assert_eq!(baseline.stats.cache_hits, 0);
        assert_eq!(cached_parallel.stats.threads, 4);
    }

}
