//! Crash-point enumeration, image materialisation and classification.
//!
//! For a recorded trace of `W` writes the explorer considers:
//!
//! * every **write prefix** — power fails after exactly `k` writes,
//!   `k = 0..=W`;
//! * a **torn** variant of each prefix's final write — the interrupted
//!   write persisted only its first half;
//! * **volatile-cache** variants — writes issued after the last flush
//!   barrier are dropped, except the most recent one, which the cache
//!   evicted out of order. This is the scenario the journal's flush
//!   barriers exist to prevent: a commit record persisting before the
//!   data it seals.
//!
//! Each image is judged with the real (simulated) recovery stack:
//! `e2fsck -n -f`, then `e2fsck -y -f` with a backup-superblock
//! fallback, then a read-only mount and a durable-data audit.

use blockdev::{BlockDevice, DeviceError, IoEvent, MemDevice};
use e2fstools::{E2fsck, FsckMode};
use ext4sim::{Ext4Fs, InodeNo, MountOptions};

use crate::report::{CrashKind, CrashOutcome, CrashReport, Verdict};
use crate::workloads::Workload;

/// Which crash models to enumerate, and how densely.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Add a torn variant of each explored prefix's final write.
    pub torn_writes: bool,
    /// Add out-of-order volatile-cache variants.
    pub volatile_cache: bool,
    /// Cap on the number of prefix points (evenly sampled, always
    /// including the empty and the complete prefix). `None` — and any
    /// cap below 2 — explores every prefix.
    pub max_prefix_points: Option<usize>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions { torn_writes: true, volatile_cache: true, max_prefix_points: None }
    }
}

impl ExploreOptions {
    /// A cheaper configuration for large traces: at most `points`
    /// prefixes, with both extra crash models still on.
    pub fn sampled(points: usize) -> Self {
        ExploreOptions { max_prefix_points: Some(points), ..ExploreOptions::default() }
    }
}

/// Explores every enumerated crash point of `workload` and classifies
/// each post-crash image.
///
/// # Errors
///
/// Propagates device errors from materialising crash images (out of
/// range writes in a malformed trace; not produced by the built-in
/// workloads).
pub fn explore(workload: &Workload, opts: &ExploreOptions) -> Result<CrashReport, DeviceError> {
    let writes = workload.trace.write_count();
    let durable = durable_counts(workload);
    let mut outcomes = Vec::new();
    for k in prefix_points(writes, opts.max_prefix_points) {
        outcomes.push(classify(&prefix_image(workload, k)?, workload, CrashKind::Prefix { writes: k }));
        if k == 0 {
            continue;
        }
        if opts.torn_writes {
            let (_, data, _) = nth_write(workload, k);
            let persisted = data.len() / 2;
            outcomes.push(classify(
                &torn_image(workload, k, persisted)?,
                workload,
                CrashKind::TornWrite { write: k, persisted },
            ));
        }
        // only interesting when the straggler actually jumps a queue:
        // with durable == k-1 the image equals the plain prefix
        if opts.volatile_cache && durable[k] + 1 < k {
            outcomes.push(classify(
                &volatile_image(workload, durable[k], k)?,
                workload,
                CrashKind::VolatileCache { durable: durable[k], straggler: k },
            ));
        }
    }
    Ok(CrashReport {
        workload: workload.name.clone(),
        writes,
        flushes: workload.trace.flush_count(),
        outcomes,
    })
}

/// The prefix lengths to explore: all of `0..=writes`, or an even
/// sample of `cap` of them that keeps both endpoints.
fn prefix_points(writes: usize, cap: Option<usize>) -> Vec<usize> {
    match cap {
        Some(max) if max >= 2 && writes + 1 > max => {
            let mut ks: Vec<usize> = (0..max).map(|i| i * writes / (max - 1)).collect();
            ks.dedup();
            ks
        }
        _ => (0..=writes).collect(),
    }
}

/// `durable[k]` = writes guaranteed durable when power fails just after
/// write `k` (the write count at the last preceding flush barrier).
fn durable_counts(workload: &Workload) -> Vec<usize> {
    let mut out = vec![0usize; workload.trace.write_count() + 1];
    let mut seen = 0usize;
    let mut durable = 0usize;
    for event in workload.trace.events() {
        match event {
            IoEvent::Flush => durable = seen,
            IoEvent::Write { .. } => {
                seen += 1;
                out[seen] = durable;
            }
        }
    }
    out
}

/// The `n`-th write of the trace (1-based): `(block, data, pre)`.
fn nth_write(workload: &Workload, n: usize) -> (u64, &[u8], &[u8]) {
    let mut seen = 0usize;
    for event in workload.trace.events() {
        if let IoEvent::Write { block, data, pre } = event {
            seen += 1;
            if seen == n {
                return (*block, data, pre);
            }
        }
    }
    panic!("trace has no write #{n}");
}

fn prefix_image(workload: &Workload, k: usize) -> Result<MemDevice, DeviceError> {
    let mut dev = workload.pre.clone();
    workload.trace.apply_prefix(&mut dev, k)?;
    Ok(dev)
}

fn torn_image(workload: &Workload, k: usize, persisted: usize) -> Result<MemDevice, DeviceError> {
    let mut dev = prefix_image(workload, k - 1)?;
    let (block, data, pre) = nth_write(workload, k);
    let mut torn = pre.to_vec();
    torn[..persisted].copy_from_slice(&data[..persisted]);
    dev.write_block(block, &torn)?;
    Ok(dev)
}

fn volatile_image(
    workload: &Workload,
    durable: usize,
    straggler: usize,
) -> Result<MemDevice, DeviceError> {
    let mut dev = prefix_image(workload, durable)?;
    let (block, data, _) = nth_write(workload, straggler);
    dev.write_block(block, data)?;
    Ok(dev)
}

/// Result of the read-only remount plus durable-data audit.
enum DataCheck {
    Ok,
    Missing(String),
    Unmountable(String),
}

fn check_mount_and_data(dev: MemDevice, workload: &Workload, guaranteed: usize) -> DataCheck {
    let fs = match Ext4Fs::mount(dev, &MountOptions::read_only()) {
        Ok(fs) => fs,
        Err(e) => return DataCheck::Unmountable(e.to_string()),
    };
    let root = fs.root_inode();
    for exp in &workload.expectations {
        if exp.durable_after > guaranteed {
            continue; // not yet covered by a flush at this crash point
        }
        match fs.lookup(root, &exp.file) {
            Ok(Some(entry)) => match fs.read_file_to_vec(InodeNo(entry.inode)) {
                Ok(data) if data == exp.content => {}
                Ok(_) => {
                    return DataCheck::Missing(format!("durable file '{}' content differs", exp.file))
                }
                Err(e) => {
                    return DataCheck::Missing(format!("durable file '{}' unreadable: {e}", exp.file))
                }
            },
            Ok(None) => return DataCheck::Missing(format!("durable file '{}' missing", exp.file)),
            Err(e) => {
                return DataCheck::Missing(format!("lookup of durable file '{}' failed: {e}", exp.file))
            }
        }
    }
    DataCheck::Ok
}

fn outcome(
    kind: CrashKind,
    verdict: Verdict,
    fsck_exit: Option<i32>,
    fixes: usize,
    used_backup: bool,
    detail: String,
) -> CrashOutcome {
    CrashOutcome { kind, verdict, fsck_exit, fixes, used_backup_superblock: used_backup, detail }
}

/// Classifies one materialised crash image.
fn classify(img: &MemDevice, workload: &Workload, kind: CrashKind) -> CrashOutcome {
    let guaranteed = kind.guaranteed_writes();

    // 1. already consistent? `e2fsck -n -f` must find nothing AND the
    // image must mount with its durable data intact
    if let Ok((dev, res)) = E2fsck::with_mode(FsckMode::Check).forced().run(img.clone()) {
        if res.exit_code == 0 {
            match check_mount_and_data(dev, workload, guaranteed) {
                DataCheck::Ok => {
                    return outcome(
                        kind,
                        Verdict::Consistent,
                        Some(0),
                        0,
                        false,
                        "clean without repair".to_string(),
                    )
                }
                DataCheck::Missing(what) => {
                    return outcome(
                        kind,
                        Verdict::DataLoss,
                        Some(0),
                        0,
                        false,
                        format!("image checks clean but {what}"),
                    )
                }
                // clean yet unmountable: fall through to the repair path
                DataCheck::Unmountable(_) => {}
            }
        }
    }

    // 2. repair: primary superblock first, then each backup candidate
    let mut attempts: Vec<Option<u64>> = vec![None];
    attempts.extend(workload.backup_superblocks.iter().map(|&b| Some(b)));
    let mut last_failure = "image not recognisable as a file system".to_string();
    for attempt in attempts {
        let mut fsck = E2fsck::with_mode(FsckMode::Fix).forced();
        if let Some(block) = attempt {
            fsck = fsck.with_backup_superblock(block, workload.block_size);
        }
        let (dev, res) = match fsck.run(img.clone()) {
            Ok(pair) => pair,
            Err(e) => {
                last_failure = e.to_string();
                continue;
            }
        };
        let mut fixes = res.fixes.len();
        let mut exit = res.exit_code;
        let mut dev = dev;
        if exit == 4 {
            // structural repairs can expose counter drift; give the
            // tool the customary second pass
            match E2fsck::with_mode(FsckMode::Fix).forced().run(dev) {
                Ok((d, second)) => {
                    fixes += second.fixes.len();
                    exit = second.exit_code;
                    dev = d;
                }
                Err(e) => {
                    last_failure = e.to_string();
                    continue;
                }
            }
        }
        if exit == 4 {
            last_failure = "errors left uncorrected after two fsck passes".to_string();
            continue;
        }
        // verify the repair took
        let (dev, verify) = match E2fsck::with_mode(FsckMode::Check).forced().run(dev) {
            Ok(pair) => pair,
            Err(e) => {
                last_failure = e.to_string();
                continue;
            }
        };
        if verify.exit_code != 0 {
            last_failure = "repaired image still fails a forced check".to_string();
            continue;
        }
        let used_backup = attempt.is_some();
        let via = match attempt {
            Some(block) => format!(" via backup superblock at block {block}"),
            None => String::new(),
        };
        match check_mount_and_data(dev, workload, guaranteed) {
            DataCheck::Ok => {
                return outcome(
                    kind,
                    Verdict::Repairable,
                    Some(exit),
                    fixes,
                    used_backup,
                    format!("repaired with {fixes} fix(es){via}"),
                )
            }
            DataCheck::Missing(what) => {
                return outcome(
                    kind,
                    Verdict::DataLoss,
                    Some(exit),
                    fixes,
                    used_backup,
                    format!("repaired{via}, but {what}"),
                )
            }
            DataCheck::Unmountable(e) => {
                last_failure = format!("repaired image does not mount: {e}");
                continue;
            }
        }
    }

    outcome(kind, Verdict::Unrecoverable, None, 0, false, last_failure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{figure1_resize_workload, journaled_write_workload, Workload};
    use blockdev::RecordingDevice;
    use contest_helpers::*;

    // small helpers shared by the tests below
    mod contest_helpers {
        use super::*;
        use e2fstools::Mke2fs;

        /// A clean sparse_super image (backups in group 1 and 3).
        pub fn clean_image() -> MemDevice {
            let m = Mke2fs::from_args(&["-b", "1024", "/dev/t", "12288"]).unwrap();
            m.run(MemDevice::new(1024, 16384)).unwrap().0
        }
    }

    #[test]
    fn prefix_points_sampling_keeps_endpoints() {
        assert_eq!(prefix_points(4, None), vec![0, 1, 2, 3, 4]);
        assert_eq!(prefix_points(4, Some(10)), vec![0, 1, 2, 3, 4]);
        let sampled = prefix_points(100, Some(5));
        assert_eq!(sampled.first(), Some(&0));
        assert_eq!(sampled.last(), Some(&100));
        assert_eq!(sampled.len(), 5);
        assert_eq!(prefix_points(100, Some(1)).len(), 101); // cap < 2: exhaustive
    }

    #[test]
    fn durable_counts_track_flush_barriers() {
        let mut rec = RecordingDevice::new(MemDevice::new(512, 8));
        rec.write_block(0, &[1u8; 512]).unwrap();
        rec.write_block(1, &[2u8; 512]).unwrap();
        rec.flush().unwrap();
        rec.write_block(2, &[3u8; 512]).unwrap();
        let (_, trace) = rec.into_parts();
        let w = Workload {
            name: "t".to_string(),
            pre: MemDevice::new(512, 8),
            trace,
            block_size: 512,
            expectations: Vec::new(),
            backup_superblocks: Vec::new(),
        };
        assert_eq!(durable_counts(&w), vec![0, 0, 0, 2]);
    }

    #[test]
    fn garbage_trace_on_blank_device_is_unrecoverable() {
        let mut rec = RecordingDevice::new(MemDevice::new(1024, 64));
        rec.write_block(0, &[0xFFu8; 1024]).unwrap();
        let (_, trace) = rec.into_parts();
        let w = Workload {
            name: "garbage".to_string(),
            pre: MemDevice::new(1024, 64),
            trace,
            block_size: 1024,
            expectations: Vec::new(),
            backup_superblocks: Vec::new(),
        };
        let report = explore(&w, &ExploreOptions::default()).unwrap();
        assert!(report.outcomes.iter().all(|o| o.verdict == Verdict::Unrecoverable));
    }

    #[test]
    fn overwritten_primary_superblock_recovers_from_backup() {
        // the traced "workload" wipes block 1 (the primary superblock)
        let pre = clean_image();
        let mut rec = RecordingDevice::new(pre.clone());
        rec.write_block(1, &vec![0u8; 1024]).unwrap();
        let (_, trace) = rec.into_parts();
        let w = Workload {
            name: "sb-wipe".to_string(),
            pre,
            trace,
            block_size: 1024,
            expectations: Vec::new(),
            backup_superblocks: vec![8193],
        };
        let report = explore(&w, &ExploreOptions::default()).unwrap();
        // prefix 1 = superblock gone; must come back via block 8193
        let wiped = report
            .outcomes
            .iter()
            .find(|o| matches!(o.kind, CrashKind::Prefix { writes: 1 }))
            .expect("prefix 1 explored");
        assert_eq!(wiped.verdict, Verdict::Repairable, "{}", wiped.detail);
        assert!(wiped.used_backup_superblock, "{}", wiped.detail);
    }

    #[test]
    fn journaled_prefixes_never_lose_the_file_system() {
        let files = vec![("steady".to_string(), vec![7u8; 600])];
        let w = journaled_write_workload(&files).unwrap();
        let report = explore(&w, &ExploreOptions::default()).unwrap();
        assert!(report.writes > 0);
        for o in &report.outcomes {
            assert!(
                o.verdict <= Verdict::Repairable,
                "{:?} -> {:?}: {}",
                o.kind,
                o.verdict,
                o.detail
            );
        }
    }

    #[test]
    fn defrag_crashes_never_lose_durable_data() {
        // regression: the defragmenter must (a) publish the new block
        // mapping only after the copied data, with a flush barrier in
        // between, and (b) free the old blocks only after the publish —
        // otherwise prefix, torn and volatile-cache crash points all
        // surface the pre-existing files with wrong contents
        let w = crate::workloads::defrag_workload().unwrap();
        let report = explore(&w, &ExploreOptions::default()).unwrap();
        let counts = report.counts();
        assert_eq!(counts.data_loss, 0, "{:?}", counts);
        assert_eq!(counts.unrecoverable, 0, "{:?}", counts);
    }

    #[test]
    fn figure1_resize_has_corrupting_crash_points() {
        let w = figure1_resize_workload().unwrap();
        let report = explore(&w, &ExploreOptions::sampled(9)).unwrap();
        assert!(report.corrupting() >= 1, "counts: {:?}", report.counts());
        // the *completed* resize is itself corrupt (the Figure 1 bug):
        let full = report
            .outcomes
            .iter()
            .find(|o| matches!(o.kind, CrashKind::Prefix { writes } if writes == report.writes))
            .expect("complete prefix explored");
        assert_ne!(full.verdict, Verdict::Consistent, "{}", full.detail);
    }
}
