//! Crash-point enumeration, image materialisation and classification.
//!
//! For a recorded trace of `W` writes the explorer considers:
//!
//! * every **write prefix** — power fails after exactly `k` writes,
//!   `k = 0..=W`;
//! * a **torn** variant of each prefix's final write — the interrupted
//!   write persisted only its first half;
//! * **volatile-cache** variants — writes issued after the last flush
//!   barrier are dropped, except the most recent one, which the cache
//!   evicted out of order. This is the scenario the journal's flush
//!   barriers exist to prevent: a commit record persisting before the
//!   data it seals.
//!
//! Each image is judged with the real (simulated) recovery stack:
//! `e2fsck -n -f`, then `e2fsck -y -f` with a backup-superblock
//! fallback, then a read-only mount and a durable-data audit.
//!
//! # Engine
//!
//! Materialisation is **incremental** by default: one rolling
//! [`CowDevice`] advances write-by-write (O(W) block writes for the
//! whole trace) and every crash point freezes a copy-on-write
//! [`CowDevice::snapshot`] instead of replaying its prefix from
//! scratch (O(W²) in total). Classification of the independent images
//! fans out across a scoped worker pool ([`ExploreOptions::threads`])
//! with a deterministic input-order merge, and verdicts are memoised by
//! image content digest ([`ExploreOptions::verdict_cache`]): torn and
//! reordered variants frequently collapse to byte-identical images, so
//! the recovery stack only ever sees each distinct image once. The
//! legacy full-replay engine survives as
//! [`ExploreOptions::sequential_baseline`] — the benchmark's reference
//! point — and produces an identical report.

use std::collections::HashMap;
use std::sync::Arc;

use blockdev::{
    block_contribution, digest_device, BlockDevice, CowDevice, DeviceError, ImageDigest, IoEvent,
    IoStats, MemDevice, StatsDevice, VerdictStore,
};
use contools::pool::{effective_threads, parallel_map};
use e2fstools::{E2fsck, FsckMode};
use ext4sim::{Ext4Fs, InodeNo, MountOptions};

use crate::report::{CrashKind, CrashOutcome, CrashReport, ExploreStats, OutcomeCore, Verdict};
use crate::workloads::Workload;

/// Which crash models to enumerate, how densely, and how the engine
/// materialises and classifies the images.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Add a torn variant of each explored prefix's final write.
    pub torn_writes: bool,
    /// Add out-of-order volatile-cache variants.
    pub volatile_cache: bool,
    /// Cap on the number of prefix points (evenly sampled, always
    /// including the empty and the complete prefix). `None` explores
    /// every prefix; caps below 2 are clamped to 2, since the two
    /// endpoints are always kept.
    pub max_prefix_points: Option<usize>,
    /// Classification worker threads: `1` runs inline and sequential,
    /// `0` uses one worker per available core.
    pub threads: usize,
    /// Memoise classification verdicts by image content digest, so
    /// byte-identical crash images are classified once.
    pub verdict_cache: bool,
    /// Materialise images with the rolling copy-on-write engine (O(W)
    /// block writes in total). `false` falls back to the legacy
    /// full-prefix replay (O(W²) block writes), kept as the benchmark
    /// baseline and for equivalence testing.
    pub incremental: bool,
    /// Also enumerate *interior* volatile-cache reorderings
    /// ([`CrashKind::ReorderedWrite`]): at every explored crash point,
    /// each post-barrier write may be the one the cache evicted out of
    /// order — not just the most recent one. This multiplies the
    /// schedule count per flush epoch (≈ n²/2 schedules for n writes)
    /// and is what the partial-order reduction collapses back down.
    pub deep_reorder: bool,
    /// Plan schedules with the partial-order reduction: image digests
    /// are computed directly from the recorded trace (every write
    /// carries its pre-image, and the digest is a commutative per-block
    /// sum), schedules whose digest + durability contract match an
    /// already-planned representative are pruned before any
    /// materialisation, and only class representatives are ever built
    /// and classified.
    pub por: bool,
    /// Persistent cross-run verdict store shared with faultsim
    /// ([`VerdictStore`]); verdicts found here skip materialisation and
    /// classification entirely, and fresh verdicts are written back.
    pub store: Option<Arc<VerdictStore<OutcomeCore>>>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            torn_writes: true,
            volatile_cache: true,
            max_prefix_points: None,
            threads: 1,
            verdict_cache: true,
            incremental: true,
            deep_reorder: false,
            por: false,
            store: None,
        }
    }
}

impl ExploreOptions {
    /// A cheaper configuration for large traces: at most `points`
    /// prefixes, with both extra crash models still on.
    pub fn sampled(points: usize) -> Self {
        ExploreOptions { max_prefix_points: Some(points), ..ExploreOptions::default() }
    }

    /// Classifies on `threads` workers (0 = one per available core).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The pre-optimisation engine: single-threaded, no verdict cache,
    /// and every image replayed in full from the pre-workload state.
    /// The benchmark measures the rolling engine against this.
    pub fn sequential_baseline() -> Self {
        ExploreOptions {
            threads: 1,
            verdict_cache: false,
            incremental: false,
            ..ExploreOptions::default()
        }
    }

    /// The corpus-scale configuration: deep reordering enumerated,
    /// partial-order reduction on, one classification worker per core.
    /// Attach a persistent store with [`ExploreOptions::with_store`].
    pub fn corpus() -> Self {
        ExploreOptions { deep_reorder: true, por: true, threads: 0, ..ExploreOptions::default() }
    }

    /// Attaches a persistent cross-run verdict store.
    #[must_use]
    pub fn with_store(mut self, store: Arc<VerdictStore<OutcomeCore>>) -> Self {
        self.store = Some(store);
        self
    }
}

/// Explores every enumerated crash point of `workload` and classifies
/// each post-crash image.
///
/// The report's outcome list is independent of the engine
/// configuration: parallel, cached and incremental runs produce the
/// same outcomes in the same order as the sequential replay baseline.
/// Only [`CrashReport::stats`] reflects the engine used.
///
/// # Errors
///
/// Propagates device errors from materialising crash images (out of
/// range writes in a malformed trace; not produced by the built-in
/// workloads).
pub fn explore(workload: &Workload, opts: &ExploreOptions) -> Result<CrashReport, DeviceError> {
    let threads = effective_threads(opts.threads);
    let mut stats = ExploreStats {
        flushes_observed: workload.trace.flush_count(),
        threads,
        ..ExploreStats::default()
    };
    let outcomes = if opts.por {
        explore_por(workload, opts, threads, &mut stats)?
    } else if opts.incremental {
        let jobs = materialize_incremental(workload, opts, &mut stats)?;
        classify_all(jobs, workload, opts, threads, &mut stats)
    } else {
        let jobs = materialize_replay(workload, opts, &mut stats)?;
        classify_all(jobs, workload, opts, threads, &mut stats)
    };
    stats.crash_points = outcomes.len();
    Ok(CrashReport {
        workload: workload.name.clone(),
        writes: workload.trace.write_count(),
        flushes: workload.trace.flush_count(),
        outcomes,
        stats,
    })
}

/// The prefix lengths to explore: all of `0..=writes`, or an even
/// sample of at most `cap` of them that keeps both endpoints (`cap` is
/// clamped to 2, the endpoints themselves).
fn prefix_points(writes: usize, cap: Option<usize>) -> Vec<usize> {
    match cap {
        Some(max) => {
            let max = max.max(2);
            if writes + 1 > max {
                let mut ks: Vec<usize> = (0..max).map(|i| i * writes / (max - 1)).collect();
                ks.dedup();
                ks
            } else {
                (0..=writes).collect()
            }
        }
        None => (0..=writes).collect(),
    }
}

/// `durable[k]` = writes guaranteed durable when power fails just after
/// write `k` (the write count at the last preceding flush barrier).
fn durable_counts(workload: &Workload) -> Vec<usize> {
    let mut out = vec![0usize; workload.trace.write_count() + 1];
    let mut seen = 0usize;
    let mut durable = 0usize;
    for event in workload.trace.events() {
        match event {
            IoEvent::Flush => durable = seen,
            IoEvent::Write { .. } => {
                seen += 1;
                out[seen] = durable;
            }
        }
    }
    out
}

/// The `n`-th write of the trace (1-based): `(block, data, pre)`.
fn nth_write(workload: &Workload, n: usize) -> (u64, &[u8], &[u8]) {
    let mut seen = 0usize;
    for event in workload.trace.events() {
        if let IoEvent::Write { block, data, pre } = event {
            seen += 1;
            if seen == n {
                return (*block, data, pre);
            }
        }
    }
    panic!("trace has no write #{n}");
}

/// The first-half-persisted image of write `n`: the recorded pre-image
/// with the new data's first `persisted` bytes laid over it.
fn torn_bytes(data: &[u8], pre: &[u8], persisted: usize) -> Vec<u8> {
    let mut torn = pre.to_vec();
    torn[..persisted].copy_from_slice(&data[..persisted]);
    torn
}

// ---------------------------------------------------------------------
// materialisation
// ---------------------------------------------------------------------

/// Folds one materialisation device's I/O counters into the run stats.
fn absorb_io(stats: &mut ExploreStats, io: IoStats) {
    stats.blocks_replayed += io.writes;
    stats.blocks_read += io.reads;
    stats.bulk_reads += io.bulk_reads;
    stats.bulk_writes += io.bulk_writes;
    stats.vec_allocs += io.vec_allocs;
}

/// Incremental engine: one rolling CoW device advances write-by-write;
/// each crash point freezes a snapshot (plus at most one extra block
/// write for torn/volatile variants). Total cost is O(W) block writes
/// for the whole enumeration.
fn materialize_incremental(
    workload: &Workload,
    opts: &ExploreOptions,
    stats: &mut ExploreStats,
) -> Result<Vec<(CrashKind, CowDevice)>, DeviceError> {
    let writes = workload.trace.write_count();
    let points = prefix_points(writes, opts.max_prefix_points);
    let mut next_point = points.iter().copied().peekable();
    let mut jobs: Vec<(CrashKind, CowDevice)> = Vec::new();

    let mut rolling = StatsDevice::new(CowDevice::from_device(&workload.pre)?);
    let pre_snap = rolling.inner().snapshot();
    // the state at the last flush barrier: the base every volatile-cache
    // variant is built on
    let mut durable_snap: Option<CowDevice> = None;
    let mut durable = 0usize;
    let mut done = 0usize;
    // writes issued since the last flush barrier, for deep reordering:
    // any of them may be the out-of-order straggler
    let mut epoch_writes: Vec<(usize, u64, &[u8])> = Vec::new();

    if next_point.peek() == Some(&0) {
        next_point.next();
        jobs.push((CrashKind::Prefix { writes: 0 }, rolling.inner().snapshot()));
    }
    for event in workload.trace.events() {
        match event {
            IoEvent::Flush => {
                durable = done;
                durable_snap = Some(rolling.inner().snapshot());
                epoch_writes.clear();
            }
            IoEvent::Write { block, data, pre } => {
                let k = done + 1;
                let explored = next_point.peek() == Some(&k);
                // the torn variant needs the k-1 state: snapshot before
                // the rolling device absorbs write k
                let mut torn_job = None;
                if explored && opts.torn_writes {
                    let persisted = data.len() / 2;
                    let mut dev = StatsDevice::new(rolling.inner().snapshot());
                    dev.write_block(*block, &torn_bytes(data, pre, persisted))?;
                    absorb_io(stats, dev.stats());
                    torn_job =
                        Some((CrashKind::TornWrite { write: k, persisted }, dev.into_inner()));
                }
                rolling.write_block(*block, data)?;
                epoch_writes.push((k, *block, data.as_slice()));
                done = k;
                if explored {
                    next_point.next();
                    jobs.push((CrashKind::Prefix { writes: k }, rolling.inner().snapshot()));
                    if let Some(job) = torn_job {
                        jobs.push(job);
                    }
                    let base = durable_snap.as_ref().unwrap_or(&pre_snap);
                    // deep reordering: every *interior* post-barrier
                    // write may be the straggler the cache evicted
                    if opts.deep_reorder {
                        for &(s, s_block, s_data) in &epoch_writes {
                            if s <= durable || s >= k {
                                continue;
                            }
                            let mut dev = StatsDevice::new(base.snapshot());
                            dev.write_block(s_block, s_data)?;
                            absorb_io(stats, dev.stats());
                            jobs.push((
                                CrashKind::ReorderedWrite { durable, straggler: s, crashed_at: k },
                                dev.into_inner(),
                            ));
                        }
                    }
                    // only interesting when the straggler actually jumps
                    // a queue: with durable == k-1 the image equals the
                    // plain prefix
                    if opts.volatile_cache && durable + 1 < k {
                        let mut dev = StatsDevice::new(base.snapshot());
                        dev.write_block(*block, data)?;
                        absorb_io(stats, dev.stats());
                        jobs.push((
                            CrashKind::VolatileCache { durable, straggler: k },
                            dev.into_inner(),
                        ));
                    }
                }
            }
        }
    }
    absorb_io(stats, rolling.stats());
    Ok(jobs)
}

/// Legacy engine: every image is replayed in full from the pre-workload
/// state — O(k) block writes per crash point, O(W²) in total. Kept as
/// the benchmark baseline and the equivalence-test reference.
fn materialize_replay(
    workload: &Workload,
    opts: &ExploreOptions,
    stats: &mut ExploreStats,
) -> Result<Vec<(CrashKind, MemDevice)>, DeviceError> {
    let writes = workload.trace.write_count();
    let durable = durable_counts(workload);
    let mut jobs: Vec<(CrashKind, MemDevice)> = Vec::new();
    let replay = |prefix: usize,
                  straggler: Option<(u64, Vec<u8>)>,
                  stats: &mut ExploreStats|
     -> Result<MemDevice, DeviceError> {
        let mut dev = StatsDevice::new(workload.pre.clone());
        workload.trace.apply_prefix(&mut dev, prefix)?;
        if let Some((block, data)) = straggler {
            dev.write_block(block, &data)?;
        }
        absorb_io(stats, dev.stats());
        Ok(dev.into_inner())
    };
    for k in prefix_points(writes, opts.max_prefix_points) {
        jobs.push((CrashKind::Prefix { writes: k }, replay(k, None, stats)?));
        if k == 0 {
            continue;
        }
        if opts.torn_writes {
            let (block, data, pre) = nth_write(workload, k);
            let persisted = data.len() / 2;
            jobs.push((
                CrashKind::TornWrite { write: k, persisted },
                replay(k - 1, Some((block, torn_bytes(data, pre, persisted))), stats)?,
            ));
        }
        if opts.deep_reorder {
            for s in durable[k] + 1..k {
                let (block, data, _) = nth_write(workload, s);
                jobs.push((
                    CrashKind::ReorderedWrite { durable: durable[k], straggler: s, crashed_at: k },
                    replay(durable[k], Some((block, data.to_vec())), stats)?,
                ));
            }
        }
        if opts.volatile_cache && durable[k] + 1 < k {
            let (block, data, _) = nth_write(workload, k);
            jobs.push((
                CrashKind::VolatileCache { durable: durable[k], straggler: k },
                replay(durable[k], Some((block, data.to_vec())), stats)?,
            ));
        }
    }
    Ok(jobs)
}

// ---------------------------------------------------------------------
// classification
// ---------------------------------------------------------------------

/// A crash image with a content identity — what the verdict cache and
/// the classification pool operate on.
trait CrashImage: BlockDevice + Clone + Send {
    fn content_digest(&self) -> ImageDigest;
    /// Called once the image's identity has been taken and only repair
    /// writes remain; lets the device drop bookkeeping it no longer
    /// needs (digest upkeep on [`CowDevice`]).
    fn freeze_identity(&mut self) {}
}

impl CrashImage for CowDevice {
    fn content_digest(&self) -> ImageDigest {
        self.digest().expect("materialized crash images track their digest")
    }

    fn freeze_identity(&mut self) {
        self.stop_digest_tracking();
    }
}

impl CrashImage for MemDevice {
    fn content_digest(&self) -> ImageDigest {
        digest_device(self).expect("in-range scan of an in-memory device")
    }
}

/// Indices of the durability expectations covered by a crash point
/// guaranteeing `guaranteed` writes. Classification depends on the
/// crash kind *only* through this set, so it is the second half of the
/// verdict-cache key: byte-identical images under the same applicable
/// set always share a verdict.
fn applicable_expectations(workload: &Workload, guaranteed: usize) -> Vec<u16> {
    workload
        .expectations
        .iter()
        .enumerate()
        .filter(|(_, e)| e.durable_after <= guaranteed)
        .map(|(i, _)| i as u16)
        .collect()
}

/// FNV-1a over raw bytes (store-key context hashing).
fn fnv1a_bytes(h: &mut u64, bytes: &[u8]) {
    for &byte in bytes {
        *h = (*h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// The context half of a persistent-store key: a crash image's verdict
/// depends on the image bytes *and* on what recovery is asked to check —
/// block size, backup-superblock candidates, and the exact contents of
/// the applicable durability expectations. Hashing them into the key
/// keeps verdicts from leaking between unrelated workloads that happen
/// to share an image digest.
fn store_extra(workload: &Workload, applicable: &[u16]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv1a_bytes(&mut h, &workload.block_size.to_le_bytes());
    for &b in &workload.backup_superblocks {
        fnv1a_bytes(&mut h, &b.to_le_bytes());
    }
    for &i in applicable {
        let e = &workload.expectations[i as usize];
        fnv1a_bytes(&mut h, e.file.as_bytes());
        fnv1a_bytes(&mut h, &[0]);
        fnv1a_bytes(&mut h, &e.content);
        fnv1a_bytes(&mut h, &[0xff]);
    }
    h
}

/// Folds a per-run snapshot of the persistent store's counters into the
/// run stats (the store's own counters are cumulative per process).
struct StoreCounters {
    hits0: usize,
    misses0: usize,
}

impl StoreCounters {
    fn before(store: Option<&Arc<VerdictStore<OutcomeCore>>>) -> Self {
        StoreCounters {
            hits0: store.map_or(0, |s| s.hits()),
            misses0: store.map_or(0, |s| s.misses()),
        }
    }

    fn settle(self, store: Option<&Arc<VerdictStore<OutcomeCore>>>, stats: &mut ExploreStats) {
        if let Some(store) = store {
            stats.store_hits += store.hits() - self.hits0;
            stats.store_misses += store.misses() - self.misses0;
        }
    }
}

/// Classifies all materialised images: deduplicates byte-identical ones
/// via the digest cache, answers what it can from the persistent store,
/// fans the unique classifications out across the worker pool, and
/// re-assembles the outcomes in enumeration order.
fn classify_all<D: CrashImage>(
    jobs: Vec<(CrashKind, D)>,
    workload: &Workload,
    opts: &ExploreOptions,
    threads: usize,
    stats: &mut ExploreStats,
) -> Vec<CrashOutcome> {
    let counters = StoreCounters::before(opts.store.as_ref());
    // map every crash point to a verdict slot; a slot is either a
    // store-provided verdict or an image awaiting classification
    let mut kinds: Vec<CrashKind> = Vec::with_capacity(jobs.len());
    let mut slot_of: Vec<usize> = Vec::with_capacity(jobs.len());
    let mut ready: Vec<Option<OutcomeCore>> = Vec::new();
    let mut unique: Vec<(D, usize, Option<blockdev::StoreKey>)> = Vec::new();
    let mut unique_slot: Vec<usize> = Vec::new();
    let mut seen: HashMap<(ImageDigest, Vec<u16>), usize> = HashMap::new();
    for (kind, mut image) in jobs {
        let guaranteed = kind.guaranteed_writes();
        kinds.push(kind);
        let want_identity = opts.verdict_cache || opts.store.is_some();
        if want_identity {
            let digest = image.content_digest();
            let applicable = applicable_expectations(workload, guaranteed);
            if opts.verdict_cache {
                if let Some(&slot) = seen.get(&(digest, applicable.clone())) {
                    stats.cache_hits += 1;
                    slot_of.push(slot);
                    continue;
                }
                seen.insert((digest, applicable.clone()), ready.len());
            }
            let store_key = (digest, store_extra(workload, &applicable));
            if let Some(hit) = opts.store.as_ref().and_then(|s| s.lookup(store_key)) {
                slot_of.push(ready.len());
                ready.push(Some(hit));
                continue;
            }
            image.freeze_identity();
            slot_of.push(ready.len());
            unique_slot.push(ready.len());
            ready.push(None);
            unique.push((image, guaranteed, opts.store.as_ref().map(|_| store_key)));
        } else {
            image.freeze_identity();
            slot_of.push(ready.len());
            unique_slot.push(ready.len());
            ready.push(None);
            unique.push((image, guaranteed, None));
        }
    }
    stats.images_classified = unique.len();

    let cores: Vec<(OutcomeCore, Option<blockdev::StoreKey>)> =
        parallel_map(unique, threads, |_, (image, guaranteed, store_key)| {
            (classify_image(image, workload, guaranteed), store_key)
        });
    for (slot, (core, store_key)) in unique_slot.into_iter().zip(cores) {
        if let (Some(store), Some(key)) = (opts.store.as_ref(), store_key) {
            store.insert(key, core.clone());
        }
        ready[slot] = Some(core);
    }
    counters.settle(opts.store.as_ref(), stats);
    kinds
        .into_iter()
        .zip(slot_of)
        .map(|(kind, slot)| {
            ready[slot].clone().expect("every verdict slot filled").into_outcome(kind)
        })
        .collect()
}

// ---------------------------------------------------------------------
// partial-order reduction
// ---------------------------------------------------------------------

/// Plans the full crash-schedule enumeration straight from the recorded
/// trace, attaching to every schedule the exact content digest of the
/// image it would materialise — without materialising anything.
///
/// This is what makes the partial-order reduction sound rather than
/// heuristic: every [`IoEvent::Write`] records both its data and the
/// block's pre-image, and [`ImageDigest`] is a *commutative* per-block
/// sum, so the digest of any schedule's image is computable by rolling
/// contribution replacement. Two schedules whose writes commute (they
/// touch distinct blocks with no flush barrier ordering them) sum to
/// the same digest by construction — the digest itself is the canonical
/// class representative.
fn plan_schedules(
    workload: &Workload,
    opts: &ExploreOptions,
) -> Result<Vec<(CrashKind, ImageDigest)>, DeviceError> {
    let writes = workload.trace.write_count();
    let points = prefix_points(writes, opts.max_prefix_points);
    let mut next_point = points.iter().copied().peekable();
    let mut plan: Vec<(CrashKind, ImageDigest)> = Vec::new();

    // rolling digest of the strict write-prefix image
    let mut cur = digest_device(&workload.pre)?;
    // digest of the image at the last flush barrier
    let mut durable_digest = cur;
    // per-block contribution *at the barrier* for blocks written since:
    // recorded at each block's first post-barrier write, when its
    // pre-image still is the barrier-time content
    let mut barrier_contribution: HashMap<u64, blockdev::BlockContribution> = HashMap::new();
    // writes issued since the barrier: (write number, block, new contribution)
    let mut epoch_writes: Vec<(usize, u64, blockdev::BlockContribution)> = Vec::new();
    let mut durable = 0usize;
    let mut done = 0usize;

    if next_point.peek() == Some(&0) {
        next_point.next();
        plan.push((CrashKind::Prefix { writes: 0 }, cur));
    }
    for event in workload.trace.events() {
        match event {
            IoEvent::Flush => {
                durable = done;
                durable_digest = cur;
                barrier_contribution.clear();
                epoch_writes.clear();
            }
            IoEvent::Write { block, data, pre } => {
                let k = done + 1;
                let old = block_contribution(*block, pre);
                let new = block_contribution(*block, data);
                let explored = next_point.peek() == Some(&k);
                let torn = if explored && opts.torn_writes {
                    let persisted = data.len() / 2;
                    let mut d = cur;
                    d.replace(old, block_contribution(*block, &torn_bytes(data, pre, persisted)));
                    Some((persisted, d))
                } else {
                    None
                };
                barrier_contribution.entry(*block).or_insert(old);
                cur.replace(old, new);
                epoch_writes.push((k, *block, new));
                done = k;
                if explored {
                    next_point.next();
                    plan.push((CrashKind::Prefix { writes: k }, cur));
                    if let Some((persisted, d)) = torn {
                        plan.push((CrashKind::TornWrite { write: k, persisted }, d));
                    }
                    // straggler images: the barrier-time image with one
                    // post-barrier write applied on top
                    let straggler_digest = |s_block: u64, s_new: blockdev::BlockContribution| {
                        let mut d = durable_digest;
                        let at_barrier = barrier_contribution
                            .get(&s_block)
                            .copied()
                            .unwrap_or_else(|| panic!("straggler block {s_block} untracked"));
                        d.replace(at_barrier, s_new);
                        d
                    };
                    if opts.deep_reorder {
                        for &(s, s_block, s_new) in &epoch_writes {
                            if s <= durable || s >= k {
                                continue;
                            }
                            plan.push((
                                CrashKind::ReorderedWrite { durable, straggler: s, crashed_at: k },
                                straggler_digest(s_block, s_new),
                            ));
                        }
                    }
                    if opts.volatile_cache && durable + 1 < k {
                        plan.push((
                            CrashKind::VolatileCache { durable, straggler: k },
                            straggler_digest(*block, new),
                        ));
                    }
                }
            }
        }
    }
    Ok(plan)
}

/// The replay recipe for one planned schedule: the write prefix to
/// apply and the optional out-of-order straggler on top.
fn replay_recipe(workload: &Workload, kind: CrashKind) -> (usize, Option<(u64, Vec<u8>)>) {
    match kind {
        CrashKind::Prefix { writes } => (writes, None),
        CrashKind::TornWrite { write, persisted } => {
            let (block, data, pre) = nth_write(workload, write);
            (write - 1, Some((block, torn_bytes(data, pre, persisted))))
        }
        CrashKind::VolatileCache { durable, straggler }
        | CrashKind::ReorderedWrite { durable, straggler, .. } => {
            let (block, data, _) = nth_write(workload, straggler);
            (durable, Some((block, data.to_vec())))
        }
    }
}

/// The partial-order-reduction engine: plans every schedule's digest
/// from the trace, prunes schedules whose (digest, durability contract)
/// class already has a representative, answers classes from the
/// persistent store where possible, and only materialises + classifies
/// the remaining class representatives.
fn explore_por(
    workload: &Workload,
    opts: &ExploreOptions,
    threads: usize,
    stats: &mut ExploreStats,
) -> Result<Vec<CrashOutcome>, DeviceError> {
    let counters = StoreCounters::before(opts.store.as_ref());
    let plan = plan_schedules(workload, opts)?;
    let enumerated = plan.len();

    let mut kinds: Vec<CrashKind> = Vec::with_capacity(enumerated);
    let mut slot_of: Vec<usize> = Vec::with_capacity(enumerated);
    let mut ready: Vec<Option<OutcomeCore>> = Vec::new();
    let mut todo: Vec<(CrashKind, ImageDigest, usize, Option<blockdev::StoreKey>)> = Vec::new();
    let mut todo_slot: Vec<usize> = Vec::new();
    let mut seen: HashMap<(ImageDigest, Vec<u16>), usize> = HashMap::new();
    for (kind, digest) in plan {
        let guaranteed = kind.guaranteed_writes();
        kinds.push(kind);
        let applicable = applicable_expectations(workload, guaranteed);
        if let Some(&slot) = seen.get(&(digest, applicable.clone())) {
            stats.cache_hits += 1;
            slot_of.push(slot);
            continue;
        }
        seen.insert((digest, applicable.clone()), ready.len());
        let store_key = (digest, store_extra(workload, &applicable));
        if let Some(hit) = opts.store.as_ref().and_then(|s| s.lookup(store_key)) {
            slot_of.push(ready.len());
            ready.push(Some(hit));
            continue;
        }
        slot_of.push(ready.len());
        todo_slot.push(ready.len());
        ready.push(None);
        todo.push((kind, digest, guaranteed, opts.store.as_ref().map(|_| store_key)));
    }
    stats.por_classes = ready.len();
    stats.schedules_pruned = enumerated - ready.len();
    stats.images_classified = todo.len();

    // materialise and classify only the class representatives; a fully
    // store-warm run reaches here with nothing to do and never touches
    // the device layer at all
    type PorResult = Result<(OutcomeCore, IoStats, Option<blockdev::StoreKey>), DeviceError>;
    let results: Vec<PorResult> =
        parallel_map(todo, threads, |_, (kind, digest, guaranteed, store_key)| {
            let (prefix, straggler) = replay_recipe(workload, kind);
            let mut dev = StatsDevice::new(workload.pre.clone());
            workload.trace.apply_prefix(&mut dev, prefix)?;
            if let Some((block, data)) = straggler {
                dev.write_block(block, &data)?;
            }
            let io = dev.stats();
            let image = dev.into_inner();
            debug_assert_eq!(
                digest_device(&image)?,
                digest,
                "trace-planned digest must match the materialised image ({kind:?})"
            );
            let _ = digest;
            Ok((classify_image(image, workload, guaranteed), io, store_key))
        });
    for (slot, result) in todo_slot.into_iter().zip(results) {
        let (core, io, store_key) = result?;
        absorb_io(stats, io);
        if let (Some(store), Some(key)) = (opts.store.as_ref(), store_key) {
            store.insert(key, core.clone());
        }
        ready[slot] = Some(core);
    }
    counters.settle(opts.store.as_ref(), stats);
    Ok(kinds
        .into_iter()
        .zip(slot_of)
        .map(|(kind, slot)| {
            ready[slot].clone().expect("every POR class resolved").into_outcome(kind)
        })
        .collect())
}

/// Result of the read-only remount plus durable-data audit.
enum DataCheck {
    Ok,
    Missing(String),
    Unmountable(String),
}

fn check_mount_and_data<D: BlockDevice>(
    dev: D,
    workload: &Workload,
    guaranteed: usize,
) -> DataCheck {
    let fs = match Ext4Fs::mount(dev, &MountOptions::read_only()) {
        Ok(fs) => fs,
        Err(e) => return DataCheck::Unmountable(e.to_string()),
    };
    let root = fs.root_inode();
    for exp in &workload.expectations {
        if exp.durable_after > guaranteed {
            continue; // not yet covered by a flush at this crash point
        }
        match fs.lookup(root, &exp.file) {
            Ok(Some(entry)) => match fs.read_file_to_vec(InodeNo(entry.inode)) {
                Ok(data) if data == exp.content => {}
                Ok(_) => {
                    return DataCheck::Missing(format!("durable file '{}' content differs", exp.file))
                }
                Err(e) => {
                    return DataCheck::Missing(format!("durable file '{}' unreadable: {e}", exp.file))
                }
            },
            Ok(None) => return DataCheck::Missing(format!("durable file '{}' missing", exp.file)),
            Err(e) => {
                return DataCheck::Missing(format!("lookup of durable file '{}' failed: {e}", exp.file))
            }
        }
    }
    DataCheck::Ok
}

fn core(
    verdict: Verdict,
    fsck_exit: Option<i32>,
    fixes: usize,
    used_backup_superblock: bool,
    detail: String,
) -> OutcomeCore {
    OutcomeCore { verdict, fsck_exit, fixes, used_backup_superblock, detail }
}

/// Classifies one materialised crash image. Takes the image by value:
/// the `-n` probe lends it out and gets it back untouched, and each
/// repair attempt makes at most one copy (a cheap CoW snapshot on the
/// incremental engine).
fn classify_image<D: BlockDevice + Clone>(
    img: D,
    workload: &Workload,
    guaranteed: usize,
) -> OutcomeCore {
    // an untouched copy left over from the probe, consumed by the first
    // repair attempt so the probe and that attempt share one copy
    let mut spare: Option<D> = None;

    // 1. already consistent? `e2fsck -n -f` must find nothing AND the
    // image must mount with its durable data intact
    match E2fsck::with_mode(FsckMode::Check).forced().run(img.clone()) {
        Ok((dev, res)) if res.exit_code == 0 => {
            match check_mount_and_data(dev, workload, guaranteed) {
                DataCheck::Ok => {
                    return core(
                        Verdict::Consistent,
                        Some(0),
                        0,
                        false,
                        "clean without repair".to_string(),
                    )
                }
                DataCheck::Missing(what) => {
                    return core(
                        Verdict::DataLoss,
                        Some(0),
                        0,
                        false,
                        format!("image checks clean but {what}"),
                    )
                }
                // clean yet unmountable: fall through to the repair path
                DataCheck::Unmountable(_) => {}
            }
        }
        // `-n` leaves the image untouched, so the returned device is
        // still pristine — reuse it instead of cloning again
        Ok((dev, _)) => spare = Some(dev),
        Err(_) => {}
    }

    // 2. repair: primary superblock first, then each backup candidate
    let mut attempts: Vec<Option<u64>> = vec![None];
    attempts.extend(workload.backup_superblocks.iter().map(|&b| Some(b)));
    let mut last_failure = "image not recognisable as a file system".to_string();
    for attempt in attempts {
        let mut fsck = E2fsck::with_mode(FsckMode::Fix).forced();
        if let Some(block) = attempt {
            fsck = fsck.with_backup_superblock(block, workload.block_size);
        }
        let target = spare.take().unwrap_or_else(|| img.clone());
        let (dev, res) = match fsck.run(target) {
            Ok(pair) => pair,
            Err(e) => {
                last_failure = e.to_string();
                continue;
            }
        };
        let mut fixes = res.fixes.len();
        let mut exit = res.exit_code;
        let mut dev = dev;
        if exit == 4 {
            // structural repairs can expose counter drift; give the
            // tool the customary second pass
            match E2fsck::with_mode(FsckMode::Fix).forced().run(dev) {
                Ok((d, second)) => {
                    fixes += second.fixes.len();
                    exit = second.exit_code;
                    dev = d;
                }
                Err(e) => {
                    last_failure = e.to_string();
                    continue;
                }
            }
        }
        if exit == 4 {
            last_failure = "errors left uncorrected after two fsck passes".to_string();
            continue;
        }
        // verify the repair took
        let (dev, verify) = match E2fsck::with_mode(FsckMode::Check).forced().run(dev) {
            Ok(pair) => pair,
            Err(e) => {
                last_failure = e.to_string();
                continue;
            }
        };
        if verify.exit_code != 0 {
            last_failure = "repaired image still fails a forced check".to_string();
            continue;
        }
        let used_backup = attempt.is_some();
        let via = match attempt {
            Some(block) => format!(" via backup superblock at block {block}"),
            None => String::new(),
        };
        match check_mount_and_data(dev, workload, guaranteed) {
            DataCheck::Ok => {
                return core(
                    Verdict::Repairable,
                    Some(exit),
                    fixes,
                    used_backup,
                    format!("repaired with {fixes} fix(es){via}"),
                )
            }
            DataCheck::Missing(what) => {
                return core(
                    Verdict::DataLoss,
                    Some(exit),
                    fixes,
                    used_backup,
                    format!("repaired{via}, but {what}"),
                )
            }
            DataCheck::Unmountable(e) => {
                last_failure = format!("repaired image does not mount: {e}");
                continue;
            }
        }
    }

    core(Verdict::Unrecoverable, None, 0, false, last_failure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{figure1_resize_workload, journaled_write_workload, Workload};
    use blockdev::RecordingDevice;
    use contest_helpers::*;

    // small helpers shared by the tests below
    mod contest_helpers {
        use super::*;
        use e2fstools::Mke2fs;

        /// A clean sparse_super image (backups in group 1 and 3).
        pub fn clean_image() -> MemDevice {
            let m = Mke2fs::from_args(&["-b", "1024", "/dev/t", "12288"]).unwrap();
            m.run(MemDevice::new(1024, 16384)).unwrap().0
        }
    }

    #[test]
    fn prefix_points_sampling_keeps_endpoints() {
        assert_eq!(prefix_points(4, None), vec![0, 1, 2, 3, 4]);
        assert_eq!(prefix_points(4, Some(10)), vec![0, 1, 2, 3, 4]);
        let sampled = prefix_points(100, Some(5));
        assert_eq!(sampled.first(), Some(&0));
        assert_eq!(sampled.last(), Some(&100));
        assert_eq!(sampled.len(), 5);
    }

    #[test]
    fn prefix_points_tiny_caps_clamp_to_endpoints() {
        // caps below 2 cannot honour "at most `points`" and keep both
        // endpoints; they clamp to exactly the endpoints
        assert_eq!(prefix_points(100, Some(0)), vec![0, 100]);
        assert_eq!(prefix_points(100, Some(1)), vec![0, 100]);
        assert_eq!(prefix_points(100, Some(2)), vec![0, 100]);
        // degenerate traces still honour the bound
        assert_eq!(prefix_points(0, Some(0)), vec![0]);
        assert_eq!(prefix_points(1, Some(1)), vec![0, 1]);
    }

    #[test]
    fn durable_counts_track_flush_barriers() {
        let mut rec = RecordingDevice::new(MemDevice::new(512, 8));
        rec.write_block(0, &[1u8; 512]).unwrap();
        rec.write_block(1, &[2u8; 512]).unwrap();
        rec.flush().unwrap();
        rec.write_block(2, &[3u8; 512]).unwrap();
        let (_, trace) = rec.into_parts();
        let w = Workload {
            name: "t".to_string(),
            pre: MemDevice::new(512, 8),
            trace,
            block_size: 512,
            expectations: Vec::new(),
            backup_superblocks: Vec::new(),
        };
        assert_eq!(durable_counts(&w), vec![0, 0, 0, 2]);
    }

    #[test]
    fn garbage_trace_on_blank_device_is_unrecoverable() {
        let mut rec = RecordingDevice::new(MemDevice::new(1024, 64));
        rec.write_block(0, &[0xFFu8; 1024]).unwrap();
        let (_, trace) = rec.into_parts();
        let w = Workload {
            name: "garbage".to_string(),
            pre: MemDevice::new(1024, 64),
            trace,
            block_size: 1024,
            expectations: Vec::new(),
            backup_superblocks: Vec::new(),
        };
        let report = explore(&w, &ExploreOptions::default()).unwrap();
        assert!(report.outcomes.iter().all(|o| o.verdict == Verdict::Unrecoverable));
    }

    #[test]
    fn overwritten_primary_superblock_recovers_from_backup() {
        // the traced "workload" wipes block 1 (the primary superblock)
        let pre = clean_image();
        let mut rec = RecordingDevice::new(pre.clone());
        rec.write_block(1, &vec![0u8; 1024]).unwrap();
        let (_, trace) = rec.into_parts();
        let w = Workload {
            name: "sb-wipe".to_string(),
            pre,
            trace,
            block_size: 1024,
            expectations: Vec::new(),
            backup_superblocks: vec![8193],
        };
        let report = explore(&w, &ExploreOptions::default()).unwrap();
        // prefix 1 = superblock gone; must come back via block 8193
        let wiped = report
            .outcomes
            .iter()
            .find(|o| matches!(o.kind, CrashKind::Prefix { writes: 1 }))
            .expect("prefix 1 explored");
        assert_eq!(wiped.verdict, Verdict::Repairable, "{}", wiped.detail);
        assert!(wiped.used_backup_superblock, "{}", wiped.detail);
    }

    #[test]
    fn journaled_prefixes_never_lose_the_file_system() {
        let files = vec![("steady".to_string(), vec![7u8; 600])];
        let w = journaled_write_workload(&files).unwrap();
        let report = explore(&w, &ExploreOptions::default()).unwrap();
        assert!(report.writes > 0);
        for o in &report.outcomes {
            assert!(
                o.verdict <= Verdict::Repairable,
                "{:?} -> {:?}: {}",
                o.kind,
                o.verdict,
                o.detail
            );
        }
    }

    #[test]
    fn defrag_crashes_never_lose_durable_data() {
        // regression: the defragmenter must (a) publish the new block
        // mapping only after the copied data, with a flush barrier in
        // between, and (b) free the old blocks only after the publish —
        // otherwise prefix, torn and volatile-cache crash points all
        // surface the pre-existing files with wrong contents
        let w = crate::workloads::defrag_workload().unwrap();
        let report = explore(&w, &ExploreOptions::default()).unwrap();
        let counts = report.counts();
        assert_eq!(counts.data_loss, 0, "{:?}", counts);
        assert_eq!(counts.unrecoverable, 0, "{:?}", counts);
    }

    #[test]
    fn figure1_resize_has_corrupting_crash_points() {
        let w = figure1_resize_workload().unwrap();
        let report = explore(&w, &ExploreOptions::sampled(9)).unwrap();
        assert!(report.corrupting() >= 1, "counts: {:?}", report.counts());
        // the *completed* resize is itself corrupt (the Figure 1 bug):
        let full = report
            .outcomes
            .iter()
            .find(|o| matches!(o.kind, CrashKind::Prefix { writes } if writes == report.writes))
            .expect("complete prefix explored");
        assert_ne!(full.verdict, Verdict::Consistent, "{}", full.detail);
    }

    #[test]
    fn engines_threads_and_cache_agree_exactly() {
        let files = vec![
            ("alpha".to_string(), vec![1u8; 700]),
            ("beta".to_string(), vec![2u8; 300]),
        ];
        let w = journaled_write_workload(&files).unwrap();
        let baseline = explore(&w, &ExploreOptions::sequential_baseline()).unwrap();
        let rolling = explore(
            &w,
            &ExploreOptions { threads: 1, verdict_cache: false, ..ExploreOptions::default() },
        )
        .unwrap();
        let cached_parallel =
            explore(&w, &ExploreOptions::default().with_threads(4)).unwrap();
        // identical outcome lists, in the same enumeration order
        let debug = |r: &CrashReport| {
            r.outcomes.iter().map(|o| format!("{o:?}")).collect::<Vec<_>>()
        };
        assert_eq!(debug(&baseline), debug(&rolling));
        assert_eq!(debug(&baseline), debug(&cached_parallel));
        // the rolling engine replays O(W) blocks where the baseline
        // replays O(W²)
        assert!(
            rolling.stats.blocks_replayed < baseline.stats.blocks_replayed,
            "rolling {} vs baseline {}",
            rolling.stats.blocks_replayed,
            baseline.stats.blocks_replayed
        );
        // journalled traces collapse many torn variants onto their
        // prefix images, so the cache must fire without changing a
        // single verdict
        assert!(cached_parallel.stats.cache_hits > 0, "{:?}", cached_parallel.stats);
        assert_eq!(
            cached_parallel.stats.images_classified + cached_parallel.stats.cache_hits,
            cached_parallel.outcomes.len()
        );
        assert_eq!(baseline.stats.cache_hits, 0);
        assert_eq!(cached_parallel.stats.threads, 4);
    }

    #[test]
    fn por_engine_matches_exhaustive_and_prunes() {
        let files = vec![
            ("alpha".to_string(), vec![1u8; 700]),
            ("beta".to_string(), vec![2u8; 300]),
        ];
        let w = journaled_write_workload(&files).unwrap();
        let deep = ExploreOptions { deep_reorder: true, ..ExploreOptions::default() };
        let exhaustive = explore(&w, &deep).unwrap();
        let por = explore(&w, &ExploreOptions { por: true, ..deep.clone() }).unwrap();
        // all three deep-reorder engines agree outcome-for-outcome, in
        // enumeration order
        let debug = |r: &CrashReport| {
            r.outcomes.iter().map(|o| format!("{o:?}")).collect::<Vec<_>>()
        };
        let baseline = explore(
            &w,
            &ExploreOptions { deep_reorder: true, ..ExploreOptions::sequential_baseline() },
        )
        .unwrap();
        assert_eq!(debug(&baseline), debug(&exhaustive));
        assert_eq!(debug(&exhaustive), debug(&por));
        // deep reordering enumerates interior stragglers
        assert!(
            exhaustive.outcomes.iter().any(|o| matches!(o.kind, CrashKind::ReorderedWrite { .. })),
            "deep reorder enumerated no interior stragglers"
        );
        // ... and POR collapses them without changing a verdict
        assert!(por.stats.schedules_pruned > 0, "{:?}", por.stats);
        assert_eq!(
            por.stats.por_classes + por.stats.schedules_pruned,
            por.outcomes.len(),
            "{:?}",
            por.stats
        );
        assert_eq!(por.stats.images_classified, por.stats.por_classes);
        assert_eq!(exhaustive.stats.schedules_pruned, 0);
        assert_eq!(exhaustive.stats.por_classes, 0);
    }

    #[test]
    fn store_warm_run_replays_nothing() {
        let files = vec![("alpha".to_string(), vec![1u8; 700])];
        let w = journaled_write_workload(&files).unwrap();
        let store = std::sync::Arc::new(VerdictStore::in_memory(true));
        let opts = ExploreOptions::corpus().with_threads(1).with_store(store.clone());
        let cold = explore(&w, &opts).unwrap();
        assert!(cold.stats.images_classified > 0);
        assert_eq!(cold.stats.store_hits, 0);
        assert_eq!(cold.stats.store_misses, cold.stats.por_classes);
        let warm = explore(&w, &opts).unwrap();
        assert_eq!(warm.stats.images_classified, 0, "warm run classified an image");
        assert_eq!(warm.stats.blocks_replayed, 0, "warm run touched the device layer");
        assert_eq!(warm.stats.store_hits, warm.stats.por_classes);
        assert_eq!(cold.canonical_signature(), warm.canonical_signature());
        assert_eq!(store.len(), cold.stats.por_classes);
    }
}
