//! Canonical workloads whose write streams the explorer crash-tests.
//!
//! Each builder runs one ecosystem operation over a [`RecordingDevice`]
//! and packages the pre-image, the trace, the durability expectations
//! and the backup-superblock candidates into a [`Workload`].

use blockdev::{MemDevice, RecordingDevice};
use contools::standard_image;
use e2fstools::{backup_superblock_candidates, E4defrag, Mke2fs, Resize2fs, ToolError};
use ext4sim::{Ext4Fs, MountOptions};

use crate::IoTrace;

/// Data the workload made durable: once `durable_after` writes are
/// guaranteed on disk (a flush barrier covered them), `file` must
/// survive any crash with exactly `content`.
#[derive(Debug, Clone)]
pub struct DurableExpectation {
    /// File name in the root directory.
    pub file: String,
    /// Expected contents.
    pub content: Vec<u8>,
    /// Trace write count at the moment the data was flushed.
    pub durable_after: usize,
}

/// A recorded workload, ready for crash-point exploration.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Name used in the report.
    pub name: String,
    /// Device contents before the traced operation.
    pub pre: MemDevice,
    /// The operation's write/flush stream.
    pub trace: IoTrace,
    /// File-system block size (for `e2fsck -B`).
    pub block_size: u32,
    /// Durability contract to judge data loss against.
    pub expectations: Vec<DurableExpectation>,
    /// Blocks to try with `e2fsck -b` when the primary superblock is
    /// unusable.
    pub backup_superblocks: Vec<u64>,
}

/// Backup-superblock candidates of the file system on `dev`, or none
/// when the image is not (yet) openable.
fn candidates_from(dev: &MemDevice) -> Vec<u64> {
    Ext4Fs::open_for_maintenance(dev.clone())
        .map(|fs| backup_superblock_candidates(fs.layout()))
        .unwrap_or_default()
}

/// `mke2fs -b 1024 /dev/crash 12288` on a blank device. Early crash
/// points leave no recognisable file system at all — format is the one
/// workload where `Unrecoverable` outcomes are the expected baseline.
pub fn format_workload() -> Result<Workload, ToolError> {
    let blank = MemDevice::new(1024, 16384);
    let m = Mke2fs::from_args(&["-b", "1024", "/dev/crash", "12288"])?;
    let (rec, _) = m.run(RecordingDevice::new(blank.clone()))?;
    let (post, trace) = rec.into_parts();
    Ok(Workload {
        name: "mke2fs-format".to_string(),
        pre: blank,
        trace,
        block_size: 1024,
        expectations: Vec::new(),
        backup_superblocks: candidates_from(&post),
    })
}

/// The paper's Figure 1 case: grow a `sparse_super2` file system with
/// `resize2fs`. Even the *complete* trace is a corrupting "crash point"
/// here — the resize itself miscomputes the last group's free blocks.
pub fn figure1_resize_workload() -> Result<Workload, ToolError> {
    // the same image ConHandleCk injects its Figure 1 violation into —
    // crash exploration extends that completed-operation check to every
    // mid-operation power-failure point
    let pre = standard_image("sparse_super2,^sparse_super,^resize_inode");
    let (rec, _) = Resize2fs::to_size(16384).run(RecordingDevice::new(pre.clone()))?;
    let (post, trace) = rec.into_parts();
    // the resize may relocate the sparse_super2 backups: candidates from
    // both the old and the new geometry are valid recovery points
    let mut backups = candidates_from(&pre);
    for b in candidates_from(&post) {
        if !backups.contains(&b) {
            backups.push(b);
        }
    }
    Ok(Workload {
        name: "figure1-sparse-super2-resize".to_string(),
        pre,
        trace,
        block_size: 1024,
        expectations: Vec::new(),
        backup_superblocks: backups,
    })
}

/// Mount–write–unmount cycles on a journalled file system, one cycle
/// per `(name, content)` pair. Each clean unmount commits through the
/// journal and ends in a flush, so every earlier cycle's file is part
/// of the durability contract from that point on.
pub fn journaled_write_workload(files: &[(String, Vec<u8>)]) -> Result<Workload, ToolError> {
    let m = Mke2fs::from_args(&["-b", "1024", "/dev/crash", "4096"])?;
    let (pre, _) = m.run(MemDevice::new(1024, 4096))?;
    let mut rec = RecordingDevice::new(pre.clone());
    let mut expectations = Vec::new();
    for (name, content) in files {
        let mut fs = Ext4Fs::mount(rec, &MountOptions::default())?;
        let root = fs.root_inode();
        let ino = fs.create_file(root, name)?;
        if !content.is_empty() {
            fs.write_file(ino, 0, content)?;
        }
        rec = fs.unmount()?;
        expectations.push(DurableExpectation {
            file: name.clone(),
            content: content.clone(),
            durable_after: rec.trace().write_count(),
        });
    }
    let (_, trace) = rec.into_parts();
    Ok(Workload {
        name: "journaled-file-writes".to_string(),
        pre,
        trace,
        block_size: 1024,
        // single block group: no backup superblocks exist
        expectations,
        backup_superblocks: Vec::new(),
    })
}

/// `e4defrag` over two deliberately interleaved files. Both files were
/// durable before the defragmenter started, so they must survive every
/// crash point with their contents intact (`durable_after: 0`).
pub fn defrag_workload() -> Result<Workload, ToolError> {
    let dev = standard_image("");
    let mut fs = Ext4Fs::mount(dev, &MountOptions::default())?;
    let root = fs.root_inode();
    let a = fs.create_file(root, "frag_a")?;
    let b = fs.create_file(root, "frag_b")?;
    // alternate extends so the two files' blocks interleave on disk
    for i in 0..8u64 {
        fs.write_file(a, i * 1024, &[0xAA; 1024])?;
        fs.write_file(b, i * 1024, &[0xBB; 1024])?;
    }
    let pre = fs.unmount()?;

    let rec = RecordingDevice::new(pre.clone());
    let mut fs = Ext4Fs::mount(rec, &MountOptions::default())?;
    E4defrag::new().run(&mut fs)?;
    let rec = fs.unmount()?;
    let (_, trace) = rec.into_parts();
    let expectations = vec![
        DurableExpectation { file: "frag_a".to_string(), content: vec![0xAA; 8 * 1024], durable_after: 0 },
        DurableExpectation { file: "frag_b".to_string(), content: vec![0xBB; 8 * 1024], durable_after: 0 },
    ];
    let backup_superblocks = candidates_from(&pre);
    Ok(Workload {
        name: "e4defrag-online".to_string(),
        pre,
        trace,
        block_size: 1024,
        expectations,
        backup_superblocks,
    })
}

/// Parameters for a [`generated_workload`] multi-op corpus entry.
///
/// The same spec always produces the same workload: the op mix is
/// drawn from a splitmix64 stream seeded with `seed`, so corpus runs
/// are reproducible across machines and benchmark invocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Seed for the deterministic op-mix generator.
    pub seed: u64,
    /// Number of file operations to record.
    pub ops: usize,
    /// `max_batch_ops` mount tunable for the recorded session (0/1 =
    /// commit-per-op, >1 = journal group commit).
    pub max_batch_ops: u32,
}

/// Deterministic splitmix64, same constants as `bench::synth`.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Contents for file number `counter`: the first eight bytes are the
/// counter itself so every generated file body is unique.
fn corpus_content(counter: u64, rng: &mut SplitMix64) -> Vec<u8> {
    let len = 120 + rng.below(881) as usize;
    let mut content = vec![(rng.next() & 0xff) as u8; len];
    content[..8].copy_from_slice(&counter.to_le_bytes());
    content
}

/// A generated multi-op workload: a single journalled mount session
/// mixing creates, overwrites, renames, deletes and an occasional
/// online defrag, with [`Ext4Fs::sync`] called after every operation.
///
/// Durability expectations cover the files live at unmount. Each
/// expectation's `durable_after` is the earliest sealed sync (group
/// commit) from which that exact `(name, content)` pair persisted
/// unchanged to the end of the trace, so renames, overwrites and
/// deletes of *other* files never invalidate it.
pub fn generated_workload(spec: &CorpusSpec) -> Result<Workload, ToolError> {
    use std::collections::BTreeMap;

    let m = Mke2fs::from_args(&["-b", "1024", "/dev/corpus", "4096"])?;
    let (pre, _) = m.run(MemDevice::new(1024, 4096))?;
    let rec = RecordingDevice::new(pre.clone());
    let opts = MountOptions { max_batch_ops: spec.max_batch_ops, ..MountOptions::default() };
    let mut fs = Ext4Fs::mount(rec, &opts)?;
    let root = fs.root_inode();

    let mut rng = SplitMix64(spec.seed);
    let mut live: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    // (write count, live set) at each sealed group commit
    let mut durable_points: Vec<(usize, BTreeMap<String, Vec<u8>>)> = Vec::new();
    let mut counter: u64 = 0;

    for _ in 0..spec.ops {
        let roll = rng.below(100);
        if live.is_empty() || roll < 40 {
            // create a fresh file
            counter += 1;
            let name = format!("f{counter}");
            let content = corpus_content(counter, &mut rng);
            let ino = fs.create_file(root, &name)?;
            fs.write_file(ino, 0, &content)?;
            live.insert(name, content);
        } else if roll < 60 {
            // overwrite an existing file with new contents
            let victim = rng.below(live.len() as u64) as usize;
            let name = match live.keys().nth(victim) {
                Some(n) => n.clone(),
                None => continue,
            };
            counter += 1;
            let content = corpus_content(counter, &mut rng);
            if let Some(entry) = fs.lookup(root, &name)? {
                let ino = ext4sim::InodeNo(entry.inode);
                fs.truncate(ino)?;
                fs.write_file(ino, 0, &content)?;
                live.insert(name, content);
            }
        } else if roll < 75 {
            // rename to a fresh name
            let victim = rng.below(live.len() as u64) as usize;
            let name = match live.keys().nth(victim) {
                Some(n) => n.clone(),
                None => continue,
            };
            counter += 1;
            let new_name = format!("r{counter}");
            fs.rename(root, &name, root, &new_name)?;
            if let Some(content) = live.remove(&name) {
                live.insert(new_name, content);
            }
        } else if roll < 90 {
            // delete
            let victim = rng.below(live.len() as u64) as usize;
            let name = match live.keys().nth(victim) {
                Some(n) => n.clone(),
                None => continue,
            };
            fs.unlink(root, &name)?;
            live.remove(&name);
        } else if live.len() >= 2 {
            // online defrag across whatever is currently live
            E4defrag::new().run(&mut fs)?;
        }
        if fs.sync()? {
            durable_points.push((fs.device().trace().write_count(), live.clone()));
        }
    }

    let rec = fs.unmount()?;
    // unmount force-seals any pending group commit
    durable_points.push((rec.trace().write_count(), live.clone()));
    let (_, trace) = rec.into_parts();

    // Each surviving file is durable from the earliest sealed commit at
    // which its final contents appeared and were never changed again.
    let final_writes = trace.write_count();
    let mut expectations = Vec::new();
    for (name, content) in &live {
        let mut durable_after = final_writes;
        for (writes, snapshot) in durable_points.iter().rev() {
            if snapshot.get(name) == Some(content) {
                durable_after = *writes;
            } else {
                break;
            }
        }
        expectations.push(DurableExpectation {
            file: name.clone(),
            content: content.clone(),
            durable_after,
        });
    }

    Ok(Workload {
        name: format!(
            "corpus-s{}-o{}-b{}",
            spec.seed, spec.ops, spec.max_batch_ops
        ),
        pre,
        trace,
        block_size: 1024,
        // single block group: no backup superblocks exist
        expectations,
        backup_superblocks: Vec::new(),
    })
}

/// A corpus of [`generated_workload`] entries with seeds derived from
/// `seed` via splitmix64, all sharing `ops` and `max_batch_ops`.
pub fn generated_corpus(
    seed: u64,
    count: usize,
    ops: usize,
    max_batch_ops: u32,
) -> Result<Vec<Workload>, ToolError> {
    let mut rng = SplitMix64(seed);
    (0..count)
        .map(|_| {
            generated_workload(&CorpusSpec { seed: rng.next(), ops, max_batch_ops })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journaled_workload_records_expectations_in_order() {
        let files = vec![
            ("alpha".to_string(), vec![1u8; 700]),
            ("beta".to_string(), vec![2u8; 300]),
        ];
        let w = journaled_write_workload(&files).unwrap();
        assert_eq!(w.expectations.len(), 2);
        assert!(w.expectations[0].durable_after < w.expectations[1].durable_after);
        assert_eq!(w.expectations[1].durable_after, w.trace.write_count());
        // each unmount commits through the journal and flushes
        assert!(w.trace.flush_count() >= 2, "flushes: {}", w.trace.flush_count());
    }

    #[test]
    fn format_workload_traces_the_whole_format() {
        let w = format_workload().unwrap();
        assert!(w.trace.write_count() > 10);
        assert_eq!(w.backup_superblocks, vec![8193]);
    }

    #[test]
    fn figure1_workload_knows_its_backups() {
        let w = figure1_resize_workload().unwrap();
        assert!(w.backup_superblocks.contains(&8193), "{:?}", w.backup_superblocks);
        assert!(w.trace.write_count() > 0);
    }

    #[test]
    fn defrag_workload_guards_preexisting_data() {
        let w = defrag_workload().unwrap();
        assert!(w.expectations.iter().all(|e| e.durable_after == 0));
    }

    #[test]
    fn generated_workload_is_deterministic() {
        let spec = CorpusSpec { seed: 7, ops: 10, max_batch_ops: 1 };
        let a = generated_workload(&spec).unwrap();
        let b = generated_workload(&spec).unwrap();
        assert_eq!(a.trace.write_count(), b.trace.write_count());
        assert_eq!(a.expectations.len(), b.expectations.len());
        for (ea, eb) in a.expectations.iter().zip(&b.expectations) {
            assert_eq!(ea.file, eb.file);
            assert_eq!(ea.content, eb.content);
            assert_eq!(ea.durable_after, eb.durable_after);
        }
        assert!(!a.expectations.is_empty(), "corpus left no live files");
    }

    #[test]
    fn generated_workload_expectations_are_final_live_set() {
        let spec = CorpusSpec { seed: 42, ops: 14, max_batch_ops: 3 };
        let w = generated_workload(&spec).unwrap();
        // every expectation's durable point lies inside the trace
        let total = w.trace.write_count();
        for e in &w.expectations {
            assert!(e.durable_after <= total, "{} > {}", e.durable_after, total);
            assert!(e.content.len() >= 120);
        }
        // names are unique
        let mut names: Vec<_> = w.expectations.iter().map(|e| e.file.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), w.expectations.len());
    }

    #[test]
    fn generated_corpus_varies_by_seed() {
        let corpus = generated_corpus(1, 3, 8, 1).unwrap();
        assert_eq!(corpus.len(), 3);
        let counts: Vec<_> = corpus.iter().map(|w| w.trace.write_count()).collect();
        assert!(
            counts.windows(2).any(|p| p[0] != p[1]),
            "all corpus entries traced identically: {counts:?}"
        );
    }
}
