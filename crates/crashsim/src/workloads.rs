//! Canonical workloads whose write streams the explorer crash-tests.
//!
//! Each builder runs one ecosystem operation over a [`RecordingDevice`]
//! and packages the pre-image, the trace, the durability expectations
//! and the backup-superblock candidates into a [`Workload`].

use blockdev::{MemDevice, RecordingDevice};
use contools::standard_image;
use e2fstools::{backup_superblock_candidates, E4defrag, Mke2fs, Resize2fs, ToolError};
use ext4sim::{Ext4Fs, MountOptions};

use crate::IoTrace;

/// Data the workload made durable: once `durable_after` writes are
/// guaranteed on disk (a flush barrier covered them), `file` must
/// survive any crash with exactly `content`.
#[derive(Debug, Clone)]
pub struct DurableExpectation {
    /// File name in the root directory.
    pub file: String,
    /// Expected contents.
    pub content: Vec<u8>,
    /// Trace write count at the moment the data was flushed.
    pub durable_after: usize,
}

/// A recorded workload, ready for crash-point exploration.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Name used in the report.
    pub name: String,
    /// Device contents before the traced operation.
    pub pre: MemDevice,
    /// The operation's write/flush stream.
    pub trace: IoTrace,
    /// File-system block size (for `e2fsck -B`).
    pub block_size: u32,
    /// Durability contract to judge data loss against.
    pub expectations: Vec<DurableExpectation>,
    /// Blocks to try with `e2fsck -b` when the primary superblock is
    /// unusable.
    pub backup_superblocks: Vec<u64>,
}

/// Backup-superblock candidates of the file system on `dev`, or none
/// when the image is not (yet) openable.
fn candidates_from(dev: &MemDevice) -> Vec<u64> {
    Ext4Fs::open_for_maintenance(dev.clone())
        .map(|fs| backup_superblock_candidates(fs.layout()))
        .unwrap_or_default()
}

/// `mke2fs -b 1024 /dev/crash 12288` on a blank device. Early crash
/// points leave no recognisable file system at all — format is the one
/// workload where `Unrecoverable` outcomes are the expected baseline.
pub fn format_workload() -> Result<Workload, ToolError> {
    let blank = MemDevice::new(1024, 16384);
    let m = Mke2fs::from_args(&["-b", "1024", "/dev/crash", "12288"])?;
    let (rec, _) = m.run(RecordingDevice::new(blank.clone()))?;
    let (post, trace) = rec.into_parts();
    Ok(Workload {
        name: "mke2fs-format".to_string(),
        pre: blank,
        trace,
        block_size: 1024,
        expectations: Vec::new(),
        backup_superblocks: candidates_from(&post),
    })
}

/// The paper's Figure 1 case: grow a `sparse_super2` file system with
/// `resize2fs`. Even the *complete* trace is a corrupting "crash point"
/// here — the resize itself miscomputes the last group's free blocks.
pub fn figure1_resize_workload() -> Result<Workload, ToolError> {
    // the same image ConHandleCk injects its Figure 1 violation into —
    // crash exploration extends that completed-operation check to every
    // mid-operation power-failure point
    let pre = standard_image("sparse_super2,^sparse_super,^resize_inode");
    let (rec, _) = Resize2fs::to_size(16384).run(RecordingDevice::new(pre.clone()))?;
    let (post, trace) = rec.into_parts();
    // the resize may relocate the sparse_super2 backups: candidates from
    // both the old and the new geometry are valid recovery points
    let mut backups = candidates_from(&pre);
    for b in candidates_from(&post) {
        if !backups.contains(&b) {
            backups.push(b);
        }
    }
    Ok(Workload {
        name: "figure1-sparse-super2-resize".to_string(),
        pre,
        trace,
        block_size: 1024,
        expectations: Vec::new(),
        backup_superblocks: backups,
    })
}

/// Mount–write–unmount cycles on a journalled file system, one cycle
/// per `(name, content)` pair. Each clean unmount commits through the
/// journal and ends in a flush, so every earlier cycle's file is part
/// of the durability contract from that point on.
pub fn journaled_write_workload(files: &[(String, Vec<u8>)]) -> Result<Workload, ToolError> {
    let m = Mke2fs::from_args(&["-b", "1024", "/dev/crash", "4096"])?;
    let (pre, _) = m.run(MemDevice::new(1024, 4096))?;
    let mut rec = RecordingDevice::new(pre.clone());
    let mut expectations = Vec::new();
    for (name, content) in files {
        let mut fs = Ext4Fs::mount(rec, &MountOptions::default())?;
        let root = fs.root_inode();
        let ino = fs.create_file(root, name)?;
        if !content.is_empty() {
            fs.write_file(ino, 0, content)?;
        }
        rec = fs.unmount()?;
        expectations.push(DurableExpectation {
            file: name.clone(),
            content: content.clone(),
            durable_after: rec.trace().write_count(),
        });
    }
    let (_, trace) = rec.into_parts();
    Ok(Workload {
        name: "journaled-file-writes".to_string(),
        pre,
        trace,
        block_size: 1024,
        // single block group: no backup superblocks exist
        expectations,
        backup_superblocks: Vec::new(),
    })
}

/// `e4defrag` over two deliberately interleaved files. Both files were
/// durable before the defragmenter started, so they must survive every
/// crash point with their contents intact (`durable_after: 0`).
pub fn defrag_workload() -> Result<Workload, ToolError> {
    let dev = standard_image("");
    let mut fs = Ext4Fs::mount(dev, &MountOptions::default())?;
    let root = fs.root_inode();
    let a = fs.create_file(root, "frag_a")?;
    let b = fs.create_file(root, "frag_b")?;
    // alternate extends so the two files' blocks interleave on disk
    for i in 0..8u64 {
        fs.write_file(a, i * 1024, &[0xAA; 1024])?;
        fs.write_file(b, i * 1024, &[0xBB; 1024])?;
    }
    let pre = fs.unmount()?;

    let rec = RecordingDevice::new(pre.clone());
    let mut fs = Ext4Fs::mount(rec, &MountOptions::default())?;
    E4defrag::new().run(&mut fs)?;
    let rec = fs.unmount()?;
    let (_, trace) = rec.into_parts();
    let expectations = vec![
        DurableExpectation { file: "frag_a".to_string(), content: vec![0xAA; 8 * 1024], durable_after: 0 },
        DurableExpectation { file: "frag_b".to_string(), content: vec![0xBB; 8 * 1024], durable_after: 0 },
    ];
    let backup_superblocks = candidates_from(&pre);
    Ok(Workload {
        name: "e4defrag-online".to_string(),
        pre,
        trace,
        block_size: 1024,
        expectations,
        backup_superblocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journaled_workload_records_expectations_in_order() {
        let files = vec![
            ("alpha".to_string(), vec![1u8; 700]),
            ("beta".to_string(), vec![2u8; 300]),
        ];
        let w = journaled_write_workload(&files).unwrap();
        assert_eq!(w.expectations.len(), 2);
        assert!(w.expectations[0].durable_after < w.expectations[1].durable_after);
        assert_eq!(w.expectations[1].durable_after, w.trace.write_count());
        // each unmount commits through the journal and flushes
        assert!(w.trace.flush_count() >= 2, "flushes: {}", w.trace.flush_count());
    }

    #[test]
    fn format_workload_traces_the_whole_format() {
        let w = format_workload().unwrap();
        assert!(w.trace.write_count() > 10);
        assert_eq!(w.backup_superblocks, vec![8193]);
    }

    #[test]
    fn figure1_workload_knows_its_backups() {
        let w = figure1_resize_workload().unwrap();
        assert!(w.backup_superblocks.contains(&8193), "{:?}", w.backup_superblocks);
        assert!(w.trace.write_count() > 0);
    }

    #[test]
    fn defrag_workload_guards_preexisting_data() {
        let w = defrag_workload().unwrap();
        assert!(w.expectations.iter().all(|e| e.durable_after == 0));
    }
}
