//! faultsim — exhaustive single-fault I/O injection campaigns with
//! error-policy conformance checking.
//!
//! crashsim answers "what survives a crash at write k?"; faultsim
//! answers the complementary robustness question the paper's
//! configuration-dependency lens raises: **does the configured error
//! policy actually govern what happens when an I/O fails?** Real ext4
//! exposes `errors={continue,remount-ro,panic}` and its handling code
//! depends on it — ConHandleCk-style bugs are precisely the cases where
//! the configured reaction and the implemented reaction diverge.
//!
//! The pipeline:
//!
//! 1. [`FaultWorkload::setup`] builds a pristine image with durable
//!    files; [`probe_universe`] runs the workload fault-free over a
//!    [`blockdev::RecordingDevice`] to learn every I/O point.
//! 2. [`enumerate_schedules`] turns the I/O universe into single-fault
//!    schedules — failed/torn writes, device-gone, failed reads,
//!    failed flushes, silent read corruption — under sampling caps.
//! 3. [`run_campaign`] re-executes the workload once per schedule under
//!    a [`blockdev::FaultyDevice`] (in parallel via
//!    [`conpool::parallel_map`]), observes the runtime reaction, then
//!    pushes the post-fault image through forced fsck + remount +
//!    durable-data audit, memoised by image digest in a
//!    [`VerdictCache`].
//! 4. Every schedule gets a [`Verdict`]; [`conformance_sweep`] reduces
//!    the full 3 × 2 × 2 configuration grid to a [`ConformanceRow`]
//!    table answering "was the policy honoured?" per configuration.
//!
//! [`CampaignReport::canonical_signature`] is byte-identical across
//! worker-thread counts; only cache hit/miss *statistics* depend on
//! scheduling and live outside the signature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod report;
mod workload;

pub use campaign::{
    conformance_row, conformance_sweep, enumerate_schedules, probe_universe, run_campaign,
    sample_points, CampaignOptions, IoUniverse, RecoveryOutcome, VerdictCache,
};
pub use report::{
    format_conformance_table, CampaignReport, CampaignStats, ConformanceRow, FaultOutcome,
    FaultSpec, Verdict, VerdictCounts,
};
pub use workload::{CampaignConfig, FaultWorkload};
