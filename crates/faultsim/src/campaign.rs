//! The campaign engine: trace → enumerate → re-execute → classify.
//!
//! A campaign (one [`FaultWorkload`] under one [`CampaignConfig`]) runs
//! in four phases:
//!
//! 1. **Probe.** The workload executes once, fault-free, over a
//!    [`blockdev::RecordingDevice`] wrapped in a no-fault
//!    [`blockdev::FaultyDevice`]. That yields the I/O-point universe:
//!    write, read and flush counts plus the set of blocks the workload
//!    touches.
//! 2. **Enumerate.** Every I/O point becomes up to one fault of each
//!    class — `FailWrite`/`TornWrite`/`DeviceGone` per write point,
//!    `FailRead` per read point, `FailFlush` per flush point,
//!    `CorruptRead` per written block — subject to per-class sampling
//!    caps that keep the endpoints (mirroring crashsim's
//!    `prefix_points`).
//! 3. **Re-execute.** Each schedule restarts the workload from the
//!    pristine base image under a [`blockdev::FaultyDevice`], inside a
//!    `catch_unwind` harness, and records how the file system reacted
//!    (typed error class, degraded/halted state, contract probes on a
//!    degraded mount).
//! 4. **Classify.** The post-fault medium is digested
//!    ([`blockdev::ImageDigest`]); recovery — forced `e2fsck -y`, a
//!    read-only remount, a durable-data audit — is memoised by that
//!    digest in a [`VerdictCache`] shared across the whole campaign (and
//!    across configurations in a conformance sweep). The runtime
//!    observation and the recovery outcome combine into a [`Verdict`].
//!
//! Schedules classify concurrently via [`conpool::parallel_map`]; the
//! outcome list (and therefore [`CampaignReport::canonical_signature`])
//! is byte-identical across thread counts because results merge in
//! enumeration order and only cache *hit counts* — reported separately
//! in [`CampaignStats`] — depend on scheduling.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use blockdev::{
    digest_device, BlockDevice, FaultPlan, FaultyDevice, ImageDigest, IoEvent, MemDevice,
    RecordingDevice, SharedDevice, VerdictStore,
};
use e2fstools::{E2fsck, FsckMode};
use ext4sim::{errors_policy, Ext4Fs, FsError, InodeNo, MountOptions, ROOT_INODE};

use crate::report::{
    CampaignReport, CampaignStats, ConformanceRow, FaultOutcome, FaultSpec, Verdict,
};
use crate::workload::{CampaignConfig, FaultWorkload};

/// Exploration knobs.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker threads for schedule classification (see
    /// [`conpool::effective_threads`]).
    pub threads: usize,
    /// Cap on sampled write points *per write-fault class*.
    pub write_points: usize,
    /// Cap on sampled read points.
    pub read_points: usize,
    /// Cap on sampled flush points.
    pub flush_points: usize,
    /// Cap on sampled corrupt-read target blocks.
    pub corrupt_points: usize,
    /// Memoise recovery classification by post-fault image digest.
    pub verdict_cache: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            threads: 1,
            write_points: 24,
            read_points: 16,
            flush_points: 8,
            corrupt_points: 8,
            verdict_cache: true,
        }
    }
}

impl CampaignOptions {
    /// A tiny configuration for smoke tests.
    pub fn smoke() -> Self {
        CampaignOptions {
            threads: 2,
            write_points: 6,
            read_points: 4,
            flush_points: 2,
            corrupt_points: 2,
            verdict_cache: true,
        }
    }
}

/// What one fault-free probe pass observed.
#[derive(Debug, Clone)]
pub struct IoUniverse {
    /// Total writes (mount through unmount).
    pub writes: u64,
    /// Total reads.
    pub reads: u64,
    /// Total flushes.
    pub flushes: u64,
    /// Distinct blocks written, ascending.
    pub written_blocks: Vec<u64>,
    /// Device block size.
    pub block_size: u32,
}

/// How the file system behaved during one faulted execution.
#[derive(Debug, Clone, Default)]
struct RunObs {
    mount_failed: bool,
    /// Short class of the first error the run surfaced (None = no error).
    err: Option<&'static str>,
    /// The typed `errors=panic` reaction was observed.
    policy_panicked: bool,
    /// The mount degraded to read-only (`errors=remount-ro`).
    degraded: bool,
    /// Contract probe: a write on the degraded mount was rejected with
    /// the dedicated typed error.
    degraded_write_rejected: Option<bool>,
    /// Contract probe: every durable file was still readable, with the
    /// right bytes, on the degraded mount.
    degraded_read_served: Option<bool>,
}

/// Recovery classification of one post-fault image (the memoised part).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RecoveryOutcome {
    /// A Rust panic escaped e2fsck or the remount. Always a bug.
    pub panicked: bool,
    /// The repaired image mounted read-only.
    pub mountable: bool,
    /// Every durable file readable with the expected content.
    pub data_ok: bool,
    /// Final e2fsck exit code (-1 when fsck itself errored).
    pub fsck_exit: i32,
}

/// Digest-keyed memo of [`RecoveryOutcome`]s, shared across the threads
/// of a campaign and across the campaigns of a conformance sweep (all
/// standard workloads share one durable-file contract, so a repeated
/// post-fault image always classifies identically).
///
/// A thin wrapper over [`blockdev::VerdictStore`] — the same
/// content-addressed store crashsim uses — so a cache can optionally
/// persist verdicts across processes via [`VerdictCache::persistent`].
#[derive(Debug)]
pub struct VerdictCache {
    store: VerdictStore<RecoveryOutcome>,
}

impl VerdictCache {
    /// An empty in-memory cache; `enabled = false` makes every lookup a
    /// miss.
    pub fn new(enabled: bool) -> Self {
        VerdictCache { store: VerdictStore::in_memory(enabled) }
    }

    /// A cache backed by the on-disk verdict store at `path`: verdicts
    /// recorded by earlier processes are preloaded, and fresh ones are
    /// appended. A corrupt or unreadable store falls back to an empty
    /// cache (see [`VerdictStore::open`]).
    pub fn persistent(path: impl AsRef<std::path::Path>) -> Self {
        VerdictCache { store: VerdictStore::open(path) }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> usize {
        self.store.hits()
    }

    /// Cache misses (computed classifications) so far.
    pub fn misses(&self) -> usize {
        self.store.misses()
    }

    /// Verdicts preloaded from disk (0 for in-memory caches).
    pub fn preloaded(&self) -> usize {
        self.store.preloaded()
    }

    fn recovery_for(
        &self,
        digest: ImageDigest,
        compute: impl FnOnce() -> RecoveryOutcome,
    ) -> RecoveryOutcome {
        // faultsim keys by the post-fault image alone: every standard
        // workload shares one durable-file contract, so the context
        // half of the store key is constant.
        self.store.get_or_compute((digest, 0), compute)
    }
}

/// Evenly samples up to `cap` of the points `0..n`, always keeping the
/// first and last (the same endpoint-preserving rule as crashsim's
/// `prefix_points`).
pub fn sample_points(n: u64, cap: usize) -> Vec<u64> {
    if n == 0 || cap == 0 {
        return Vec::new();
    }
    if n <= cap as u64 {
        return (0..n).collect();
    }
    if cap == 1 {
        return vec![0];
    }
    let mut pts: Vec<u64> =
        (0..cap as u64).map(|i| i * (n - 1) / (cap as u64 - 1)).collect();
    pts.dedup();
    pts
}

/// Runs the workload once, fault-free, and returns its I/O universe.
///
/// # Errors
///
/// Propagates any error of the fault-free pass — the workload must run
/// clean before fault schedules mean anything.
pub fn probe_universe(workload: &FaultWorkload, base: &MemDevice) -> Result<IoUniverse, FsError> {
    let recorder = RecordingDevice::new(base.clone());
    let faulty = FaultyDevice::new(recorder, FaultPlan::new());
    let cfg = &workload.config;
    let mut fs = Ext4Fs::mount_with_policy(faulty, &cfg.mount_options(), cfg.cache_policy())?;
    workload.run_op(&mut fs)?;
    let faulty = fs.unmount()?;
    let (writes, reads, flushes) = (faulty.writes(), faulty.reads(), faulty.flushes());
    let (dev, trace) = faulty.into_inner().into_parts();
    let written_blocks: BTreeSet<u64> = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            IoEvent::Write { block, .. } => Some(*block),
            IoEvent::Flush => None,
        })
        .collect();
    Ok(IoUniverse {
        writes,
        reads,
        flushes,
        written_blocks: written_blocks.into_iter().collect(),
        block_size: dev.block_size(),
    })
}

/// Enumerates the single-fault schedules for `universe` under the
/// sampling caps of `opts`, in a fixed deterministic order.
pub fn enumerate_schedules(universe: &IoUniverse, opts: &CampaignOptions) -> Vec<FaultSpec> {
    let mut specs = Vec::new();
    for i in sample_points(universe.writes, opts.write_points) {
        specs.push(FaultSpec::FailWrite(i));
    }
    let torn = (universe.block_size / 2) as usize;
    for i in sample_points(universe.writes, opts.write_points) {
        specs.push(FaultSpec::TornWrite { nth: i, bytes: torn });
    }
    for i in sample_points(universe.writes, opts.write_points) {
        specs.push(FaultSpec::DeviceGone(i));
    }
    for i in sample_points(universe.reads, opts.read_points) {
        specs.push(FaultSpec::FailRead(i));
    }
    for i in sample_points(universe.flushes, opts.flush_points) {
        specs.push(FaultSpec::FailFlush(i));
    }
    let blocks = &universe.written_blocks;
    for i in sample_points(blocks.len() as u64, opts.corrupt_points) {
        specs.push(FaultSpec::CorruptRead { block: blocks[i as usize], offset: 0, value: 0xA5 });
    }
    specs
}

fn err_class(e: &FsError) -> &'static str {
    match e {
        FsError::Device(_) => "device-error",
        FsError::PolicyPanic(_) => "policy-panic",
        FsError::DegradedReadOnly => "degraded-ro",
        FsError::ReadOnlyFs => "read-only",
        FsError::MountRejected { .. } => "mount-rejected",
        FsError::Corrupt(_) => "corrupt",
        FsError::NoSpace => "no-space",
        FsError::BadMagic { .. } => "bad-magic",
        _ => "fs-error",
    }
}

/// Executes the workload under `plan` and observes the reaction. Runs
/// inside the caller's `catch_unwind` harness.
fn observe_run(
    workload: &FaultWorkload,
    medium: SharedDevice<MemDevice>,
    plan: FaultPlan,
) -> RunObs {
    let cfg = &workload.config;
    let faulty = FaultyDevice::new(medium, plan);
    let mut obs = RunObs::default();
    let mut fs = match Ext4Fs::mount_with_policy(faulty, &cfg.mount_options(), cfg.cache_policy())
    {
        Ok(fs) => fs,
        Err(e) => {
            obs.mount_failed = true;
            obs.err = Some(err_class(&e));
            return obs;
        }
    };
    if let Err(e) = workload.run_op(&mut fs) {
        obs.err = Some(err_class(&e));
    }
    obs.policy_panicked = fs.has_panicked();
    obs.degraded = fs.is_degraded();
    if obs.degraded {
        // contract probes: a degraded mount must reject writes with the
        // dedicated typed error and keep serving durable reads
        obs.degraded_write_rejected = Some(matches!(
            fs.create_file(ROOT_INODE, "probe_w"),
            Err(FsError::DegradedReadOnly)
        ));
        let served = workload.durable_files.iter().all(|(name, content)| {
            match fs.lookup(ROOT_INODE, name) {
                Ok(Some(entry)) => fs
                    .read_file_to_vec(InodeNo(entry.inode))
                    .map(|data| &data == content)
                    .unwrap_or(false),
                _ => false,
            }
        });
        obs.degraded_read_served = Some(served);
    }
    if let Err(e) = fs.unmount() {
        if obs.err.is_none() {
            obs.err = Some(err_class(&e));
        }
    }
    obs
}

/// Byte-copies the current medium contents into a standalone image.
fn snapshot(medium: &SharedDevice<MemDevice>) -> MemDevice {
    medium.with_read(|dev| {
        let bs = dev.block_size();
        let n = dev.num_blocks();
        let mut copy = MemDevice::new(bs, n);
        let mut buf = vec![0u8; bs as usize];
        for block in 0..n {
            dev.read_block(block, &mut buf).expect("in-range read of in-memory image");
            copy.write_block(block, &buf).expect("in-range write of in-memory image");
        }
        copy
    })
}

/// Pushes a post-fault image through the full recovery stack: forced
/// `e2fsck -y` (twice if the first pass left errors), a read-only
/// remount, and a durable-data audit.
fn classify_recovery(image: MemDevice, durable: &[(String, Vec<u8>)]) -> RecoveryOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut exit;
        let dev = match E2fsck::with_mode(FsckMode::Fix).forced().run(image) {
            Ok((dev, res)) => {
                exit = res.exit_code;
                if exit >= 4 {
                    // a second forced pass, as the real recovery playbook
                    // (and crashsim) do when errors were left uncorrected
                    match E2fsck::with_mode(FsckMode::Fix).forced().run(dev) {
                        Ok((dev, res)) => {
                            exit = res.exit_code;
                            dev
                        }
                        Err(_) => {
                            return RecoveryOutcome {
                                panicked: false,
                                mountable: false,
                                data_ok: false,
                                fsck_exit: -1,
                            }
                        }
                    }
                } else {
                    dev
                }
            }
            Err(_) => {
                return RecoveryOutcome {
                    panicked: false,
                    mountable: false,
                    data_ok: false,
                    fsck_exit: -1,
                }
            }
        };
        let fs = match Ext4Fs::mount(dev, &MountOptions::read_only()) {
            Ok(fs) => fs,
            Err(_) => {
                return RecoveryOutcome {
                    panicked: false,
                    mountable: false,
                    data_ok: false,
                    fsck_exit: exit,
                }
            }
        };
        let data_ok = durable.iter().all(|(name, content)| match fs.lookup(ROOT_INODE, name) {
            Ok(Some(entry)) => fs
                .read_file_to_vec(InodeNo(entry.inode))
                .map(|data| &data == content)
                .unwrap_or(false),
            _ => false,
        });
        RecoveryOutcome { panicked: false, mountable: true, data_ok, fsck_exit: exit }
    }));
    result.unwrap_or(RecoveryOutcome {
        panicked: true,
        mountable: false,
        data_ok: false,
        fsck_exit: -1,
    })
}

/// Combines the runtime observation and the recovery outcome into a
/// verdict plus a deterministic evidence string.
fn combine(
    spec: &FaultSpec,
    obs: &RunObs,
    rec: &RecoveryOutcome,
    policy: u16,
) -> (Verdict, String) {
    let detail = format!(
        "mount={} op={} degraded={} policy-panic={} fsck={} recovered={}",
        if obs.mount_failed { "err" } else { "ok" },
        obs.err.unwrap_or("ok"),
        if obs.degraded { "y" } else { "n" },
        if obs.policy_panicked { "y" } else { "n" },
        rec.fsck_exit,
        if !rec.mountable {
            "unmountable"
        } else if !rec.data_ok {
            "data-missing"
        } else {
            "ok"
        },
    );
    if rec.panicked {
        return (Verdict::Panic, format!("{detail} [recovery panicked]"));
    }
    let saw_policy_panic = obs.policy_panicked || obs.err == Some("policy-panic");
    if saw_policy_panic && policy != errors_policy::PANIC {
        return (Verdict::PolicyViolation, format!("{detail} [panic policy fired unconfigured]"));
    }
    if obs.degraded && policy != errors_policy::REMOUNT_RO {
        return (Verdict::PolicyViolation, format!("{detail} [degraded unconfigured]"));
    }
    if obs.degraded {
        if obs.degraded_write_rejected == Some(false) {
            return (
                Verdict::PolicyViolation,
                format!("{detail} [degraded mount accepted a write]"),
            );
        }
        // single-shot write faults exhaust before the read probe, so a
        // failed probe there is the fs's fault, not the device's
        if spec.is_single_shot_write() && obs.degraded_read_served == Some(false) {
            return (
                Verdict::PolicyViolation,
                format!("{detail} [degraded mount lost durable reads]"),
            );
        }
    }
    if !rec.mountable || !rec.data_ok {
        return (Verdict::DataLoss, detail);
    }
    if obs.degraded {
        return (Verdict::DegradedReadOnly, detail);
    }
    (Verdict::CleanError, detail)
}

fn run_one(
    workload: &FaultWorkload,
    base: &MemDevice,
    spec: &FaultSpec,
    cache: &VerdictCache,
) -> FaultOutcome {
    let medium = SharedDevice::new(base.clone());
    let plan = FaultPlan::new().with(spec.to_fault());
    let run = catch_unwind(AssertUnwindSafe(|| observe_run(workload, medium.clone(), plan)));
    let obs = match run {
        Ok(obs) => obs,
        Err(_) => {
            return FaultOutcome {
                fault: spec.clone(),
                verdict: Verdict::Panic,
                detail: "rust panic escaped the workload".to_string(),
            }
        }
    };
    // the FaultyDevice handle died with the run; the medium lives on
    let digest = medium
        .with_read(digest_device)
        .expect("in-memory digest cannot fail");
    let rec = cache
        .recovery_for(digest, || classify_recovery(snapshot(&medium), &workload.durable_files));
    let (verdict, detail) = combine(spec, &obs, &rec, workload.config.errors);
    FaultOutcome { fault: spec.clone(), verdict, detail }
}

/// Runs a full campaign: probe, enumerate, re-execute every schedule
/// (in parallel), classify, and aggregate.
///
/// # Errors
///
/// Propagates failures of the fault-free probe pass; faulted executions
/// never error out of the campaign — every schedule ends in a verdict.
pub fn run_campaign(
    workload: &FaultWorkload,
    opts: &CampaignOptions,
    cache: &VerdictCache,
) -> Result<CampaignReport, FsError> {
    let base = workload.setup()?;
    let universe = probe_universe(workload, &base)?;
    let specs = enumerate_schedules(&universe, opts);
    let hits_before = cache.hits();
    let misses_before = cache.misses();
    let outcomes = conpool::parallel_map(specs, opts.threads, |_, spec| {
        run_one(workload, &base, &spec, cache)
    });
    let stats = CampaignStats {
        trace_writes: universe.writes as usize,
        trace_reads: universe.reads as usize,
        trace_flushes: universe.flushes as usize,
        faults_explored: outcomes.len(),
        digest_cache_hits: cache.hits() - hits_before,
        digest_cache_misses: cache.misses() - misses_before,
    };
    Ok(CampaignReport {
        workload: workload.name.clone(),
        config: workload.config.clone(),
        outcomes,
        stats,
    })
}

/// Runs the standard workload over the full configuration grid (3
/// `errors=` policies × journal on/off × write-back/write-through) and
/// reduces each campaign to a conformance row. One [`VerdictCache`] is
/// shared across the sweep.
///
/// # Errors
///
/// Propagates a probe-pass failure of any configuration.
pub fn conformance_sweep(
    opts: &CampaignOptions,
) -> Result<(Vec<ConformanceRow>, Vec<CampaignReport>), FsError> {
    let cache = VerdictCache::new(opts.verdict_cache);
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for config in CampaignConfig::full_grid() {
        let workload = FaultWorkload::standard(config.clone());
        let report = run_campaign(&workload, opts, &cache)?;
        rows.push(conformance_row(&report));
        reports.push(report);
    }
    Ok((rows, reports))
}

/// Reduces one campaign report to its conformance-table row.
pub fn conformance_row(report: &CampaignReport) -> ConformanceRow {
    let counts = report.counts();
    let policy_fired = report
        .outcomes
        .iter()
        .filter(|o| o.detail.contains("degraded=y") || o.detail.contains("policy-panic=y"))
        .count();
    ConformanceRow {
        errors: report.config.errors_str().to_string(),
        journal: report.config.journal,
        write_back: report.config.write_back,
        faults: report.outcomes.len(),
        counts,
        policy_fired,
        honoured: report.policy_honoured(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistent_cache_round_trips_recovery_outcomes() {
        let path = std::env::temp_dir()
            .join(format!("faultsim_vcache_{}.vstore", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let digest = ImageDigest { a: 11, b: 22 };
        let outcome =
            RecoveryOutcome { panicked: false, mountable: true, data_ok: true, fsck_exit: 1 };
        {
            let cache = VerdictCache::persistent(&path);
            assert_eq!(cache.preloaded(), 0);
            let got = cache.recovery_for(digest, || outcome);
            assert_eq!(got, outcome);
            assert_eq!(cache.misses(), 1);
        }
        let cache = VerdictCache::persistent(&path);
        assert_eq!(cache.preloaded(), 1);
        let got = cache.recovery_for(digest, || panic!("must hit the preloaded verdict"));
        assert_eq!(got, outcome);
        assert_eq!(cache.hits(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sample_points_keeps_endpoints_and_cap() {
        assert_eq!(sample_points(0, 5), Vec::<u64>::new());
        assert_eq!(sample_points(5, 0), Vec::<u64>::new());
        assert_eq!(sample_points(3, 5), vec![0, 1, 2]);
        let s = sample_points(100, 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], 0);
        assert_eq!(*s.last().unwrap(), 99);
        assert_eq!(sample_points(100, 1), vec![0]);
    }

    #[test]
    fn probe_finds_a_nonempty_universe() {
        let w = FaultWorkload::standard(CampaignConfig::default());
        let base = w.setup().unwrap();
        let u = probe_universe(&w, &base).unwrap();
        assert!(u.writes > 10, "writes={}", u.writes);
        assert!(u.reads > 10, "reads={}", u.reads);
        assert!(u.flushes >= 1, "flushes={}", u.flushes);
        assert!(!u.written_blocks.is_empty());
    }

    #[test]
    fn enumerate_respects_caps_and_order() {
        let u = IoUniverse {
            writes: 100,
            reads: 50,
            flushes: 3,
            written_blocks: vec![1, 2, 3, 4, 5],
            block_size: 1024,
        };
        let opts = CampaignOptions {
            write_points: 4,
            read_points: 2,
            flush_points: 8,
            corrupt_points: 2,
            ..CampaignOptions::default()
        };
        let specs = enumerate_schedules(&u, &opts);
        // 4 FailWrite + 4 TornWrite + 4 DeviceGone + 2 FailRead
        // + 3 FailFlush (uncapped: only 3 exist) + 2 CorruptRead
        assert_eq!(specs.len(), 4 + 4 + 4 + 2 + 3 + 2);
        assert!(matches!(specs[0], FaultSpec::FailWrite(0)));
        assert!(matches!(specs.last().unwrap(), FaultSpec::CorruptRead { .. }));
    }

    #[test]
    fn campaign_classifies_every_schedule_without_panics() {
        let w = FaultWorkload::standard(CampaignConfig::default());
        let cache = VerdictCache::new(true);
        let report = run_campaign(&w, &CampaignOptions::smoke(), &cache).unwrap();
        assert!(report.stats.faults_explored > 0);
        assert_eq!(report.outcomes.len(), report.stats.faults_explored);
        let counts = report.counts();
        assert_eq!(counts.panic, 0, "{:?}", report);
        assert_eq!(counts.policy_violation, 0, "{:?}", report);
    }

    #[test]
    fn remount_ro_config_degrades_somewhere() {
        let config = CampaignConfig {
            errors: errors_policy::REMOUNT_RO,
            ..CampaignConfig::default()
        };
        let w = FaultWorkload::standard(config);
        let cache = VerdictCache::new(true);
        let report = run_campaign(&w, &CampaignOptions::smoke(), &cache).unwrap();
        let counts = report.counts();
        assert_eq!(counts.policy_violation, 0, "{:?}", report);
        assert_eq!(counts.panic, 0);
        assert!(
            counts.degraded_read_only > 0,
            "no schedule degraded the mount: {:?}",
            report.counts()
        );
    }

    #[test]
    fn reports_are_identical_across_thread_counts() {
        let w = FaultWorkload::standard(CampaignConfig::default());
        let mut opts = CampaignOptions::smoke();
        opts.threads = 1;
        let r1 = run_campaign(&w, &opts, &VerdictCache::new(true)).unwrap();
        opts.threads = 4;
        let r4 = run_campaign(&w, &opts, &VerdictCache::new(true)).unwrap();
        assert_eq!(r1.canonical_signature(), r4.canonical_signature());
    }

    #[test]
    fn verdict_cache_hits_on_repeated_images() {
        let w = FaultWorkload::standard(CampaignConfig::default());
        let cache = VerdictCache::new(true);
        let _ = run_campaign(&w, &CampaignOptions::smoke(), &cache).unwrap();
        // running the identical campaign again must answer everything
        // from the digest cache
        let before = cache.misses();
        let _ = run_campaign(&w, &CampaignOptions::smoke(), &cache).unwrap();
        assert_eq!(cache.misses(), before, "second identical run re-classified images");
        assert!(cache.hits() > 0);
    }
}
