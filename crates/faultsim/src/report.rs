//! Verdicts, per-campaign reports and the policy-conformance table.

use serde::{Deserialize, Serialize};

use crate::workload::CampaignConfig;

/// A single fault to inject, in a form that serialises and that maps
/// 1:1 onto [`blockdev::InjectedFault`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultSpec {
    /// Fail the n-th write outright.
    FailWrite(u64),
    /// Persist only the first `bytes` bytes of the n-th write.
    TornWrite {
        /// Which write (0-based) to tear.
        nth: u64,
        /// Bytes that reach the medium.
        bytes: usize,
    },
    /// Yank the device at the n-th write; all later I/O fails.
    DeviceGone(u64),
    /// Fail the n-th read.
    FailRead(u64),
    /// Fail the n-th flush (the barrier never happens).
    FailFlush(u64),
    /// Every read of `block` comes back with byte `offset` flipped to
    /// `value` (silent corruption on the read path; the medium itself
    /// stays intact).
    CorruptRead {
        /// Corrupted block.
        block: u64,
        /// Byte offset within the block.
        offset: usize,
        /// Replacement value.
        value: u8,
    },
}

impl FaultSpec {
    /// The injectable form.
    pub fn to_fault(&self) -> blockdev::InjectedFault {
        match *self {
            FaultSpec::FailWrite(n) => blockdev::InjectedFault::FailWrite(n),
            FaultSpec::TornWrite { nth, bytes } => {
                blockdev::InjectedFault::TornWrite { nth, bytes }
            }
            FaultSpec::DeviceGone(n) => blockdev::InjectedFault::DeviceGone(n),
            FaultSpec::FailRead(n) => blockdev::InjectedFault::FailRead(n),
            FaultSpec::FailFlush(n) => blockdev::InjectedFault::FailFlush(n),
            FaultSpec::CorruptRead { block, offset, value } => {
                blockdev::InjectedFault::CorruptRead { block, offset, value }
            }
        }
    }

    /// Short class name for histograms ("fail_write", "torn_write", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            FaultSpec::FailWrite(_) => "fail_write",
            FaultSpec::TornWrite { .. } => "torn_write",
            FaultSpec::DeviceGone(_) => "device_gone",
            FaultSpec::FailRead(_) => "fail_read",
            FaultSpec::FailFlush(_) => "fail_flush",
            FaultSpec::CorruptRead { .. } => "corrupt_read",
        }
    }

    /// True for the single-shot write-stream faults whose effect is
    /// exhausted the moment they fire (so a post-fault probe of the
    /// degraded mount is meaningful).
    pub fn is_single_shot_write(&self) -> bool {
        matches!(
            self,
            FaultSpec::FailWrite(_) | FaultSpec::TornWrite { .. } | FaultSpec::FailFlush(_)
        )
    }
}

/// How one fault-injection run ended, ordered best to worst.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Verdict {
    /// The fault surfaced as a typed error (or was absorbed entirely),
    /// the image recovered cleanly, and no durable data was lost.
    CleanError,
    /// `errors=remount-ro` fired as configured: the mount degraded to
    /// read-only, kept serving reads, rejected writes, and recovery
    /// found all durable data.
    DegradedReadOnly,
    /// Previously-durable data was missing or wrong after the full
    /// recovery stack ran (or the image would no longer mount at all).
    DataLoss,
    /// Observed behaviour contradicts the configured `errors=` policy —
    /// e.g. a policy panic under `errors=continue`, or a degraded mount
    /// that still accepted writes.
    PolicyViolation,
    /// A Rust panic escaped the workload, fsck or remount. Always a bug;
    /// campaigns must report zero of these.
    Panic,
}

impl Verdict {
    /// Stable lowercase name (JSON/table key).
    pub fn name(self) -> &'static str {
        match self {
            Verdict::CleanError => "clean_error",
            Verdict::DegradedReadOnly => "degraded_read_only",
            Verdict::DataLoss => "data_loss",
            Verdict::PolicyViolation => "policy_violation",
            Verdict::Panic => "panic",
        }
    }
}

/// Verdict histogram of one campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictCounts {
    /// [`Verdict::CleanError`] runs.
    pub clean_error: usize,
    /// [`Verdict::DegradedReadOnly`] runs.
    pub degraded_read_only: usize,
    /// [`Verdict::DataLoss`] runs.
    pub data_loss: usize,
    /// [`Verdict::PolicyViolation`] runs.
    pub policy_violation: usize,
    /// [`Verdict::Panic`] runs.
    pub panic: usize,
}

impl VerdictCounts {
    /// Adds one observation.
    pub fn record(&mut self, v: Verdict) {
        match v {
            Verdict::CleanError => self.clean_error += 1,
            Verdict::DegradedReadOnly => self.degraded_read_only += 1,
            Verdict::DataLoss => self.data_loss += 1,
            Verdict::PolicyViolation => self.policy_violation += 1,
            Verdict::Panic => self.panic += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.clean_error
            + self.degraded_read_only
            + self.data_loss
            + self.policy_violation
            + self.panic
    }
}

/// One explored fault schedule and its classification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultOutcome {
    /// The injected fault.
    pub fault: FaultSpec,
    /// Final classification.
    pub verdict: Verdict,
    /// Deterministic evidence string ("op=device-error fsck=1 data=ok"),
    /// identical across thread counts.
    pub detail: String,
}

/// Exploration-side accounting. Cache hit counts depend on scheduling
/// order across worker threads, so stats sit OUTSIDE the canonical
/// report signature — only the outcome set must be thread-invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Write I/O points in the fault-free trace.
    pub trace_writes: usize,
    /// Read I/O points in the fault-free trace.
    pub trace_reads: usize,
    /// Flush I/O points in the fault-free trace.
    pub trace_flushes: usize,
    /// Fault schedules explored (after sampling caps).
    pub faults_explored: usize,
    /// Recovery classifications answered from the digest cache.
    pub digest_cache_hits: usize,
    /// Recovery classifications computed (cache misses).
    pub digest_cache_misses: usize,
}

/// The result of one campaign: a workload × configuration pair driven
/// through every enumerated single-fault schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Workload name.
    pub workload: String,
    /// Configuration the campaign ran under.
    pub config: CampaignConfig,
    /// One entry per explored schedule, in enumeration order.
    pub outcomes: Vec<FaultOutcome>,
    /// Exploration accounting (not part of the canonical signature).
    pub stats: CampaignStats,
}

impl CampaignReport {
    /// Verdict histogram.
    pub fn counts(&self) -> VerdictCounts {
        let mut c = VerdictCounts::default();
        for o in &self.outcomes {
            c.record(o.verdict);
        }
        c
    }

    /// The worst verdict observed ([`Verdict::CleanError`] when empty).
    pub fn worst(&self) -> Verdict {
        self.outcomes.iter().map(|o| o.verdict).max().unwrap_or(Verdict::CleanError)
    }

    /// True when every configured policy reaction was honoured: no
    /// [`Verdict::PolicyViolation`] and no [`Verdict::Panic`].
    pub fn policy_honoured(&self) -> bool {
        let c = self.counts();
        c.policy_violation == 0 && c.panic == 0
    }

    /// Order-independent signature of the outcome *content* (stats
    /// excluded): byte-identical across thread counts and engine
    /// scheduling, mirroring crashsim's cross-engine comparison.
    pub fn canonical_signature(&self) -> Vec<String> {
        let mut sig: Vec<String> = self
            .outcomes
            .iter()
            .map(|o| format!("{:?}|{:?}|{}", o.fault, o.verdict, o.detail))
            .collect();
        sig.sort();
        sig
    }
}

/// One row of the ConHandleCk-style conformance table: does a configured
/// `errors=` policy actually govern runtime behaviour under this journal
/// mode and cache policy?
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConformanceRow {
    /// The `errors=` spelling ("continue", "remount-ro", "panic").
    pub errors: String,
    /// Journal present at mkfs time.
    pub journal: bool,
    /// Write-back metadata cache (vs write-through).
    pub write_back: bool,
    /// Schedules explored.
    pub faults: usize,
    /// Verdict histogram.
    pub counts: VerdictCounts,
    /// Runs in which the policy visibly fired (mount degraded or the
    /// typed policy panic was returned).
    pub policy_fired: usize,
    /// Zero violations and zero panics.
    pub honoured: bool,
}

/// Renders rows as a fixed-width text table.
pub fn format_conformance_table(rows: &[ConformanceRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "errors      journal cache         faults fired clean degr loss viol panic honoured\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<11} {:<7} {:<13} {:>6} {:>5} {:>5} {:>4} {:>4} {:>4} {:>5} {}\n",
            r.errors,
            if r.journal { "yes" } else { "no" },
            if r.write_back { "write-back" } else { "write-through" },
            r.faults,
            r.policy_fired,
            r.counts.clean_error,
            r.counts.degraded_read_only,
            r.counts.data_loss,
            r.counts.policy_violation,
            r.counts.panic,
            if r.honoured { "yes" } else { "NO" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_order_is_best_to_worst() {
        assert!(Verdict::CleanError < Verdict::DegradedReadOnly);
        assert!(Verdict::DegradedReadOnly < Verdict::DataLoss);
        assert!(Verdict::DataLoss < Verdict::PolicyViolation);
        assert!(Verdict::PolicyViolation < Verdict::Panic);
    }

    #[test]
    fn counts_record_and_total() {
        let mut c = VerdictCounts::default();
        c.record(Verdict::CleanError);
        c.record(Verdict::Panic);
        c.record(Verdict::CleanError);
        assert_eq!(c.clean_error, 2);
        assert_eq!(c.panic, 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn fault_spec_round_trips_to_injected_fault() {
        let spec = FaultSpec::TornWrite { nth: 3, bytes: 100 };
        assert!(matches!(
            spec.to_fault(),
            blockdev::InjectedFault::TornWrite { nth: 3, bytes: 100 }
        ));
        assert_eq!(spec.kind(), "torn_write");
        assert!(spec.is_single_shot_write());
        assert!(!FaultSpec::DeviceGone(0).is_single_shot_write());
    }

    #[test]
    fn canonical_signature_is_order_independent() {
        let config = CampaignConfig::default();
        let a = FaultOutcome {
            fault: FaultSpec::FailWrite(0),
            verdict: Verdict::CleanError,
            detail: "x".into(),
        };
        let b = FaultOutcome {
            fault: FaultSpec::FailFlush(1),
            verdict: Verdict::DataLoss,
            detail: "y".into(),
        };
        let r1 = CampaignReport {
            workload: "w".into(),
            config: config.clone(),
            outcomes: vec![a.clone(), b.clone()],
            stats: CampaignStats::default(),
        };
        let r2 = CampaignReport {
            workload: "w".into(),
            config,
            outcomes: vec![b, a],
            stats: CampaignStats { digest_cache_hits: 99, ..CampaignStats::default() },
        };
        assert_eq!(r1.canonical_signature(), r2.canonical_signature());
        assert_eq!(r1.worst(), Verdict::DataLoss);
    }
}
