//! Re-executable workloads and the configuration axes a campaign
//! sweeps.
//!
//! crashsim replays a recorded *trace*; fault injection cannot, because
//! the file system reacts to each fault as it happens (an error return
//! changes every subsequent I/O). A [`FaultWorkload`] is therefore a
//! *live* operation sequence that the campaign re-executes from the same
//! starting image once per fault schedule.

use blockdev::{BlockDevice, MemDevice};
use ext4sim::{
    errors_policy, CachePolicy, CompatFeatures, Ext4Fs, FsError, MkfsParams, MountOptions,
};
use serde::{Deserialize, Serialize};

/// One point of the configuration grid the conformance table sweeps:
/// the runtime `errors=` reaction × journal presence × metadata cache
/// policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// `errors=` policy (an [`ext4sim::errors_policy`] constant).
    pub errors: u16,
    /// Format the image with a journal (`mke2fs -O has_journal`).
    pub journal: bool,
    /// Mount with the write-back metadata cache (vs write-through).
    pub write_back: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { errors: errors_policy::CONTINUE, journal: true, write_back: true }
    }
}

impl CampaignConfig {
    /// The `mount -o errors=` spelling of the policy.
    pub fn errors_str(&self) -> &'static str {
        match self.errors {
            errors_policy::REMOUNT_RO => "remount-ro",
            errors_policy::PANIC => "panic",
            _ => "continue",
        }
    }

    /// Compact label ("errors=panic,journal,write-back").
    pub fn label(&self) -> String {
        format!(
            "errors={},{},{}",
            self.errors_str(),
            if self.journal { "journal" } else { "no-journal" },
            if self.write_back { "write-back" } else { "write-through" },
        )
    }

    /// The full 3 policies × journal on/off × cache policy grid, in a
    /// fixed deterministic order.
    pub fn full_grid() -> Vec<CampaignConfig> {
        let mut grid = Vec::with_capacity(12);
        for errors in [errors_policy::CONTINUE, errors_policy::REMOUNT_RO, errors_policy::PANIC] {
            for journal in [true, false] {
                for write_back in [true, false] {
                    grid.push(CampaignConfig { errors, journal, write_back });
                }
            }
        }
        grid
    }

    /// Mount options matching this configuration.
    pub fn mount_options(&self) -> MountOptions {
        MountOptions { errors: Some(self.errors), ..MountOptions::default() }
    }

    /// The [`CachePolicy`] matching this configuration.
    pub fn cache_policy(&self) -> CachePolicy {
        if self.write_back {
            CachePolicy::WriteBack
        } else {
            CachePolicy::WriteThrough
        }
    }
}

/// A deterministic, re-runnable workload: a starting image with durable
/// content, plus a mutation phase executed under fault injection.
#[derive(Debug, Clone)]
pub struct FaultWorkload {
    /// Display name.
    pub name: String,
    /// Configuration this instance formats and mounts with.
    pub config: CampaignConfig,
    /// Files present (and flushed) before the mutation phase starts;
    /// they must survive every single-fault schedule.
    pub durable_files: Vec<(String, Vec<u8>)>,
}

impl FaultWorkload {
    /// The standard mixed-metadata workload (mkdir, creates, writes,
    /// rename, unlink) under `config`.
    pub fn standard(config: CampaignConfig) -> Self {
        let durable_files = vec![
            ("keep_a".to_string(), vec![0xA1u8; 600]),
            ("keep_b".to_string(), vec![0xB2u8; 1300]),
        ];
        FaultWorkload { name: format!("mixed[{}]", config.label()), config, durable_files }
    }

    /// Builds the starting image: format per the configuration, create
    /// the durable files, unmount cleanly. Faults are never injected
    /// here — this image is the known-good baseline every schedule
    /// restarts from.
    ///
    /// # Errors
    ///
    /// Propagates format/IO errors (none expected on a `MemDevice`).
    pub fn setup(&self) -> Result<MemDevice, FsError> {
        let dev = MemDevice::new(1024, 4096);
        let mut params = MkfsParams { block_size: Some(1024), ..MkfsParams::default() };
        if !self.config.journal {
            params.features.compat.remove(CompatFeatures::HAS_JOURNAL);
        }
        let mut fs = Ext4Fs::format(dev, &params)?;
        let root = fs.root_inode();
        for (name, content) in &self.durable_files {
            let ino = fs.create_file(root, name)?;
            fs.write_file(ino, 0, content)?;
        }
        fs.unmount()
    }

    /// The mutation phase: a fixed mix of namespace and data operations
    /// touching directories, bitmaps, inode tables and file blocks, with
    /// an explicit final sync. Deterministic by construction.
    ///
    /// # Errors
    ///
    /// Propagates the first typed error an injected fault produces.
    pub fn run_op<D: BlockDevice>(&self, fs: &mut Ext4Fs<D>) -> Result<(), FsError> {
        let root = fs.root_inode();
        let work = fs.mkdir(root, "work")?;
        for i in 0u8..3 {
            let f = fs.create_file(work, &format!("f{i}"))?;
            fs.write_file(f, 0, &vec![0x40 + i; 700 + usize::from(i) * 400])?;
        }
        fs.rename(work, "f0", root, "promoted")?;
        fs.unlink(work, "f1")?;
        fs.flush_metadata()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ext4sim::ROOT_INODE;

    #[test]
    fn full_grid_is_twelve_unique_configs() {
        let grid = CampaignConfig::full_grid();
        assert_eq!(grid.len(), 12);
        for (i, a) in grid.iter().enumerate() {
            for b in &grid[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn labels_spell_the_axes() {
        let c = CampaignConfig {
            errors: errors_policy::REMOUNT_RO,
            journal: false,
            write_back: false,
        };
        assert_eq!(c.label(), "errors=remount-ro,no-journal,write-through");
        assert_eq!(c.cache_policy(), CachePolicy::WriteThrough);
        assert_eq!(c.mount_options().errors, Some(errors_policy::REMOUNT_RO));
    }

    #[test]
    fn setup_then_op_runs_fault_free_on_every_config() {
        for config in CampaignConfig::full_grid() {
            let w = FaultWorkload::standard(config.clone());
            let image = w.setup().unwrap();
            let mut fs = Ext4Fs::mount_with_policy(
                image,
                &config.mount_options(),
                config.cache_policy(),
            )
            .unwrap();
            w.run_op(&mut fs).unwrap();
            let image = fs.unmount().unwrap();
            // the durable files and the op's results are all present
            let fs = Ext4Fs::mount(image, &MountOptions::read_only()).unwrap();
            for (name, content) in &w.durable_files {
                let e = fs.lookup(ROOT_INODE, name).unwrap().unwrap();
                assert_eq!(&fs.read_file_to_vec(ext4sim::InodeNo(e.inode)).unwrap(), content);
            }
            assert!(fs.lookup(ROOT_INODE, "promoted").unwrap().is_some());
        }
    }
}
