//! The unified ecosystem layer (the paper's §2 framing made executable).
//!
//! Every utility of the ecosystem implements [`Component`]: one trait
//! carrying the parameter registry ([`Component::param_specs`]), the
//! structured manual page, CLI parsing into the shared
//! [`TypedConfig`] value model, the inverse rendering back to CLI
//! arguments, and execution against a device. Consumers — the three Ck
//! applications in `contools`, the coverage study, and the CLI — talk to
//! components only through this trait, so adding a seventh component is
//! a single-impl job.

use blockdev::MemDevice;

use crate::manual::ManualPage;
use crate::params::{self, ParamSpec};
use crate::typed::{TypedConfig, TypedValue};
use crate::{e2fsck, e4defrag, mke2fs, mount_cmd, resize2fs, tune2fs};
use crate::{E2fsck, E4defrag, Mke2fs, MountCmd, Resize2fs, Tune2fs, ToolError};

/// What a [`Component::run`] produced: the device handed back (possibly
/// rewritten) and a one-line human-readable summary.
#[derive(Debug)]
pub struct RunOutcome {
    /// The device after the run.
    pub device: MemDevice,
    /// One line describing what happened.
    pub summary: String,
}

/// A pluggable member of the configuration ecosystem.
///
/// The trait is object-safe: the CLI and the Ck applications hold
/// `Box<dyn Component>` and dispatch uniformly.
pub trait Component {
    /// The component name as used in dependency endpoints (`"mke2fs"`,
    /// `"mount"`, ...).
    fn name(&self) -> &'static str;

    /// The component's parameter table (its slice of the registry).
    fn param_specs(&self) -> Vec<ParamSpec>;

    /// The structured manual page checked by ConDocCk.
    fn manual_page(&self) -> ManualPage;

    /// Parses CLI arguments into the shared typed value model.
    ///
    /// Validation is the component's own legacy `from_args` surface —
    /// byte-identical errors — followed by the canonical lowering.
    ///
    /// # Errors
    ///
    /// Exactly those of the component's legacy parser.
    fn parse_config(&self, argv: &[&str]) -> Result<TypedConfig, ToolError>;

    /// Renders a typed config back into CLI arguments, the inverse of
    /// [`Component::parse_config`]. Returns `None` when some value has
    /// no CLI spelling (e.g. an `e2fsck -E` extended option, or a
    /// negation the real surface does not accept) — such configs are
    /// validate-only.
    fn render_args(&self, cfg: &TypedConfig) -> Option<Vec<String>>;

    /// Parses `argv` and executes against `dev`.
    ///
    /// # Errors
    ///
    /// CLI errors from parsing, plus the component's runtime refusals
    /// and file-system errors.
    fn run(&self, argv: &[&str], dev: MemDevice) -> Result<RunOutcome, ToolError>;
}

/// All ecosystem components, in the paper's stage order
/// (create → mount → online → offline).
pub fn ecosystem() -> Vec<Box<dyn Component>> {
    vec![
        Box::new(Mke2fsComponent),
        Box::new(MountComponent),
        Box::new(E4defragComponent),
        Box::new(Resize2fsComponent),
        Box::new(E2fsckComponent),
        Box::new(Tune2fsComponent),
    ]
}

/// Looks up a component by name.
pub fn component(name: &str) -> Option<Box<dyn Component>> {
    ecosystem().into_iter().find(|c| c.name() == name)
}

/// The full `ParamSpec` registry: the analyzed component set of
/// [`params::all_params`] (which includes the `ext4` kernel-module
/// parameters) plus `tune2fs`.
///
/// # Panics
///
/// Panics if two specs share a `(component, name)` pair — the
/// duplicate-registration guard over the per-module tables.
pub fn registry() -> Vec<ParamSpec> {
    let mut specs = params::all_params();
    specs.extend(tune2fs::param_table());
    let mut seen = std::collections::BTreeSet::new();
    for spec in &specs {
        assert!(
            seen.insert((spec.component.clone(), spec.name.clone())),
            "duplicate ParamSpec registration: {}:{}",
            spec.component,
            spec.name
        );
    }
    specs
}

/// Renders one typed value as a raw CLI string.
fn raw(v: &TypedValue) -> String {
    match v {
        TypedValue::Bool(b) => b.to_string(),
        TypedValue::Int(i) => i.to_string(),
        TypedValue::Str(s) => s.clone(),
    }
}

struct Mke2fsComponent;

impl Component for Mke2fsComponent {
    fn name(&self) -> &'static str {
        "mke2fs"
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        mke2fs::param_table()
    }

    fn manual_page(&self) -> ManualPage {
        mke2fs::manual()
    }

    fn parse_config(&self, argv: &[&str]) -> Result<TypedConfig, ToolError> {
        Mke2fs::parse_typed(argv).map(|(_, cfg)| cfg)
    }

    fn render_args(&self, cfg: &TypedConfig) -> Option<Vec<String>> {
        let mut args = Vec::new();
        let mut extended = Vec::new();
        let mut features = Vec::new();
        let mut size = None;
        for (name, value) in &cfg.values {
            match (name.as_str(), value) {
                ("check_badblocks", TypedValue::Bool(true)) => args.push("-c".to_string()),
                ("journal", TypedValue::Bool(true)) => args.push("-j".to_string()),
                ("dry_run", TypedValue::Bool(true)) => args.push("-n".to_string()),
                ("quiet", TypedValue::Bool(true)) => args.push("-q".to_string()),
                ("verbose", TypedValue::Bool(true)) => args.push("-v".to_string()),
                ("force", TypedValue::Bool(true)) => args.push("-F".to_string()),
                ("blocksize", v) => args.extend(["-b".to_string(), raw(v)]),
                ("cluster_size", v) => args.extend(["-C".to_string(), raw(v)]),
                ("blocks_per_group", v) => args.extend(["-g".to_string(), raw(v)]),
                ("number_of_groups", v) => args.extend(["-G".to_string(), raw(v)]),
                ("inode_ratio", v) => args.extend(["-i".to_string(), raw(v)]),
                ("inode_size", v) => args.extend(["-I".to_string(), raw(v)]),
                ("reserved_percent", v) => args.extend(["-m".to_string(), raw(v)]),
                ("inodes_count", v) => args.extend(["-N".to_string(), raw(v)]),
                ("label", v) => args.extend(["-L".to_string(), raw(v)]),
                ("uuid", v) => args.extend(["-U".to_string(), raw(v)]),
                ("journal_size", TypedValue::Int(n)) => {
                    args.extend(["-J".to_string(), format!("size={n}")]);
                }
                ("resize_headroom", TypedValue::Int(n)) => extended.push(format!("resize={n}")),
                ("stride", v) => extended.push(format!("stride={}", raw(v))),
                ("stripe_width", v) => extended.push(format!("stripe_width={}", raw(v))),
                ("lazy_itable_init", TypedValue::Bool(b)) => {
                    extended.push(format!("lazy_itable_init={}", i32::from(*b)));
                }
                ("size", TypedValue::Int(n)) => size = Some(n.to_string()),
                (feat, TypedValue::Bool(enabled))
                    if mke2fs::REGISTRY_FEATURES.contains(&feat) =>
                {
                    features.push(if *enabled { feat.to_string() } else { format!("^{feat}") });
                }
                _ => return None,
            }
        }
        if !extended.is_empty() {
            args.extend(["-E".to_string(), extended.join(",")]);
        }
        if !features.is_empty() {
            args.extend(["-O".to_string(), features.join(",")]);
        }
        args.push(cfg.operands.first().cloned().unwrap_or_else(|| "/dev/img".to_string()));
        args.extend(size);
        Some(args)
    }

    fn run(&self, argv: &[&str], dev: MemDevice) -> Result<RunOutcome, ToolError> {
        let (tool, _) = Mke2fs::parse_typed(argv)?;
        let (device, report) = tool.run(dev)?;
        Ok(RunOutcome {
            device,
            summary: format!(
                "mke2fs: {} blocks, {} groups, {} inodes",
                report.blocks_count, report.group_count, report.inodes_count
            ),
        })
    }
}

struct MountComponent;

/// Mount options whose `false` state has a real `no<name>` (or
/// equivalent) token on the CLI surface.
const NEGATABLE_MOUNT_OPTS: [&str; 11] = [
    "block_validity",
    "acl",
    "user_xattr",
    "barrier",
    "discard",
    "delalloc",
    "lazytime",
    "auto_da_alloc",
    "grpid",
    "quota",
    "init_itable",
];

/// Integer-valued `name=value` mount options.
const INT_MOUNT_OPTS: [&str; 9] = [
    "commit",
    "stripe",
    "resuid",
    "resgid",
    "inode_readahead_blks",
    "max_batch_time",
    "min_batch_time",
    "journal_ioprio",
    "sb",
];

impl Component for MountComponent {
    fn name(&self) -> &'static str {
        "mount"
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        mount_cmd::param_table()
    }

    fn manual_page(&self) -> ManualPage {
        mount_cmd::manual()
    }

    fn parse_config(&self, argv: &[&str]) -> Result<TypedConfig, ToolError> {
        MountCmd::parse_typed(&argv.join(",")).map(|(_, cfg)| cfg)
    }

    fn render_args(&self, cfg: &TypedConfig) -> Option<Vec<String>> {
        let mut tokens = Vec::new();
        for (name, value) in &cfg.values {
            match value {
                TypedValue::Bool(true) => tokens.push(name.clone()),
                TypedValue::Bool(false) if name == "dioread_nolock" => {
                    tokens.push("dioread_lock".to_string());
                }
                TypedValue::Bool(false) if NEGATABLE_MOUNT_OPTS.contains(&name.as_str()) => {
                    tokens.push(format!("no{name}"));
                }
                TypedValue::Int(i) if INT_MOUNT_OPTS.contains(&name.as_str()) => {
                    tokens.push(format!("{name}={i}"));
                }
                TypedValue::Str(s) if name == "data" || name == "errors" => {
                    tokens.push(format!("{name}={s}"));
                }
                _ => return None,
            }
        }
        Some(tokens)
    }

    fn run(&self, argv: &[&str], dev: MemDevice) -> Result<RunOutcome, ToolError> {
        let (cmd, _) = MountCmd::parse_typed(&argv.join(","))?;
        let fs = cmd.run(dev)?;
        let state = fs.state();
        let device = fs.unmount()?;
        Ok(RunOutcome { device, summary: format!("mount: mounted ({state:?}), unmounted clean") })
    }
}

struct E4defragComponent;

impl Component for E4defragComponent {
    fn name(&self) -> &'static str {
        "e4defrag"
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        e4defrag::param_table()
    }

    fn manual_page(&self) -> ManualPage {
        e4defrag::manual()
    }

    fn parse_config(&self, argv: &[&str]) -> Result<TypedConfig, ToolError> {
        E4defrag::parse_typed(argv).map(|(_, cfg)| cfg)
    }

    fn render_args(&self, cfg: &TypedConfig) -> Option<Vec<String>> {
        let mut args = Vec::new();
        for (name, value) in &cfg.values {
            match (name.as_str(), value) {
                ("check_only", TypedValue::Bool(true)) => args.push("-c".to_string()),
                ("verbose", TypedValue::Bool(true)) => args.push("-v".to_string()),
                _ => return None,
            }
        }
        args.push(cfg.operands.first().cloned().unwrap_or_else(|| "/mnt".to_string()));
        Some(args)
    }

    fn run(&self, argv: &[&str], dev: MemDevice) -> Result<RunOutcome, ToolError> {
        let (tool, _) = E4defrag::parse_typed(argv)?;
        let mut fs =
            ext4sim::Ext4Fs::mount(dev, &ext4sim::MountOptions::default()).map_err(ToolError::Fs)?;
        let report = tool.run(&mut fs)?;
        let device = fs.unmount().map_err(ToolError::Fs)?;
        Ok(RunOutcome {
            device,
            summary: format!(
                "e4defrag: {} files checked, {} defragmented",
                report.files_checked, report.files_defragmented
            ),
        })
    }
}

struct Resize2fsComponent;

impl Component for Resize2fsComponent {
    fn name(&self) -> &'static str {
        "resize2fs"
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        resize2fs::param_table()
    }

    fn manual_page(&self) -> ManualPage {
        resize2fs::manual()
    }

    fn parse_config(&self, argv: &[&str]) -> Result<TypedConfig, ToolError> {
        Resize2fs::parse_typed(argv).map(|(_, cfg)| cfg)
    }

    fn render_args(&self, cfg: &TypedConfig) -> Option<Vec<String>> {
        let mut args = Vec::new();
        let mut size = None;
        for (name, value) in &cfg.values {
            match (name.as_str(), value) {
                ("force", TypedValue::Bool(true)) => args.push("-f".to_string()),
                ("minimize", TypedValue::Bool(true)) => args.push("-M".to_string()),
                ("progress", TypedValue::Bool(true)) => args.push("-p".to_string()),
                ("print_min", TypedValue::Bool(true)) => args.push("-P".to_string()),
                ("enable_64bit", TypedValue::Bool(true)) => args.push("-b".to_string()),
                ("disable_64bit", TypedValue::Bool(true)) => args.push("-s".to_string()),
                ("flush", TypedValue::Bool(true)) => args.push("-F".to_string()),
                ("debug", TypedValue::Bool(true)) => args.push("-d".to_string()),
                ("sparse_rgd", v) => args.extend(["-S".to_string(), raw(v)]),
                ("undo_file", v) => args.extend(["-z".to_string(), raw(v)]),
                ("offset", v) => args.extend(["-o".to_string(), raw(v)]),
                ("size", TypedValue::Int(n)) => size = Some(n.to_string()),
                _ => return None,
            }
        }
        args.push(cfg.operands.first().cloned().unwrap_or_else(|| "/dev/img".to_string()));
        args.extend(size);
        Some(args)
    }

    fn run(&self, argv: &[&str], dev: MemDevice) -> Result<RunOutcome, ToolError> {
        let (tool, _) = Resize2fs::parse_typed(argv)?;
        let (device, result) = tool.run(dev)?;
        Ok(RunOutcome {
            device,
            summary: format!(
                "resize2fs: {} -> {} blocks ({} -> {} groups)",
                result.old_blocks, result.new_blocks, result.old_groups, result.new_groups
            ),
        })
    }
}

struct E2fsckComponent;

impl Component for E2fsckComponent {
    fn name(&self) -> &'static str {
        "e2fsck"
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        e2fsck::param_table()
    }

    fn manual_page(&self) -> ManualPage {
        e2fsck::manual()
    }

    fn parse_config(&self, argv: &[&str]) -> Result<TypedConfig, ToolError> {
        E2fsck::parse_typed(argv).map(|(_, cfg)| cfg)
    }

    fn render_args(&self, cfg: &TypedConfig) -> Option<Vec<String>> {
        let mut args = Vec::new();
        for (name, value) in &cfg.values {
            match (name.as_str(), value) {
                ("preen", TypedValue::Bool(true)) => args.push("-p".to_string()),
                ("no", TypedValue::Bool(true)) => args.push("-n".to_string()),
                ("yes", TypedValue::Bool(true)) => args.push("-y".to_string()),
                ("force", TypedValue::Bool(true)) => args.push("-f".to_string()),
                ("badblocks", TypedValue::Bool(true)) => args.push("-c".to_string()),
                ("debug", TypedValue::Bool(true)) => args.push("-d".to_string()),
                ("timing", TypedValue::Bool(true)) => args.push("-t".to_string()),
                ("verbose", TypedValue::Bool(true)) => args.push("-v".to_string()),
                ("superblock", TypedValue::Int(n)) => {
                    args.extend(["-b".to_string(), n.to_string()]);
                }
                // -B is only valid together with -b; a lone blocksize
                // value has no standalone CLI spelling
                ("external_journal", v) => args.extend(["-j".to_string(), raw(v)]),
                ("badblocks_list", v) => args.extend(["-l".to_string(), raw(v)]),
                ("undo_file", v) => args.extend(["-z".to_string(), raw(v)]),
                _ => return None,
            }
        }
        args.push(cfg.operands.first().cloned().unwrap_or_else(|| "/dev/img".to_string()));
        Some(args)
    }

    fn run(&self, argv: &[&str], dev: MemDevice) -> Result<RunOutcome, ToolError> {
        let (tool, _) = E2fsck::parse_typed(argv)?;
        let (device, result) = tool.run(dev)?;
        Ok(RunOutcome {
            device,
            summary: format!(
                "e2fsck: exit {} ({} fixes)",
                result.exit_code,
                result.fixes.len()
            ),
        })
    }
}

struct Tune2fsComponent;

impl Component for Tune2fsComponent {
    fn name(&self) -> &'static str {
        "tune2fs"
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        tune2fs::param_table()
    }

    fn manual_page(&self) -> ManualPage {
        tune2fs::manual()
    }

    fn parse_config(&self, argv: &[&str]) -> Result<TypedConfig, ToolError> {
        Tune2fs::parse_typed(argv).map(|(_, cfg)| cfg)
    }

    fn render_args(&self, cfg: &TypedConfig) -> Option<Vec<String>> {
        let mut args = Vec::new();
        for (name, value) in &cfg.values {
            match (name.as_str(), value) {
                ("list", TypedValue::Bool(true)) => args.push("-l".to_string()),
                ("label", v) => args.extend(["-L".to_string(), raw(v)]),
                ("reserved_percent", TypedValue::Int(n)) => {
                    args.extend(["-m".to_string(), n.to_string()]);
                }
                ("max_mount_count", TypedValue::Int(n)) => {
                    args.extend(["-c".to_string(), n.to_string()]);
                }
                ("errors", v) => args.extend(["-e".to_string(), raw(v)]),
                ("features", v) => args.extend(["-O".to_string(), raw(v)]),
                _ => return None,
            }
        }
        args.push(cfg.operands.first().cloned().unwrap_or_else(|| "/dev/img".to_string()));
        Some(args)
    }

    fn run(&self, argv: &[&str], dev: MemDevice) -> Result<RunOutcome, ToolError> {
        let (tool, _) = Tune2fs::parse_typed(argv)?;
        let (device, report) = tool.run(dev)?;
        Ok(RunOutcome {
            device,
            summary: format!("tune2fs: {} changes applied", report.changes.len()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_names() {
        let names: Vec<_> = ecosystem().iter().map(|c| c.name()).collect();
        assert_eq!(names, ["mke2fs", "mount", "e4defrag", "resize2fs", "e2fsck", "tune2fs"]);
        assert!(component("mke2fs").is_some());
        assert!(component("xfs_repair").is_none());
    }

    #[test]
    fn registry_has_no_duplicates_and_covers_tune2fs() {
        let specs = registry();
        assert!(specs.iter().any(|s| s.component == "tune2fs"));
        // the guard itself would have panicked on a duplicate
        let unique: std::collections::BTreeSet<_> =
            specs.iter().map(|s| (s.component.as_str(), s.name.as_str())).collect();
        assert_eq!(unique.len(), specs.len());
    }

    #[test]
    fn parse_render_parse_identity_mke2fs() {
        let c = component("mke2fs").unwrap();
        let cfg = c.parse_config(&["-b", "4096", "-O", "^resize_inode,meta_bg", "/dev/x"]).unwrap();
        let args = c.render_args(&cfg).unwrap();
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let cfg2 = c.parse_config(&argv).unwrap();
        assert_eq!(cfg, cfg2);
    }

    #[test]
    fn run_dispatch_formats_an_image() {
        let dev = MemDevice::new(1024, 16384);
        let out = component("mke2fs").unwrap().run(&["-b", "1024", "/dev/x", "12288"], dev).unwrap();
        assert!(out.summary.contains("12288 blocks"), "{}", out.summary);
        let out = component("e2fsck").unwrap().run(&["-f", "/dev/x"], out.device).unwrap();
        assert!(out.summary.contains("exit 0"), "{}", out.summary);
    }
}
