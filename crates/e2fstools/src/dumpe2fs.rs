//! `dumpe2fs` — prints the superblock and block-group information of an
//! image (the inspection utility of the real e2fsprogs suite).
//!
//! Read-only: the tool never modifies the image, which makes it the
//! safest way for the other experiments (and users) to observe the
//! effect of configuration parameters on the metadata.

use blockdev::BlockDevice;
use ext4sim::Ext4Fs;

use crate::cli::{self, CliError};
use crate::manual::{DocConstraint, ManualOption, ManualPage};
use crate::params::{ParamSpec, ParamType, Stage};
use crate::ToolError;

/// A parsed `dumpe2fs` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dumpe2fs {
    header_only: bool,
}

/// The structured dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsDump {
    /// Volume label.
    pub label: String,
    /// Block count.
    pub blocks_count: u64,
    /// Free blocks.
    pub free_blocks: u64,
    /// Inode count.
    pub inodes_count: u32,
    /// Free inodes.
    pub free_inodes: u32,
    /// Block size.
    pub block_size: u32,
    /// Feature names.
    pub features: Vec<String>,
    /// Whether the image is clean.
    pub clean: bool,
    /// Per-group lines (empty with `-h`).
    pub groups: Vec<GroupDump>,
}

/// One block group's summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupDump {
    /// Group number.
    pub group: u32,
    /// First block.
    pub first_block: u64,
    /// Whether it holds a superblock copy.
    pub has_super: bool,
    /// Free blocks.
    pub free_blocks: u32,
    /// Free inodes.
    pub free_inodes: u32,
    /// Directories.
    pub used_dirs: u32,
}

impl FsDump {
    /// Renders in the classic `dumpe2fs` text layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Filesystem volume name:   {}\n", if self.label.is_empty() { "<none>" } else { &self.label }));
        out.push_str(&format!("Filesystem state:         {}\n", if self.clean { "clean" } else { "not clean" }));
        out.push_str(&format!("Filesystem features:      {}\n", self.features.join(" ")));
        out.push_str(&format!("Block count:              {}\n", self.blocks_count));
        out.push_str(&format!("Free blocks:              {}\n", self.free_blocks));
        out.push_str(&format!("Inode count:              {}\n", self.inodes_count));
        out.push_str(&format!("Free inodes:              {}\n", self.free_inodes));
        out.push_str(&format!("Block size:               {}\n", self.block_size));
        for g in &self.groups {
            out.push_str(&format!(
                "Group {}: (Blocks {}-) {}free blocks {}, free inodes {}, directories {}\n",
                g.group,
                g.first_block,
                if g.has_super { "[super] " } else { "" },
                g.free_blocks,
                g.free_inodes,
                g.used_dirs
            ));
        }
        out
    }
}

impl Dumpe2fs {
    /// Parses `dumpe2fs [-h] device`.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Cli`] for bad options/operands.
    pub fn from_args(argv: &[&str]) -> Result<Self, ToolError> {
        let parsed = cli::parse(argv, &["h"], &[])?;
        if parsed.operands.len() != 1 {
            return Err(CliError::BadOperands("exactly one device is required".to_string()).into());
        }
        Ok(Dumpe2fs { header_only: parsed.has_flag("h") })
    }

    /// A full dump (header + groups).
    pub fn new() -> Self {
        Dumpe2fs { header_only: false }
    }

    /// Dumps `dev` without modifying it.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Fs`] for unreadable images.
    pub fn run<D: BlockDevice>(&self, dev: D) -> Result<(D, FsDump), ToolError> {
        let fs = Ext4Fs::open_for_maintenance(dev)?;
        let sb = fs.superblock();
        let l = fs.layout();
        let groups = if self.header_only {
            Vec::new()
        } else {
            (0..l.group_count())
                .map(|g| {
                    let gd = &fs.groups()[g as usize];
                    GroupDump {
                        group: g,
                        first_block: l.group_first_block(g),
                        has_super: l.has_super(g),
                        free_blocks: gd.free_blocks_count,
                        free_inodes: gd.free_inodes_count,
                        used_dirs: gd.used_dirs_count,
                    }
                })
                .collect()
        };
        let dump = FsDump {
            label: sb.label(),
            blocks_count: sb.blocks_count,
            free_blocks: sb.free_blocks_count,
            inodes_count: sb.inodes_count,
            free_inodes: sb.free_inodes_count,
            block_size: sb.block_size(),
            features: sb.features.names().iter().map(|s| s.to_string()).collect(),
            clean: sb.is_clean(),
            groups,
        };
        // read-only tool: return the device without the unmount
        // bookkeeping (which would write a clean flag)
        Ok((fs.into_device_dirty(), dump))
    }
}

impl Default for Dumpe2fs {
    fn default() -> Self {
        Self::new()
    }
}

/// The `dumpe2fs` parameter table.
pub fn param_table() -> Vec<ParamSpec> {
    let c = "dumpe2fs";
    vec![
        ParamSpec::new(c, "device", ParamType::Str, Stage::Offline, "the device to inspect"),
        ParamSpec::new(c, "header_only", ParamType::Bool, Stage::Offline, "-h: superblock only"),
    ]
}

/// The structured `dumpe2fs(8)` manual page.
pub fn manual() -> ManualPage {
    ManualPage {
        component: "dumpe2fs".to_string(),
        synopsis: "dumpe2fs [-h] device".to_string(),
        description: "dumpe2fs prints the super block and blocks group information for the filesystem present on device.".to_string(),
        options: vec![
            ManualOption::flag("-h", "only display the superblock information and not any of the block group descriptor detail information.")
                .with(DocConstraint::DataType { param: "header_only".into(), ty: "bool".into() }),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mke2fs::Mke2fs;
    use blockdev::MemDevice;

    fn image() -> MemDevice {
        let m = Mke2fs::from_args(&["-b", "1024", "-L", "dumpme", "/dev/d", "12288"]).unwrap();
        m.run(MemDevice::new(1024, 16384)).unwrap().0
    }

    #[test]
    fn full_dump_reports_geometry() {
        let (_, dump) = Dumpe2fs::new().run(image()).unwrap();
        assert_eq!(dump.label, "dumpme");
        assert_eq!(dump.blocks_count, 12288);
        assert_eq!(dump.block_size, 1024);
        assert!(dump.clean);
        assert_eq!(dump.groups.len(), 2);
        assert!(dump.groups[0].has_super);
        assert!(dump.features.iter().any(|f| f == "extent"));
        let text = dump.render();
        assert!(text.contains("dumpme"));
        assert!(text.contains("Group 0:"));
    }

    #[test]
    fn header_only_skips_groups() {
        let d = Dumpe2fs::from_args(&["-h", "/dev/d"]).unwrap();
        let (_, dump) = d.run(image()).unwrap();
        assert!(dump.groups.is_empty());
        assert_eq!(dump.blocks_count, 12288);
    }

    #[test]
    fn dump_is_read_only() {
        let img = image();
        let before = img.clone();
        let (after, _) = Dumpe2fs::new().run(img).unwrap();
        for b in 0..before.num_blocks() {
            let mut x = vec![0u8; 1024];
            let mut y = vec![0u8; 1024];
            before.read_block(b, &mut x).unwrap();
            after.read_block(b, &mut y).unwrap();
            assert_eq!(x, y, "block {b} modified by dumpe2fs");
        }
    }

    #[test]
    fn free_counts_match_statfs() {
        let img = image();
        let fs = Ext4Fs::open_for_maintenance(img).unwrap();
        let (_, free, _, free_inodes) = fs.statfs();
        let dev = fs.into_device_dirty();
        let (_, dump) = Dumpe2fs::new().run(dev).unwrap();
        assert_eq!(dump.free_blocks, free);
        assert_eq!(dump.free_inodes, free_inodes);
        // per-group counts sum to the totals
        let sum: u64 = dump.groups.iter().map(|g| u64::from(g.free_blocks)).sum();
        assert_eq!(sum, free);
    }

    #[test]
    fn parse_surface() {
        assert!(Dumpe2fs::from_args(&["/dev/d"]).is_ok());
        assert!(Dumpe2fs::from_args(&[]).is_err());
        assert!(Dumpe2fs::from_args(&["-z", "/dev/d"]).is_err());
    }

    #[test]
    fn garbage_image_rejected() {
        let dev = MemDevice::new(1024, 64);
        assert!(Dumpe2fs::new().run(dev).is_err());
    }
}
