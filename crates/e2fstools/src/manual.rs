//! Structured manual pages.
//!
//! ConDocCk (§4.2 of the paper) compares the configuration constraints a
//! manual *documents* against the constraints the analyzer *extracts from
//! code*. To make that comparison executable, each utility ships its man
//! page in structured form: options plus the constraints the prose
//! actually states. The pages below are transcribed from the real
//! e2fsprogs manuals — including the 12 places where the real documentation
//! is silent or wrong about a dependency (§4.3), which is precisely what
//! ConDocCk is built to find.

use serde::{Deserialize, Serialize};

/// A constraint as *documented* (or not) by a manual page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DocConstraint {
    /// The manual states a data type for the parameter.
    DataType {
        /// Parameter name.
        param: String,
        /// Documented type ("integer", "string", ...).
        ty: String,
    },
    /// The manual states a value range.
    ValueRange {
        /// Parameter name.
        param: String,
        /// Inclusive minimum.
        min: i64,
        /// Inclusive maximum.
        max: i64,
    },
    /// The manual says the parameter conflicts with another of the same
    /// component.
    Conflicts {
        /// Parameter name.
        param: String,
        /// The conflicting parameter.
        other: String,
    },
    /// The manual says the parameter requires another of the same
    /// component.
    Requires {
        /// Parameter name.
        param: String,
        /// The required parameter.
        other: String,
    },
    /// The manual documents a dependency on a *different* component's
    /// parameter (a documented CCD).
    CrossComponent {
        /// Parameter name.
        param: String,
        /// The other component.
        component: String,
        /// The other component's parameter.
        other: String,
        /// Short description of the relation.
        relation: String,
    },
}

impl DocConstraint {
    /// The parameter this constraint is about.
    pub fn param(&self) -> &str {
        match self {
            DocConstraint::DataType { param, .. }
            | DocConstraint::ValueRange { param, .. }
            | DocConstraint::Conflicts { param, .. }
            | DocConstraint::Requires { param, .. }
            | DocConstraint::CrossComponent { param, .. } => param,
        }
    }
}

/// One documented option.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManualOption {
    /// The flag as spelled (`-b`, `-O sparse_super2`, `data=`).
    pub flag: String,
    /// Placeholder for the value, if any (`block-size`).
    pub value_name: Option<String>,
    /// The prose description.
    pub description: String,
    /// Constraints the prose states.
    pub constraints: Vec<DocConstraint>,
}

impl ManualOption {
    /// A flag option with no value and no constraints.
    pub fn flag(flag: &str, description: &str) -> Self {
        ManualOption {
            flag: flag.to_string(),
            value_name: None,
            description: description.to_string(),
            constraints: Vec::new(),
        }
    }

    /// A valued option.
    pub fn valued(flag: &str, value_name: &str, description: &str) -> Self {
        ManualOption {
            flag: flag.to_string(),
            value_name: Some(value_name.to_string()),
            description: description.to_string(),
            constraints: Vec::new(),
        }
    }

    /// Attaches a constraint.
    pub fn with(mut self, c: DocConstraint) -> Self {
        self.constraints.push(c);
        self
    }
}

/// A structured manual page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManualPage {
    /// Component name (`mke2fs`, ...).
    pub component: String,
    /// One-line synopsis.
    pub synopsis: String,
    /// Description prose.
    pub description: String,
    /// Documented options.
    pub options: Vec<ManualOption>,
}

impl ManualPage {
    /// Every constraint documented anywhere on the page.
    pub fn all_constraints(&self) -> Vec<&DocConstraint> {
        self.options.iter().flat_map(|o| o.constraints.iter()).collect()
    }

    /// Constraints documented for a given parameter name.
    pub fn constraints_for(&self, param: &str) -> Vec<&DocConstraint> {
        self.all_constraints().into_iter().filter(|c| c.param() == param).collect()
    }

    /// The option entry documenting `flag`, if present.
    pub fn option(&self, flag: &str) -> Option<&ManualOption> {
        self.options.iter().find(|o| o.flag == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> ManualPage {
        ManualPage {
            component: "demo".to_string(),
            synopsis: "demo [-x n]".to_string(),
            description: "a demo".to_string(),
            options: vec![
                ManualOption::valued("-x", "n", "sets x")
                    .with(DocConstraint::ValueRange { param: "x".to_string(), min: 1, max: 9 })
                    .with(DocConstraint::DataType { param: "x".to_string(), ty: "integer".to_string() }),
                ManualOption::flag("-q", "quiet"),
            ],
        }
    }

    #[test]
    fn constraint_queries() {
        let p = page();
        assert_eq!(p.all_constraints().len(), 2);
        assert_eq!(p.constraints_for("x").len(), 2);
        assert!(p.constraints_for("q").is_empty());
        assert!(p.option("-q").is_some());
        assert!(p.option("-z").is_none());
    }

    #[test]
    fn param_accessor_covers_all_variants() {
        let cs = [
            DocConstraint::DataType { param: "a".into(), ty: "int".into() },
            DocConstraint::ValueRange { param: "a".into(), min: 0, max: 1 },
            DocConstraint::Conflicts { param: "a".into(), other: "b".into() },
            DocConstraint::Requires { param: "a".into(), other: "b".into() },
            DocConstraint::CrossComponent {
                param: "a".into(),
                component: "c".into(),
                other: "b".into(),
                relation: "depends".into(),
            },
        ];
        for c in &cs {
            assert_eq!(c.param(), "a");
        }
    }

    #[test]
    fn serde_round_trip() {
        let p = page();
        let json = serde_json::to_string(&p).unwrap();
        let back: ManualPage = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
