//! `resize2fs` — the offline resize utility, including the paper's
//! Figure 1 bug.
//!
//! Two conditions trigger the bug (exactly as in the paper): (1) the
//! `sparse_super2` feature is enabled on the image (an `mke2fs`
//! parameter), and (2) the `size` parameter of `resize2fs` is larger than
//! the current file-system size (an expansion). When both hold, the
//! free-block count of the last group is computed *before* the new blocks
//! are added to the group, so the block bitmap and the recorded free
//! counts disagree afterwards — "metadata corruption with incorrect free
//! blocks". The behaviour is controlled by [`ResizeQuirks`] so the fixed
//! behaviour can be compared side by side (the ConHandleCk experiment).

use blockdev::BlockDevice;
use ext4sim::{
    Bitmap, CompatFeatures, Ext4Fs, FsError, GroupDesc, Layout, RESERVED_INODES,
};

use crate::cli::{self, CliError};
use crate::manual::{DocConstraint, ManualOption, ManualPage};
use crate::params::{ParamSpec, ParamType, Stage};
use crate::typed::TypedConfig;
use crate::ToolError;

/// Boolean options of the `resize2fs` CLI surface.
const FLAG_OPTS: [&str; 8] = ["f", "M", "p", "P", "b", "s", "F", "d"];
/// Valued options of the `resize2fs` CLI surface.
const VALUE_OPTS: [&str; 3] = ["S", "z", "o"];

/// Compatibility quirks. `sparse_super2_resize_bug` defaults to `true`,
/// preserving the buggy behaviour the paper reports; set it to `false`
/// for the fixed behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResizeQuirks {
    /// Reproduce the Figure 1 free-block accounting bug.
    pub sparse_super2_resize_bug: bool,
}

impl Default for ResizeQuirks {
    fn default() -> Self {
        ResizeQuirks { sparse_super2_resize_bug: true }
    }
}

/// A parsed `resize2fs` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resize2fs {
    new_size: Option<u64>,
    minimize: bool,
    force: bool,
    print_min_only: bool,
    quirks: ResizeQuirks,
}

/// Outcome of a resize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResizeResult {
    /// Block count before.
    pub old_blocks: u64,
    /// Block count after.
    pub new_blocks: u64,
    /// Block groups before.
    pub old_groups: u32,
    /// Block groups after.
    pub new_groups: u32,
    /// The minimal feasible size (reported by `-P`).
    pub min_blocks: u64,
}

impl Resize2fs {
    /// Parses `resize2fs [-f] [-M] [-p] [-P] device [size]`.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Cli`] for bad options/operands, including the
    /// `-M`-with-`size` conflict the real tool enforces.
    pub fn from_args(argv: &[&str]) -> Result<Self, ToolError> {
        let parsed = cli::parse(argv, &FLAG_OPTS, &VALUE_OPTS)?;
        if parsed.operands.is_empty() {
            return Err(CliError::BadOperands("a device is required".to_string()).into());
        }
        if parsed.operands.len() > 2 {
            return Err(CliError::BadOperands("expected device [size]".to_string()).into());
        }
        let new_size = match parsed.operands.get(1) {
            Some(s) => Some(s.parse::<u64>().map_err(|_| CliError::BadValue {
                option: "size".to_string(),
                value: s.to_string(),
                expected: "a block count".to_string(),
            })?),
            None => None,
        };
        // CPD: -M computes the minimal size itself; an explicit size
        // conflicts.
        if parsed.has_flag("M") && new_size.is_some() {
            return Err(CliError::Conflict { a: "-M".to_string(), b: "size".to_string() }.into());
        }
        Ok(Resize2fs {
            new_size,
            minimize: parsed.has_flag("M"),
            force: parsed.has_flag("f"),
            print_min_only: parsed.has_flag("P"),
            quirks: ResizeQuirks::default(),
        })
    }

    /// Parses `argv` and additionally lowers it into a [`TypedConfig`]
    /// validated against [`param_table`].
    ///
    /// Validation is delegated entirely to [`Resize2fs::from_args`], so the
    /// error surface is byte-identical to the legacy path.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Resize2fs::from_args`].
    pub fn parse_typed(argv: &[&str]) -> Result<(Self, TypedConfig), ToolError> {
        let tool = Self::from_args(argv)?;
        let parsed = cli::parse(argv, &FLAG_OPTS, &VALUE_OPTS).expect("validated by from_args");
        let mut cfg = TypedConfig::new("resize2fs");
        for (flag, name) in [
            ("f", "force"),
            ("M", "minimize"),
            ("p", "progress"),
            ("P", "print_min"),
            ("b", "enable_64bit"),
            ("s", "disable_64bit"),
            ("F", "flush"),
            ("d", "debug"),
        ] {
            if parsed.has_flag(flag) {
                cfg.set_bool(name, true);
            }
        }
        if let Some(v) = parsed.value("S") {
            match v.parse::<i64>() {
                Ok(n) => cfg.set_int("sparse_rgd", n),
                Err(_) => cfg.set_str("sparse_rgd", v),
            };
        }
        if let Some(v) = parsed.value("z") {
            cfg.set_str("undo_file", v);
        }
        if let Some(v) = parsed.value("o") {
            match v.parse::<i64>() {
                Ok(n) => cfg.set_int("offset", n),
                Err(_) => cfg.set_str("offset", v),
            };
        }
        if let Some(size) = parsed.operands.get(1) {
            if let Ok(n) = size.parse::<i64>() {
                cfg.set_int("size", n);
            }
        }
        if let Some(device) = parsed.operands.first() {
            cfg.operands.push(device.clone());
        }
        Ok((tool, cfg))
    }

    /// Builds a grow/shrink to an explicit size.
    pub fn to_size(new_size: u64) -> Self {
        Resize2fs {
            new_size: Some(new_size),
            minimize: false,
            force: false,
            print_min_only: false,
            quirks: ResizeQuirks::default(),
        }
    }

    /// Overrides the quirk set (fixed vs buggy behaviour).
    pub fn with_quirks(mut self, quirks: ResizeQuirks) -> Self {
        self.quirks = quirks;
        self
    }

    /// Forces the resize even on a dirty image.
    pub fn forced(mut self) -> Self {
        self.force = true;
        self
    }

    /// Runs the resize against `dev` and returns the device and a result
    /// summary.
    ///
    /// # Errors
    ///
    /// * [`ToolError::Refused`] — dirty image without `-f`, shrinking
    ///   below the used size, or growth exceeding the GDT capacity;
    /// * [`ToolError::Fs`] — unreadable/invalid image or device failure.
    pub fn run<D: BlockDevice>(&self, dev: D) -> Result<(D, ResizeResult), ToolError> {
        let mut fs = Ext4Fs::open_for_maintenance(dev)?;
        // real resize2fs: "Please run 'e2fsck -f' first"
        if !fs.superblock().is_clean() && !self.force {
            return Err(ToolError::Refused(
                "filesystem is not clean; run e2fsck first (or use -f)".to_string(),
            ));
        }
        let old_blocks = fs.superblock().blocks_count;
        let old_groups = fs.layout().group_count();
        let min_blocks = minimal_size(&fs)?;
        let device_blocks =
            fs.device().size_bytes() / u64::from(fs.layout().block_size);

        let target = if self.print_min_only {
            old_blocks
        } else if self.minimize {
            min_blocks
        } else {
            self.new_size.unwrap_or(device_blocks)
        };

        if target > device_blocks {
            return Err(ToolError::Fs(FsError::InvalidParam {
                param: "size",
                reason: format!("requested {target} blocks but the device has {device_blocks}"),
            }));
        }

        // round the size so the trailing group can hold its own metadata
        // (the real tool similarly adjusts sizes near group boundaries)
        let target = round_away_runt_group(fs.layout(), target);
        if target < min_blocks && target < old_blocks {
            return Err(ToolError::Refused(format!(
                "cannot shrink to {target} blocks: data in use requires at least {min_blocks}"
            )));
        }

        if !self.print_min_only && target != old_blocks {
            if target > old_blocks {
                grow(&mut fs, target, self.quirks)?;
            } else {
                if target < min_blocks {
                    return Err(ToolError::Refused(format!(
                        "cannot shrink to {target} blocks: data in use requires at least {min_blocks}"
                    )));
                }
                shrink(&mut fs, target)?;
            }
        }

        let new_groups = fs.layout().group_count();
        let new_blocks = fs.superblock().blocks_count;
        let dev = fs.unmount()?;
        Ok((dev, ResizeResult { old_blocks, new_blocks, old_groups, new_groups, min_blocks }))
    }
}

/// Rounds `target` down past any trailing group too small to hold its
/// own metadata.
fn round_away_runt_group(layout: &Layout, mut target: u64) -> u64 {
    loop {
        let mut probe = layout.clone();
        probe.blocks_count = target;
        let gc = probe.group_count();
        if gc <= 1 {
            return target;
        }
        let last = gc - 1;
        if u64::from(probe.blocks_in_group(last)) <= u64::from(probe.group_overhead(last)) + 8 {
            target = probe.group_first_block(last);
        } else {
            return target;
        }
    }
}

/// The smallest size (blocks) the file system can shrink to without
/// moving data: everything up to the highest in-use block must stay.
fn minimal_size<D: BlockDevice>(fs: &Ext4Fs<D>) -> Result<u64, ToolError> {
    let l = fs.layout().clone();
    let mut highest_used: u64 = 0;
    for g in 0..l.group_count() {
        let bm = fs.read_block_bitmap(g)?;
        let overhead_clusters =
            u64::from(l.group_overhead(g)).div_ceil(u64::from(l.cluster_ratio)) as u32;
        for c in (0..bm.len()).rev() {
            if bm.get(c) && c >= overhead_clusters {
                let block = l.group_first_block(g)
                    + u64::from(c) * u64::from(l.cluster_ratio)
                    + u64::from(l.cluster_ratio)
                    - 1;
                highest_used = highest_used.max(block);
                break;
            }
        }
        // inodes in use beyond group 0's reserved set pin the group
        let ibm = fs.read_inode_bitmap(g)?;
        let reserved = if g == 0 { RESERVED_INODES.min(l.inodes_per_group) } else { 0 };
        let mut last_inode_used = false;
        for i in (reserved..l.inodes_per_group).rev() {
            if ibm.get(i) {
                last_inode_used = true;
                break;
            }
        }
        if last_inode_used {
            let last_block_of_group =
                l.group_first_block(g) + u64::from(l.blocks_in_group(g)) - 1;
            // the group's own metadata must stay
            highest_used = highest_used.max(
                l.group_first_block(g).max(l.group_data_start(g).min(last_block_of_group)),
            );
        }
    }
    Ok((highest_used + 1).max(64))
}

fn grow<D: BlockDevice>(
    fs: &mut Ext4Fs<D>,
    target: u64,
    quirks: ResizeQuirks,
) -> Result<(), ToolError> {
    let old_layout = fs.layout().clone();
    let old_groups = old_layout.group_count();
    let sparse_super2 =
        old_layout.features.compat.contains(CompatFeatures::SPARSE_SUPER2);

    // like the real tool, round the size down when the trailing group
    // would be too small to hold its own metadata
    let mut target = target;
    loop {
        let mut probe = old_layout.clone();
        probe.blocks_count = target;
        let gc = probe.group_count();
        let last = gc - 1;
        if gc > old_groups
            && u64::from(probe.blocks_in_group(last))
                <= u64::from(probe.group_overhead(last)) + 8
        {
            target = probe.group_first_block(last);
        } else {
            break;
        }
    }
    if target <= fs.superblock().blocks_count {
        return Ok(()); // rounded down to a no-op
    }

    // ---- the Figure 1 bug --------------------------------------------
    // The fixed code extends the last group first and *then* recomputes
    // its free-block count. The buggy code (preserved from the paper)
    // computes the count before the new blocks are added, so the extra
    // blocks show up free in the bitmap but never enter the counters.
    let buggy = sparse_super2 && quirks.sparse_super2_resize_bug;

    // future geometry
    let mut new_layout = old_layout.clone();
    new_layout.blocks_count = target;
    let new_groups = new_layout.group_count();

    // GDT capacity: the descriptor table may only grow into the reserved
    // GDT blocks.
    if new_layout.gdt_blocks() > old_layout.gdt_blocks() + old_layout.reserved_gdt_blocks {
        return Err(ToolError::Refused(format!(
            "growing to {target} blocks needs {} GDT blocks but only {} are reserved",
            new_layout.gdt_blocks(),
            old_layout.gdt_blocks() + old_layout.reserved_gdt_blocks
        )));
    }

    // 1. extend the old last group if it was short
    let last = old_groups - 1;
    let old_in_group = old_layout.blocks_in_group(last);
    let new_in_group = new_layout.blocks_in_group(last);
    if new_in_group > old_in_group {
        let ratio = old_layout.cluster_ratio;
        let old_clusters = u64::from(old_in_group).div_ceil(u64::from(ratio)) as u32;
        let new_clusters = u64::from(new_in_group).div_ceil(u64::from(ratio)) as u32;
        let old_bm = fs.read_block_bitmap(last)?;
        let mut new_bm = Bitmap::new(new_clusters, old_bm.as_bytes().len());
        for c in 0..old_clusters {
            if old_bm.get(c) {
                new_bm.set(c);
            }
        }
        new_bm.pad_tail();
        fs.write_block_bitmap(last, &new_bm)?;
        let added = (new_clusters - old_clusters) * ratio;
        if !buggy {
            fs.groups_mut()[last as usize].free_blocks_count += added;
            fs.superblock_mut().free_blocks_count += u64::from(added);
        }
        // buggy path: the bitmap gained `added` free blocks that the
        // counters never see — the Figure 1 corruption.
    }

    // 2. update the superblock geometry and re-derive the layout
    {
        let sb = fs.superblock_mut();
        sb.blocks_count = target;
        if sparse_super2 {
            sb.backup_bgs = Layout::sparse_super2_backups(new_groups);
        }
    }
    fs.refresh_layout();
    let l = fs.layout().clone();

    // 3. initialise the brand-new groups
    for g in old_groups..new_groups {
        let clusters_in_group =
            u64::from(l.blocks_in_group(g)).div_ceil(u64::from(l.cluster_ratio)) as u32;
        let mut bbm = Bitmap::new(clusters_in_group, l.block_size as usize);
        let overhead = l.group_overhead(g);
        let overhead_clusters = u64::from(overhead).div_ceil(u64::from(l.cluster_ratio)) as u32;
        for c in 0..overhead_clusters {
            bbm.set(c);
        }
        bbm.pad_tail();
        let mut ibm = Bitmap::new(l.inodes_per_group, l.block_size as usize);
        ibm.pad_tail();
        let free_blocks = l.blocks_in_group(g) - overhead_clusters * l.cluster_ratio;
        let gd = GroupDesc {
            block_bitmap: l.block_bitmap_block(g),
            inode_bitmap: l.inode_bitmap_block(g),
            inode_table: l.inode_table_block(g),
            free_blocks_count: free_blocks,
            free_inodes_count: l.inodes_per_group,
            used_dirs_count: 0,
            flags: 0,
        };
        let zero = vec![0u8; l.block_size as usize];
        {
            let dev = fs.device_mut();
            dev.write_block(gd.block_bitmap, bbm.as_bytes()).map_err(FsError::Device)?;
            dev.write_block(gd.inode_bitmap, ibm.as_bytes()).map_err(FsError::Device)?;
            for b in 0..l.inode_table_blocks() {
                dev.write_block(gd.inode_table + u64::from(b), &zero).map_err(FsError::Device)?;
            }
        }
        fs.groups_mut().push(gd);
        let sb = fs.superblock_mut();
        sb.free_blocks_count += u64::from(free_blocks);
        sb.free_inodes_count += l.inodes_per_group;
        sb.inodes_count += l.inodes_per_group;
    }

    fs.flush_metadata()?;
    Ok(())
}

fn shrink<D: BlockDevice>(fs: &mut Ext4Fs<D>, target: u64) -> Result<(), ToolError> {
    let old_layout = fs.layout().clone();
    let old_groups = old_layout.group_count();
    let mut new_layout = old_layout.clone();
    new_layout.blocks_count = target;
    let new_groups = new_layout.group_count();

    // drop whole groups
    for g in (new_groups..old_groups).rev() {
        let ibm = fs.read_inode_bitmap(g)?;
        if ibm.count_set() > 0 {
            return Err(ToolError::Refused(format!(
                "group {g} still contains inodes; shrink refused"
            )));
        }
        let gd = fs.groups()[g as usize];
        let sb = fs.superblock_mut();
        sb.free_blocks_count -= u64::from(gd.free_blocks_count);
        sb.free_inodes_count -= gd.free_inodes_count;
        sb.inodes_count -= old_layout.inodes_per_group;
        fs.groups_mut().pop();
    }

    // truncate the (new) last group if needed
    let last = new_groups - 1;
    let old_in_group = old_layout
        .blocks_in_group(last)
        .min(((old_layout.blocks_count - old_layout.group_first_block(last)) as u32).min(old_layout.blocks_per_group));
    let new_in_group = ((target - new_layout.group_first_block(last)) as u32).min(new_layout.blocks_per_group);
    if new_in_group < old_in_group {
        let ratio = old_layout.cluster_ratio;
        let new_clusters = u64::from(new_in_group).div_ceil(u64::from(ratio)) as u32;
        let old_bm = fs.read_block_bitmap(last)?;
        // refuse if any used cluster beyond the new tail
        let overhead_clusters =
            u64::from(old_layout.group_overhead(last)).div_ceil(u64::from(ratio)) as u32;
        for c in new_clusters..old_bm.len() {
            if old_bm.get(c) && c >= overhead_clusters {
                return Err(ToolError::Refused(format!(
                    "cluster {c} of group {last} is in use beyond the new size"
                )));
            }
        }
        let mut new_bm = Bitmap::new(new_clusters, old_bm.as_bytes().len());
        let mut lost_free = 0u32;
        for c in 0..old_bm.len() {
            if c < new_clusters {
                if old_bm.get(c) {
                    new_bm.set(c);
                }
            } else if !old_bm.get(c) {
                lost_free += ratio;
            }
        }
        new_bm.pad_tail();
        fs.write_block_bitmap(last, &new_bm)?;
        fs.groups_mut()[last as usize].free_blocks_count -= lost_free;
        fs.superblock_mut().free_blocks_count -= u64::from(lost_free);
    }

    {
        let sb = fs.superblock_mut();
        sb.blocks_count = target;
        if sb.features.compat.contains(CompatFeatures::SPARSE_SUPER2) {
            sb.backup_bgs = Layout::sparse_super2_backups(new_groups);
        }
    }
    fs.refresh_layout();
    fs.flush_metadata()?;
    Ok(())
}

/// The `resize2fs` parameter table — 16 parameters.
pub fn param_table() -> Vec<ParamSpec> {
    let c = "resize2fs";
    let b = || ParamType::Bool;
    vec![
        ParamSpec::new(c, "device", ParamType::Str, Stage::Offline, "the device to resize"),
        ParamSpec::new(c, "size", ParamType::Size, Stage::Offline, "target size in blocks (the Figure 1 CCD)"),
        ParamSpec::new(c, "force", b(), Stage::Offline, "-f: skip safety checks"),
        ParamSpec::new(c, "minimize", b(), Stage::Offline, "-M: shrink to the minimal size"),
        ParamSpec::new(c, "progress", b(), Stage::Offline, "-p: print progress bars"),
        ParamSpec::new(c, "print_min", b(), Stage::Offline, "-P: print the minimal size and exit"),
        ParamSpec::new(c, "enable_64bit", b(), Stage::Offline, "-b: convert to 64bit"),
        ParamSpec::new(c, "disable_64bit", b(), Stage::Offline, "-s: convert away from 64bit"),
        ParamSpec::new(c, "flush", b(), Stage::Offline, "-F: flush device buffers first"),
        ParamSpec::new(c, "debug", b(), Stage::Offline, "-d: debug flags"),
        ParamSpec::new(c, "sparse_rgd", ParamType::Size, Stage::Offline, "-S: RAID-stride to assume"),
        ParamSpec::new(c, "undo_file", ParamType::Str, Stage::Offline, "-z: undo file path"),
        ParamSpec::new(c, "offset", ParamType::Size, Stage::Offline, "-o: filesystem offset on the device"),
        ParamSpec::new(c, "dry_run", b(), Stage::Offline, "-n: simulate only"),
        ParamSpec::new(c, "verbose", b(), Stage::Offline, "-v: verbose output"),
        ParamSpec::new(c, "version", b(), Stage::Offline, "-V: print version"),
    ]
}

/// The structured `resize2fs(8)` manual page. Like the real page, it says
/// nothing about the `sparse_super2` interaction of Figure 1 (one of the
/// paper's documentation findings) and does not document that the size
/// must not exceed the device.
pub fn manual() -> ManualPage {
    ManualPage {
        component: "resize2fs".to_string(),
        synopsis: "resize2fs [-f] [-M] [-p] [-P] device [size]".to_string(),
        description:
            "The resize2fs program will resize ext2, ext3, or ext4 file systems. The size parameter specifies the requested new size of the file system in file-system blocks."
                .to_string(),
        options: vec![
            ManualOption::valued("size", "blocks", "The requested new size of the file system, relative to the size recorded at mke2fs time. Growth is limited by the reserved GDT blocks set aside via mke2fs -E resize=.")
                .with(DocConstraint::DataType { param: "new_size".into(), ty: "integer".into() })
                .with(DocConstraint::CrossComponent {
                    param: "new_size".into(),
                    component: "mke2fs".into(),
                    other: "size".into(),
                    relation: "the new size is validated against the created size".into(),
                })
                .with(DocConstraint::CrossComponent {
                    param: "new_size".into(),
                    component: "mke2fs".into(),
                    other: "resize_headroom".into(),
                    relation: "growth is limited by the reserved GDT blocks".into(),
                }),
            // GAP(paper): the sparse_super2 behavioural dependency
            // (Figure 1) is absent.
            // GAP(paper): the 64bit requirement for sizes beyond 2^32
            // blocks is absent.
            // GAP(paper): the meta_bg growth-path difference is absent.
            ManualOption::flag("-f", "Forces resize2fs to proceed, overriding some safety checks."),
            ManualOption::flag("-M", "Shrink the file system to minimize its size; cannot be combined with an explicit size.")
                .with(DocConstraint::Conflicts { param: "minimize".into(), other: "new_size".into() }),
            ManualOption::flag("-p", "Print percentage completion bars."),
            ManualOption::flag("-P", "Print an estimate of the minimum size of the file system and exit."),
            ManualOption::flag("-b", "Turns on the 64bit feature; cannot be combined with -s.")
                .with(DocConstraint::Conflicts { param: "enable_64bit".into(), other: "disable_64bit".into() }),
            ManualOption::flag("-s", "Turns off the 64bit feature."),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mke2fs::Mke2fs;
    use blockdev::MemDevice;
    use ext4sim::check_image;

    /// sparse_super2 image: 12288 blocks on a 16384-block device, so the
    /// last group is short (4096 of 8192) and the device has room to grow.
    fn sparse2_image() -> MemDevice {
        let m = Mke2fs::from_args(&[
            "-b", "1024", "-O", "sparse_super2,^sparse_super,^resize_inode", "/dev/x", "12288",
        ])
        .unwrap();
        let (dev, _) = m.run(MemDevice::new(1024, 16384)).unwrap();
        dev
    }

    fn plain_image() -> MemDevice {
        let m = Mke2fs::from_args(&["-b", "1024", "/dev/x", "12288"]).unwrap();
        let (dev, _) = m.run(MemDevice::new(1024, 16384)).unwrap();
        dev
    }

    #[test]
    fn parse_operands_and_conflicts() {
        let r = Resize2fs::from_args(&["/dev/x", "20000"]).unwrap();
        assert_eq!(r.new_size, Some(20000));
        assert!(Resize2fs::from_args(&[]).is_err());
        assert!(Resize2fs::from_args(&["/dev/x", "abc"]).is_err());
        let err = Resize2fs::from_args(&["-M", "/dev/x", "2000"]).unwrap_err();
        assert!(matches!(err, ToolError::Cli(CliError::Conflict { .. })));
    }

    #[test]
    fn grow_plain_image_stays_consistent() {
        let (dev, res) = Resize2fs::to_size(16384).run(plain_image()).unwrap();
        assert_eq!(res.old_blocks, 12288);
        assert_eq!(res.new_blocks, 16384);
        let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        let report = check_image(&fs).unwrap();
        assert!(report.is_clean(), "plain grow must stay clean: {:#?}", report.inconsistencies);
    }

    #[test]
    fn figure1_bug_corrupts_free_counts() {
        // Figure 1: sparse_super2 + expansion => corrupted free blocks
        let (dev, res) = Resize2fs::to_size(16384).run(sparse2_image()).unwrap();
        assert_eq!(res.new_blocks, 16384);
        let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        let report = check_image(&fs).unwrap();
        assert!(
            !report.of_tag("super_free_blocks").is_empty()
                || !report.of_tag("group_free_blocks").is_empty(),
            "the Figure 1 bug must corrupt the free-block accounting"
        );
    }

    #[test]
    fn figure1_fixed_behaviour_is_clean() {
        let quirks = ResizeQuirks { sparse_super2_resize_bug: false };
        let (dev, _) = Resize2fs::to_size(16384).with_quirks(quirks).run(sparse2_image()).unwrap();
        let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        let report = check_image(&fs).unwrap();
        assert!(report.is_clean(), "fixed resize must be clean: {:#?}", report.inconsistencies);
    }

    #[test]
    fn figure1_requires_both_conditions() {
        // sparse_super2 but no expansion -> no corruption
        let (dev, res) = Resize2fs::to_size(12288).run(sparse2_image()).unwrap();
        assert_eq!(res.old_blocks, res.new_blocks);
        let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        assert!(check_image(&fs).unwrap().is_clean());
        // expansion but no sparse_super2 -> no corruption (see
        // grow_plain_image_stays_consistent)
    }

    #[test]
    fn grow_beyond_device_rejected() {
        let err = Resize2fs::to_size(99999).run(plain_image()).unwrap_err();
        assert!(matches!(err, ToolError::Fs(FsError::InvalidParam { param: "size", .. })));
    }

    #[test]
    fn dirty_image_refused_without_force() {
        // dirty the image: a rw mount marks it in-use, then "crash"
        let fs = Ext4Fs::mount(plain_image(), &ext4sim::MountOptions::default()).unwrap();
        let dev = fs.into_device_dirty();
        let err = Resize2fs::to_size(16384).run(dev.clone()).unwrap_err();
        assert!(matches!(err, ToolError::Refused(_)));
        // forced resize proceeds
        Resize2fs::to_size(16384).forced().run(dev).unwrap();
    }

    #[test]
    fn shrink_empty_region_succeeds() {
        let (dev, res) = Resize2fs::to_size(9000).run(plain_image()).unwrap();
        assert_eq!(res.new_blocks, 9000);
        assert!(res.new_groups <= res.old_groups);
        let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        let report = check_image(&fs).unwrap();
        assert!(report.is_clean(), "shrink must stay clean: {:#?}", report.inconsistencies);
    }

    #[test]
    fn shrink_below_minimum_refused() {
        let err = Resize2fs::to_size(64).run(plain_image()).unwrap_err();
        assert!(matches!(err, ToolError::Refused(_)));
    }

    #[test]
    fn print_min_reports_without_change() {
        let r = Resize2fs::from_args(&["-P", "/dev/x"]).unwrap();
        let (dev, res) = r.run(plain_image()).unwrap();
        assert_eq!(res.old_blocks, res.new_blocks);
        assert!(res.min_blocks > 0 && res.min_blocks < 12288);
        let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        assert_eq!(fs.superblock().blocks_count, 12288);
    }

    #[test]
    fn minimize_shrinks_to_min() {
        let r = Resize2fs::from_args(&["-M", "/dev/x"]).unwrap();
        let (dev, res) = r.run(plain_image()).unwrap();
        assert_eq!(res.new_blocks, res.min_blocks);
        let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        assert!(check_image(&fs).unwrap().is_clean());
    }

    #[test]
    fn sparse_super2_backups_move_on_grow() {
        // grow from 2 groups to 3 so the second backup has to move
        let m = Mke2fs::from_args(&[
            "-b", "1024", "-O", "sparse_super2,^sparse_super,^resize_inode", "/dev/x", "12288",
        ])
        .unwrap();
        let (dev, _) = m.run(MemDevice::new(1024, 32768)).unwrap();
        let quirks = ResizeQuirks { sparse_super2_resize_bug: false };
        let (dev, res) = Resize2fs::to_size(24577).with_quirks(quirks).run(dev).unwrap();
        assert_eq!(res.new_groups, 3);
        let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        assert_eq!(fs.superblock().backup_bgs, [1, 2]);
        // the new backup location actually holds a superblock copy
        let report = check_image(&fs).unwrap();
        assert!(report.is_clean(), "findings: {:#?}", report.inconsistencies);
    }

    #[test]
    fn param_table_size() {
        assert_eq!(param_table().len(), 16);
    }
}
