//! `e4defrag` — the online defragmenter.
//!
//! Operates on a *mounted* file system (the paper's online configuration
//! stage) and relies on the kernel mechanism
//! [`Ext4Fs::defragment_file`] — the stand-in for the real
//! `EXT4_IOC_MOVE_EXT` ioctl. Its usability therefore depends on two
//! other components' parameters: the `mke2fs` `extent` feature (the ioctl
//! returns `EOPNOTSUPP` without it) and the `mount` `ro` option (a
//! read-only mount cannot be defragmented) — both cross-component
//! dependencies in the paper's taxonomy.

use blockdev::BlockDevice;
use ext4sim::{Ext4Fs, FileType, FsError, FsState, InodeNo, ROOT_INODE};

use crate::cli::{self, CliError};
use crate::manual::{DocConstraint, ManualOption, ManualPage};
use crate::params::{ParamSpec, ParamType, Stage};
use crate::typed::TypedConfig;
use crate::ToolError;

/// A parsed `e4defrag` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E4defrag {
    check_only: bool,
    verbose: bool,
}

/// Per-run statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DefragReport {
    /// Regular files visited.
    pub files_checked: u64,
    /// Files actually rewritten.
    pub files_defragmented: u64,
    /// Total extents before.
    pub extents_before: u64,
    /// Total extents after.
    pub extents_after: u64,
    /// Files skipped because no contiguous space was available.
    pub skipped_no_space: u64,
}

impl DefragReport {
    /// Mean extents per file before the run.
    pub fn fragmentation_before(&self) -> f64 {
        if self.files_checked == 0 {
            0.0
        } else {
            self.extents_before as f64 / self.files_checked as f64
        }
    }

    /// Mean extents per file after the run.
    pub fn fragmentation_after(&self) -> f64 {
        if self.files_checked == 0 {
            0.0
        } else {
            self.extents_after as f64 / self.files_checked as f64
        }
    }
}

impl E4defrag {
    /// Parses `e4defrag [-c] [-v] target`.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Cli`] for bad options/operands.
    pub fn from_args(argv: &[&str]) -> Result<Self, ToolError> {
        let parsed = cli::parse(argv, &["c", "v"], &[])?;
        if parsed.operands.len() != 1 {
            return Err(CliError::BadOperands("exactly one target is required".to_string()).into());
        }
        Ok(E4defrag { check_only: parsed.has_flag("c"), verbose: parsed.has_flag("v") })
    }

    /// Parses `argv` and additionally lowers it into a [`TypedConfig`]
    /// validated against [`param_table`].
    ///
    /// Validation is delegated entirely to [`E4defrag::from_args`], so the
    /// error surface is byte-identical to the legacy path.
    ///
    /// # Errors
    ///
    /// Exactly those of [`E4defrag::from_args`].
    pub fn parse_typed(argv: &[&str]) -> Result<(Self, TypedConfig), ToolError> {
        let tool = Self::from_args(argv)?;
        let parsed = cli::parse(argv, &["c", "v"], &[]).expect("validated by from_args");
        let mut cfg = TypedConfig::new("e4defrag");
        if parsed.has_flag("c") {
            cfg.set_bool("check_only", true);
        }
        if parsed.has_flag("v") {
            cfg.set_bool("verbose", true);
        }
        if let Some(target) = parsed.operands.first() {
            cfg.operands.push(target.clone());
        }
        Ok((tool, cfg))
    }

    /// A default (defragment everything) invocation.
    pub fn new() -> Self {
        E4defrag { check_only: false, verbose: false }
    }

    /// Whether `-c` (report fragmentation only) was given.
    pub fn is_check_only(&self) -> bool {
        self.check_only
    }

    /// Runs against a mounted file system.
    ///
    /// # Errors
    ///
    /// * [`ToolError::Refused`] — the file system is mounted read-only
    ///   (CCD on the `mount` `ro` parameter);
    /// * [`ToolError::Fs`] with [`FsError::NotSupported`] — the image
    ///   lacks the `extent` feature (CCD on the `mke2fs` parameter).
    pub fn run<D: BlockDevice>(&self, fs: &mut Ext4Fs<D>) -> Result<DefragReport, ToolError> {
        if fs.state() == FsState::MountedRo && !self.check_only {
            return Err(ToolError::Refused(
                "the file system is mounted read-only; defragmentation needs a rw mount"
                    .to_string(),
            ));
        }
        let mut report = DefragReport::default();
        // walk the directory tree
        let mut stack = vec![ROOT_INODE];
        let mut seen = std::collections::BTreeSet::new();
        while let Some(dir) = stack.pop() {
            if !seen.insert(dir) {
                continue;
            }
            for entry in fs.readdir(dir).map_err(ToolError::Fs)? {
                if entry.name == "." || entry.name == ".." {
                    continue;
                }
                match entry.file_type {
                    FileType::Dir => stack.push(InodeNo(entry.inode)),
                    FileType::Regular => {
                        report.files_checked += 1;
                        let ino = InodeNo(entry.inode);
                        if self.check_only {
                            let n = extent_count(fs, ino)?;
                            report.extents_before += u64::from(n);
                            report.extents_after += u64::from(n);
                            continue;
                        }
                        match fs.defragment_file(ino) {
                            Ok((before, after)) => {
                                report.extents_before += u64::from(before);
                                report.extents_after += u64::from(after);
                                if after < before {
                                    report.files_defragmented += 1;
                                }
                            }
                            Err(FsError::NoSpace) => {
                                let n = extent_count(fs, ino)?;
                                report.extents_before += u64::from(n);
                                report.extents_after += u64::from(n);
                                report.skipped_no_space += 1;
                            }
                            Err(e) => return Err(ToolError::Fs(e)),
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(report)
    }
}

impl Default for E4defrag {
    fn default() -> Self {
        Self::new()
    }
}

fn extent_count<D: BlockDevice>(fs: &Ext4Fs<D>, ino: InodeNo) -> Result<u32, ToolError> {
    let inode = fs.read_inode(ino).map_err(ToolError::Fs)?;
    if inode.is_inline() {
        return Ok(0);
    }
    if !inode.uses_extents() {
        return Err(ToolError::Fs(FsError::NotSupported(
            "e4defrag requires the extent feature (EOPNOTSUPP)".to_string(),
        )));
    }
    // count fragments by walking physical adjacency
    let blocks = fs.file_blocks(&inode).map_err(ToolError::Fs)?;
    let mut frags = 0u32;
    let mut prev: Option<u64> = None;
    for &b in &blocks {
        if prev != Some(b.wrapping_sub(1)) {
            frags += 1;
        }
        prev = Some(b);
    }
    Ok(frags)
}

/// The `e4defrag` parameter table.
pub fn param_table() -> Vec<ParamSpec> {
    let c = "e4defrag";
    vec![
        ParamSpec::new(c, "target", ParamType::Str, Stage::Online, "file, directory, or device to defragment"),
        ParamSpec::new(c, "check_only", ParamType::Bool, Stage::Online, "-c: report the fragmentation score only"),
        ParamSpec::new(c, "verbose", ParamType::Bool, Stage::Online, "-v: per-file output"),
    ]
}

/// The structured `e4defrag(8)` manual page. Documents the extent-feature
/// dependency (the real page does) but not the read-only-mount refusal.
pub fn manual() -> ManualPage {
    ManualPage {
        component: "e4defrag".to_string(),
        synopsis: "e4defrag [-c] [-v] target".to_string(),
        description: "e4defrag reduces fragmentation of extent-based files on ext4."
            .to_string(),
        options: vec![
            ManualOption::valued("target", "path", "A regular file, a directory, or a device mounted as ext4.")
                .with(DocConstraint::CrossComponent {
                    param: "target".into(),
                    component: "mke2fs".into(),
                    other: "extent".into(),
                    relation: "e4defrag only works on extent-based files".into(),
                }),
            ManualOption::flag("-c", "Get the current fragmentation count and an estimate of whether defragmentation would help."),
            ManualOption::flag("-v", "Print error messages and the fragmentation count before and after defrag for each file."),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mke2fs::Mke2fs;
    use blockdev::MemDevice;
    use ext4sim::{MkfsParams, MountOptions};

    /// A mounted fs with two deliberately interleaved (fragmented) files.
    fn fragmented_fs() -> Ext4Fs<MemDevice> {
        let (dev, _) = Mke2fs::from_args(&["-b", "1024", "/dev/x", "8192"])
            .unwrap()
            .run(MemDevice::new(1024, 8192))
            .unwrap();
        let mut fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
        let root = fs.root_inode();
        let a = fs.create_file(root, "frag-a").unwrap();
        let b = fs.create_file(root, "frag-b").unwrap();
        for i in 0..8u64 {
            fs.write_file(a, i * 1024, &[0xAA; 1024]).unwrap();
            fs.write_file(b, i * 1024, &[0xBB; 1024]).unwrap();
        }
        fs
    }

    #[test]
    fn defrag_reduces_extents() {
        let mut fs = fragmented_fs();
        let report = E4defrag::new().run(&mut fs).unwrap();
        assert_eq!(report.files_checked, 2);
        assert!(report.extents_before > report.extents_after);
        assert!(report.files_defragmented >= 1);
        assert!(report.fragmentation_after() < report.fragmentation_before());
        // data intact
        let root = fs.root_inode();
        let a = fs.lookup(root, "frag-a").unwrap().unwrap();
        let data = fs.read_file_to_vec(InodeNo(a.inode)).unwrap();
        assert_eq!(data.len(), 8 * 1024);
        assert!(data.iter().all(|&x| x == 0xAA));
    }

    #[test]
    fn check_only_reports_without_change() {
        let mut fs = fragmented_fs();
        let cmd = E4defrag::from_args(&["-c", "/mnt"]).unwrap();
        assert!(cmd.is_check_only());
        let report = cmd.run(&mut fs).unwrap();
        assert_eq!(report.extents_before, report.extents_after);
        assert_eq!(report.files_defragmented, 0);
        assert!(report.extents_before > 2, "interleaved files must be fragmented");
    }

    #[test]
    fn read_only_mount_refused() {
        let fs = fragmented_fs();
        let dev = fs.unmount().unwrap();
        let mut fs = Ext4Fs::mount(dev, &MountOptions::read_only()).unwrap();
        let err = E4defrag::new().run(&mut fs).unwrap_err();
        assert!(matches!(err, ToolError::Refused(_)));
        // -c works on a ro mount
        E4defrag::from_args(&["-c", "/mnt"]).unwrap().run(&mut fs).unwrap();
    }

    #[test]
    fn non_extent_fs_is_a_ccd_violation() {
        let mut params = MkfsParams { block_size: Some(1024), ..MkfsParams::default() };
        params.features.incompat.remove(ext4sim::IncompatFeatures::EXTENTS);
        let mut fs = Ext4Fs::format(MemDevice::new(1024, 8192), &params).unwrap();
        let root = fs.root_inode();
        let a = fs.create_file(root, "legacy-a").unwrap();
        let b = fs.create_file(root, "legacy-b").unwrap();
        for i in 0..4u64 {
            fs.write_file(a, i * 1024, &[1; 1024]).unwrap();
            fs.write_file(b, i * 1024, &[2; 1024]).unwrap();
        }
        let err = E4defrag::new().run(&mut fs).unwrap_err();
        assert!(matches!(err, ToolError::Fs(FsError::NotSupported(_))));
    }

    #[test]
    fn parse_surface() {
        assert!(E4defrag::from_args(&["/mnt"]).is_ok());
        assert!(E4defrag::from_args(&[]).is_err());
        assert!(E4defrag::from_args(&["-z", "/mnt"]).is_err());
        assert!(E4defrag::from_args(&["a", "b"]).is_err());
    }

    #[test]
    fn empty_fs_report_is_zero() {
        let (dev, _) = Mke2fs::from_args(&["-b", "1024", "/dev/x", "8192"])
            .unwrap()
            .run(MemDevice::new(1024, 8192))
            .unwrap();
        let mut fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
        let report = E4defrag::new().run(&mut fs).unwrap();
        assert_eq!(report.files_checked, 0);
        assert_eq!(report.fragmentation_before(), 0.0);
    }
}
