//! The typed configuration value model of the ecosystem layer.
//!
//! Every component parses its CLI surface into a [`TypedConfig`] — a
//! canonical `parameter -> typed value` map — instead of each consumer
//! re-interpreting raw argument strings. A `TypedConfig` is validated
//! once against the [`crate::params::ParamSpec`] registry (see
//! [`crate::component`]), rendered back to CLI arguments for round-trip
//! testing, and keyed canonically so semantically equal configurations
//! compare equal regardless of the argument order they were written in.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::params::{ParamSpec, ParamType};

/// A typed parameter value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TypedValue {
    /// A boolean (flags, features; `false` records an explicit `^name`).
    Bool(bool),
    /// An integer (counts, sizes, ids).
    Int(i64),
    /// A free-form or enumerated string.
    Str(String),
}

impl fmt::Display for TypedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypedValue::Bool(b) => write!(f, "b:{b}"),
            TypedValue::Int(i) => write!(f, "i:{i}"),
            TypedValue::Str(s) => write!(f, "s:{s}"),
        }
    }
}

/// One component's configuration as typed values.
///
/// The value map is a `BTreeMap`, so iteration (and therefore
/// [`TypedConfig::canonical_key`]) is independent of insertion order —
/// the property the ConBugCk state memoization relies on.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypedConfig {
    /// The owning component (`mke2fs`, `mount`, ...).
    pub component: String,
    /// Parameter name -> typed value, sorted by name.
    pub values: BTreeMap<String, TypedValue>,
    /// Positional operands (device paths, sizes) in CLI order.
    pub operands: Vec<String>,
}

/// A registry-validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The parameter is not registered for this component.
    UnknownParam {
        /// The component the config claims.
        component: String,
        /// The unregistered parameter.
        param: String,
    },
    /// An integer value falls outside the spec's inclusive range.
    OutOfRange {
        /// The parameter.
        param: String,
        /// The offending value.
        value: i64,
        /// Spec minimum.
        min: i64,
        /// Spec maximum.
        max: i64,
    },
    /// A string value is not a member of the spec's enumeration.
    NotInEnum {
        /// The parameter.
        param: String,
        /// The offending value.
        value: String,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UnknownParam { component, param } => {
                write!(f, "unknown parameter {component}:{param}")
            }
            ValidationError::OutOfRange { param, value, min, max } => {
                write!(f, "{param}={value} outside {min}..={max}")
            }
            ValidationError::NotInEnum { param, value } => {
                write!(f, "{param}={value} is not an enumerated value")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

impl TypedConfig {
    /// An empty configuration for `component`.
    pub fn new(component: &str) -> Self {
        TypedConfig { component: component.to_string(), ..TypedConfig::default() }
    }

    /// Sets a boolean parameter.
    pub fn set_bool(&mut self, name: &str, v: bool) -> &mut Self {
        self.values.insert(name.to_string(), TypedValue::Bool(v));
        self
    }

    /// Sets an integer parameter.
    pub fn set_int(&mut self, name: &str, v: i64) -> &mut Self {
        self.values.insert(name.to_string(), TypedValue::Int(v));
        self
    }

    /// Sets a string parameter.
    pub fn set_str(&mut self, name: &str, v: &str) -> &mut Self {
        self.values.insert(name.to_string(), TypedValue::Str(v.to_string()));
        self
    }

    /// Looks a parameter up.
    pub fn get(&self, name: &str) -> Option<&TypedValue> {
        self.values.get(name)
    }

    /// The integer value of a parameter, if it is one.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        match self.values.get(name) {
            Some(TypedValue::Int(i)) => Some(*i),
            _ => None,
        }
    }

    /// Whether a parameter is "engaged": a `true` boolean, or any
    /// integer/string value at all.
    pub fn is_engaged(&self, name: &str) -> bool {
        match self.values.get(name) {
            Some(TypedValue::Bool(b)) => *b,
            Some(_) => true,
            None => false,
        }
    }

    /// A canonical identity string: component, then every parameter in
    /// name order with its typed value, then the operands. Two configs
    /// with the same parameters and operands produce the same key no
    /// matter what order the CLI arguments arrived in.
    pub fn canonical_key(&self) -> String {
        let mut key = String::new();
        self.canonical_key_into(&mut key).expect("String formatting is infallible");
        key
    }

    /// Streams the canonical identity (see [`TypedConfig::canonical_key`])
    /// into any [`std::fmt::Write`] sink — e.g. a hasher — without
    /// allocating the key string.
    ///
    /// # Errors
    ///
    /// Propagates errors from the sink.
    pub fn canonical_key_into<W: std::fmt::Write>(&self, key: &mut W) -> std::fmt::Result {
        key.write_str(&self.component)?;
        key.write_char('{')?;
        for (i, (name, value)) in self.values.iter().enumerate() {
            if i > 0 {
                key.write_char(',')?;
            }
            key.write_str(name)?;
            key.write_char('=')?;
            write!(key, "{value}")?;
        }
        key.write_char('}')?;
        key.write_char('[')?;
        for (i, op) in self.operands.iter().enumerate() {
            if i > 0 {
                key.write_char(',')?;
            }
            key.write_str(op)?;
        }
        key.write_char(']')
    }

    /// Folds the canonical identity's exact byte stream into an FNV-1a
    /// state without going through the `fmt` machinery — the serving
    /// hot path for fingerprinting queries. Always equals hashing
    /// [`TypedConfig::canonical_key`]'s bytes into `hash` directly.
    #[must_use]
    #[inline]
    pub fn canonical_fnv1a(&self, hash: u64) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        #[inline]
        fn fold(mut hash: u64, bytes: &[u8]) -> u64 {
            for b in bytes {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(PRIME);
            }
            hash
        }
        #[inline]
        fn fold_int(hash: u64, v: i64) -> u64 {
            // decimal render into a stack buffer; i64::MIN-safe via i128
            let mut buf = [0u8; 20];
            let mut n = i128::from(v).unsigned_abs();
            let mut at = buf.len();
            loop {
                at -= 1;
                buf[at] = b'0' + (n % 10) as u8;
                n /= 10;
                if n == 0 {
                    break;
                }
            }
            if v < 0 {
                at -= 1;
                buf[at] = b'-';
            }
            fold(hash, &buf[at..])
        }
        let mut hash = fold(hash, self.component.as_bytes());
        hash = fold(hash, b"{");
        for (i, (name, value)) in self.values.iter().enumerate() {
            if i > 0 {
                hash = fold(hash, b",");
            }
            hash = fold(hash, name.as_bytes());
            hash = fold(hash, b"=");
            hash = match value {
                TypedValue::Bool(b) => fold(hash, if *b { b"b:true" } else { b"b:false" }),
                TypedValue::Int(v) => fold_int(fold(hash, b"i:"), *v),
                TypedValue::Str(s) => fold(fold(hash, b"s:"), s.as_bytes()),
            };
        }
        hash = fold(hash, b"}[");
        for (i, op) in self.operands.iter().enumerate() {
            if i > 0 {
                hash = fold(hash, b",");
            }
            hash = fold(hash, op.as_bytes());
        }
        fold(hash, b"]")
    }

    /// Validates every value against the registry slice: the parameter
    /// must be registered for this component, integers must sit inside
    /// `Int` ranges, and strings must be members of `Enum` domains.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidationError`] encountered (name order).
    pub fn validate(&self, registry: &[ParamSpec]) -> Result<(), ValidationError> {
        for (name, value) in &self.values {
            let spec = registry
                .iter()
                .find(|s| s.component == self.component && &s.name == name)
                .ok_or_else(|| ValidationError::UnknownParam {
                    component: self.component.clone(),
                    param: name.clone(),
                })?;
            match (&spec.param_type, value) {
                (ParamType::Int { min, max }, TypedValue::Int(v)) if v < min || v > max => {
                    return Err(ValidationError::OutOfRange {
                        param: name.clone(),
                        value: *v,
                        min: *min,
                        max: *max,
                    });
                }
                (ParamType::Enum(members), TypedValue::Str(s)) if !members.contains(s) => {
                    return Err(ValidationError::NotInEnum {
                        param: name.clone(),
                        value: s.clone(),
                    });
                }
                // Bool/Str/Size/Feature domains accept any value of a
                // compatible shape; the utility-level validators own the
                // finer-grained rules (power-of-two, label length, ...).
                _ => {}
            }
        }
        Ok(())
    }

    /// A *lenient* typed view of raw `mke2fs` argument vectors — used to
    /// key generated configurations canonically even when they would not
    /// parse (ConBugCk generates some deliberately invalid ones). `-b`
    /// and `-m` lower to integers where possible, `-O` feature tokens
    /// lower to booleans (`^name` -> `false`), and anything unparsable
    /// falls back to a string value.
    pub fn from_mkfs_args_lenient(args: &[String]) -> Self {
        let mut cfg = TypedConfig::new("mke2fs");
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            // valued options lowered to their registry parameter names
            // (the same map as `Mke2fs::parse_typed`, minus validation)
            let valued = match arg.as_str() {
                "-b" => Some("blocksize"),
                "-m" => Some("reserved_percent"),
                "-C" => Some("cluster_size"),
                "-g" => Some("blocks_per_group"),
                "-G" => Some("number_of_groups"),
                "-i" => Some("inode_ratio"),
                "-I" => Some("inode_size"),
                "-N" => Some("inodes_count"),
                "-L" => Some("label"),
                "-U" => Some("uuid"),
                _ => None,
            };
            if let Some(name) = valued {
                match it.next() {
                    Some(v) => match v.parse::<i64>() {
                        Ok(i) => {
                            cfg.set_int(name, i);
                        }
                        Err(_) => {
                            cfg.set_str(name, v);
                        }
                    },
                    None => {
                        cfg.set_bool(name, true);
                    }
                }
                continue;
            }
            match arg.as_str() {
                "-J" => match it.next() {
                    Some(v) => {
                        let raw = v.strip_prefix("size=").unwrap_or(v);
                        match raw.parse::<i64>() {
                            Ok(i) => {
                                cfg.set_int("journal_size", i);
                            }
                            Err(_) => {
                                cfg.set_str("journal_size", raw);
                            }
                        }
                    }
                    None => {
                        cfg.set_bool("journal_size", true);
                    }
                },
                "-E" => {
                    if let Some(exts) = it.next() {
                        for opt in exts.split(',').filter(|t| !t.is_empty()) {
                            match opt.split_once('=') {
                                Some(("resize", v)) => match v.parse::<i64>() {
                                    Ok(i) => {
                                        cfg.set_int("resize_headroom", i);
                                    }
                                    Err(_) => {
                                        cfg.set_str("resize_headroom", v);
                                    }
                                },
                                Some(("lazy_itable_init", v)) => {
                                    cfg.set_bool("lazy_itable_init", v != "0");
                                }
                                Some((k, v)) => match v.parse::<i64>() {
                                    Ok(i) => {
                                        cfg.set_int(k, i);
                                    }
                                    Err(_) => {
                                        cfg.set_str(k, v);
                                    }
                                },
                                None => {
                                    cfg.set_bool(opt, true);
                                }
                            }
                        }
                    }
                }
                "-O" => {
                    if let Some(feats) = it.next() {
                        for token in feats.split(',').filter(|t| !t.is_empty()) {
                            match token.strip_prefix('^') {
                                Some(name) => cfg.set_bool(name, false),
                                None => cfg.set_bool(token, true),
                            };
                        }
                    }
                }
                other if other.starts_with('-') => {
                    // unknown option: keep it (with its value, if any) so
                    // distinct invalid configs stay distinct
                    let name = other.trim_start_matches('-').to_string();
                    match it.peek() {
                        Some(v) if !v.starts_with('-') => {
                            let v = it.next().expect("peeked");
                            cfg.set_str(&name, v);
                        }
                        _ => {
                            cfg.set_bool(&name, true);
                        }
                    }
                }
                operand => cfg.operands.push(operand.to_string()),
            }
        }
        cfg
    }

    /// A lenient typed view of a `mount -o` option string: bare tokens
    /// lower to booleans, `key=value` tokens to integers where possible
    /// and strings otherwise. A `no<param>` token where `<param>` is a
    /// registered mount boolean lowers to `param = false` (mirroring
    /// `MountCmd::parse_typed`), so an explicit disable is present but
    /// disengaged rather than a distinct phantom parameter; tokens that
    /// are themselves registered (`noload`, `norecovery`) stay as-is.
    pub fn from_mount_opts_lenient(opts: &str) -> Self {
        let mut cfg = TypedConfig::new("mount");
        for tok in opts.split(',').filter(|t| !t.is_empty()) {
            match tok.split_once('=') {
                Some((k, v)) => match v.parse::<i64>() {
                    Ok(i) => {
                        cfg.set_int(k, i);
                    }
                    Err(_) => {
                        cfg.set_str(k, v);
                    }
                },
                None => {
                    if crate::mount_cmd::is_direct_bool_token(tok) {
                        cfg.set_bool(tok, true);
                    } else if let Some(base) =
                        tok.strip_prefix("no").filter(|b| crate::mount_cmd::is_direct_bool_token(b))
                    {
                        cfg.set_bool(base, false);
                    } else {
                        cfg.set_bool(tok, true);
                    }
                }
            }
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Stage;

    #[test]
    fn canonical_key_is_order_independent() {
        let mut a = TypedConfig::new("mke2fs");
        a.set_int("blocksize", 1024).set_bool("extent", true);
        let mut b = TypedConfig::new("mke2fs");
        b.set_bool("extent", true).set_int("blocksize", 1024);
        assert_eq!(a.canonical_key(), b.canonical_key());
        // a differing value changes the key
        let mut c = a.clone();
        c.set_int("blocksize", 2048);
        assert_ne!(a.canonical_key(), c.canonical_key());
    }

    #[test]
    fn canonical_fnv1a_matches_keyed_bytes() {
        let fnv = |seed: u64, s: &str| {
            s.bytes().fold(seed, |h, b| (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3))
        };
        let mut cfg = TypedConfig::new("mke2fs");
        cfg.set_int("blocksize", 1024)
            .set_int("neg", -42)
            .set_int("min", i64::MIN)
            .set_bool("extent", true)
            .set_bool("off", false)
            .set_str("mode", "journal");
        cfg.operands.push("/dev/sda1".to_string());
        cfg.operands.push("4096".to_string());
        let seed = 0xcbf2_9ce4_8422_2325;
        assert_eq!(cfg.canonical_fnv1a(seed), fnv(seed, &cfg.canonical_key()));
        // and from a non-default seed (mid-stream continuation)
        assert_eq!(cfg.canonical_fnv1a(7), fnv(7, &cfg.canonical_key()));
        let empty = TypedConfig::new("mount");
        assert_eq!(empty.canonical_fnv1a(seed), fnv(seed, &empty.canonical_key()));
    }

    #[test]
    fn validate_against_registry() {
        let registry = vec![
            ParamSpec::new("t", "n", ParamType::Int { min: 1, max: 9 }, Stage::Create, ""),
            ParamSpec::new(
                "t",
                "mode",
                ParamType::Enum(vec!["a".into(), "b".into()]),
                Stage::Create,
                "",
            ),
        ];
        let mut ok = TypedConfig::new("t");
        ok.set_int("n", 5).set_str("mode", "a");
        assert!(ok.validate(&registry).is_ok());

        let mut range = TypedConfig::new("t");
        range.set_int("n", 10);
        assert!(matches!(range.validate(&registry), Err(ValidationError::OutOfRange { .. })));

        let mut en = TypedConfig::new("t");
        en.set_str("mode", "z");
        assert!(matches!(en.validate(&registry), Err(ValidationError::NotInEnum { .. })));

        let mut unknown = TypedConfig::new("t");
        unknown.set_bool("ghost", true);
        assert!(matches!(unknown.validate(&registry), Err(ValidationError::UnknownParam { .. })));
    }

    #[test]
    fn lenient_mkfs_view_collapses_argument_order() {
        let a: Vec<String> =
            ["-b", "1024", "-O", "extent,sparse_super2", "-m", "5"].iter().map(|s| s.to_string()).collect();
        let b: Vec<String> =
            ["-m", "5", "-O", "sparse_super2,extent", "-b", "1024"].iter().map(|s| s.to_string()).collect();
        assert_eq!(
            TypedConfig::from_mkfs_args_lenient(&a).canonical_key(),
            TypedConfig::from_mkfs_args_lenient(&b).canonical_key()
        );
        // ^-negation lowers to false and stays distinct from absent
        let c: Vec<String> = ["-O", "^extent"].iter().map(|s| s.to_string()).collect();
        let view = TypedConfig::from_mkfs_args_lenient(&c);
        assert_eq!(view.get("extent"), Some(&TypedValue::Bool(false)));
    }

    #[test]
    fn lenient_mount_view() {
        let v = TypedConfig::from_mount_opts_lenient("ro,data=journal,commit=5");
        assert_eq!(v.get("ro"), Some(&TypedValue::Bool(true)));
        assert_eq!(v.get("data"), Some(&TypedValue::Str("journal".into())));
        assert_eq!(v.get("commit"), Some(&TypedValue::Int(5)));
        assert_eq!(
            TypedConfig::from_mount_opts_lenient("").canonical_key(),
            TypedConfig::from_mount_opts_lenient("").canonical_key()
        );
    }
}
