//! `mount` — the mount-stage utility.
//!
//! Parses `mount -o option[,option...]` strings into typed
//! [`MountOptions`] and drives [`Ext4Fs::mount`], where the kernel-level
//! validation (`ext4_fill_super`) happens. Several mount options carry
//! cross-component dependencies on `mke2fs` features recorded in the
//! superblock (e.g., `dax` vs `inline_data`) — the paper's CCD pattern.

use blockdev::BlockDevice;
use ext4sim::{DataMode, Ext4Fs, MountOptions};

use crate::cli::CliError;
use crate::manual::{DocConstraint, ManualOption, ManualPage};
use crate::params::{ParamSpec, ParamType, Stage};
use crate::typed::TypedConfig;
use crate::ToolError;

/// Tokens that lower to their own registered parameter set to `true`.
const DIRECT_BOOL_TOKENS: [&str; 25] = [
    "ro",
    "rw",
    "dax",
    "block_validity",
    "noload",
    "norecovery",
    "acl",
    "user_xattr",
    "barrier",
    "discard",
    "delalloc",
    "lazytime",
    "auto_da_alloc",
    "dioread_nolock",
    "i_version",
    "grpid",
    "minixdf",
    "bsddf",
    "debug",
    "abort",
    "quota",
    "usrquota",
    "grpquota",
    "prjquota",
    "init_itable",
];

/// Whether a bare mount token lowers to its own registered boolean
/// parameter (shared with the lenient typed view in [`crate::typed`]).
pub(crate) fn is_direct_bool_token(tok: &str) -> bool {
    DIRECT_BOOL_TOKENS.contains(&tok)
}

/// A parsed `mount` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MountCmd {
    opts: MountOptions,
    raw: Vec<String>,
}

impl MountCmd {
    /// Builds from typed options.
    pub fn from_options(opts: MountOptions) -> Self {
        MountCmd { opts, raw: Vec::new() }
    }

    /// Parses an `-o` option string (`"ro,dax,data=ordered"`).
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Cli`] for unknown options or malformed
    /// values. (Cross-feature validation happens at mount time, in the
    /// kernel-level check.)
    pub fn from_option_string(s: &str) -> Result<Self, ToolError> {
        let mut opts = MountOptions::default();
        let mut raw = Vec::new();
        for tok in s.split(',').filter(|t| !t.is_empty()) {
            raw.push(tok.to_string());
            match tok {
                "ro" => opts.read_only = true,
                "rw" => opts.read_only = false,
                "dax" => opts.dax = true,
                "block_validity" => opts.block_validity = true,
                "noblock_validity" => opts.block_validity = false,
                "noload" | "norecovery" => opts.noload = true,
                "force" => opts.force = true,
                // accepted no-op options (present on the real surface)
                "acl" | "noacl" | "user_xattr" | "nouser_xattr" | "barrier" | "nobarrier"
                | "discard" | "nodiscard" | "delalloc" | "nodelalloc" | "lazytime"
                | "nolazytime" | "auto_da_alloc" | "noauto_da_alloc" | "dioread_nolock"
                | "dioread_lock" | "i_version" | "grpid" | "nogrpid" | "minixdf" | "bsddf"
                | "debug" | "abort" | "quota" | "noquota" | "usrquota" | "grpquota"
                | "prjquota" | "oldalloc" | "orlov" | "init_itable" | "noinit_itable" => {}
                _ => match tok.split_once('=') {
                    Some(("data", v)) => {
                        opts.data = DataMode::parse(v).ok_or_else(|| CliError::BadValue {
                            option: "data".to_string(),
                            value: v.to_string(),
                            expected: "ordered|journal|writeback".to_string(),
                        })?;
                    }
                    Some(("errors", v)) => {
                        opts.errors = Some(match v {
                            "continue" => 1,
                            "remount-ro" => 2,
                            "panic" => 3,
                            _ => {
                                return Err(CliError::BadValue {
                                    option: "errors".to_string(),
                                    value: v.to_string(),
                                    expected: "continue|remount-ro|panic".to_string(),
                                }
                                .into())
                            }
                        });
                    }
                    Some(("commit", v)) | Some(("stripe", v)) | Some(("resuid", v))
                    | Some(("resgid", v)) | Some(("inode_readahead_blks", v))
                    | Some(("max_batch_time", v)) | Some(("min_batch_time", v))
                    | Some(("journal_ioprio", v)) | Some(("sb", v)) => {
                        // integer-valued accepted options
                        v.parse::<u64>().map_err(|_| CliError::BadValue {
                            option: tok.split('=').next().unwrap_or(tok).to_string(),
                            value: v.to_string(),
                            expected: "an integer".to_string(),
                        })?;
                    }
                    _ => return Err(CliError::UnknownOption(tok.to_string()).into()),
                },
            }
        }
        Ok(MountCmd { opts, raw })
    }

    /// [`MountCmd::from_option_string`] plus the canonical
    /// [`TypedConfig`] lowering of the option string. Validation (and
    /// therefore every error) is exactly `from_option_string`'s.
    ///
    /// # Errors
    ///
    /// Exactly those of [`MountCmd::from_option_string`].
    pub fn parse_typed(s: &str) -> Result<(Self, TypedConfig), ToolError> {
        let cmd = Self::from_option_string(s)?;
        let mut cfg = TypedConfig::new("mount");
        for tok in cmd.raw.iter().map(String::as_str) {
            if DIRECT_BOOL_TOKENS.contains(&tok) {
                cfg.set_bool(tok, true);
                continue;
            }
            // "no<param>" negations of registered booleans
            if let Some(base) = tok.strip_prefix("no") {
                if DIRECT_BOOL_TOKENS.contains(&base) {
                    cfg.set_bool(base, false);
                    continue;
                }
            }
            if tok == "dioread_lock" {
                cfg.set_bool("dioread_nolock", false);
                continue;
            }
            match tok.split_once('=') {
                Some(("data", v)) | Some(("errors", v)) => {
                    let name = if tok.starts_with("data") { "data" } else { "errors" };
                    cfg.set_str(name, v);
                }
                Some((k, v)) => {
                    // the integer-valued accepted options
                    if let Ok(i) = v.parse::<i64>() {
                        cfg.set_int(k, i);
                    }
                }
                // remaining bare no-ops (oldalloc, orlov, ...) have no
                // registered parameter and stay out of the typed view
                None => {}
            }
        }
        Ok((cmd, cfg))
    }

    /// The typed options.
    pub fn options(&self) -> &MountOptions {
        &self.opts
    }

    /// The raw option tokens as given.
    pub fn raw_options(&self) -> &[String] {
        &self.raw
    }

    /// Mounts `dev` with these options.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Fs`] for kernel-level rejections (the
    /// `ext4_fill_super` checks).
    pub fn run<D: BlockDevice>(&self, dev: D) -> Result<Ext4Fs<D>, ToolError> {
        Ext4Fs::mount(dev, &self.opts).map_err(ToolError::Fs)
    }
}

/// The `mount` (ext4 options) parameter table — 36 parameters.
pub fn param_table() -> Vec<ParamSpec> {
    let c = "mount";
    let b = || ParamType::Bool;
    let int = |min, max| ParamType::Int { min, max };
    vec![
        ParamSpec::new(c, "ro", b(), Stage::Mount, "mount read-only"),
        ParamSpec::new(c, "rw", b(), Stage::Mount, "mount read-write"),
        ParamSpec::new(c, "dax", b(), Stage::Mount, "direct access to persistent memory"),
        ParamSpec::new(c, "data", ParamType::Enum(vec!["ordered".into(), "journal".into(), "writeback".into()]), Stage::Mount, "journalling mode"),
        ParamSpec::new(c, "errors", ParamType::Enum(vec!["continue".into(), "remount-ro".into(), "panic".into()]), Stage::Mount, "behaviour on errors"),
        ParamSpec::new(c, "block_validity", b(), Stage::Mount, "validate block mappings against metadata"),
        ParamSpec::new(c, "noload", b(), Stage::Mount, "skip journal replay"),
        ParamSpec::new(c, "norecovery", b(), Stage::Mount, "alias of noload"),
        ParamSpec::new(c, "acl", b(), Stage::Mount, "POSIX ACLs"),
        ParamSpec::new(c, "user_xattr", b(), Stage::Mount, "user extended attributes"),
        ParamSpec::new(c, "barrier", b(), Stage::Mount, "write barriers"),
        ParamSpec::new(c, "commit", int(1, 900), Stage::Mount, "journal commit interval (seconds)"),
        ParamSpec::new(c, "discard", b(), Stage::Mount, "issue discards"),
        ParamSpec::new(c, "delalloc", b(), Stage::Mount, "delayed allocation"),
        ParamSpec::new(c, "lazytime", b(), Stage::Mount, "lazy timestamp updates"),
        ParamSpec::new(c, "auto_da_alloc", b(), Stage::Mount, "replace-via-rename heuristics"),
        ParamSpec::new(c, "inode_readahead_blks", int(0, 1 << 30), Stage::Mount, "inode readahead (power of 2)"),
        ParamSpec::new(c, "stripe", int(0, 1 << 30), Stage::Mount, "stripe size for allocator"),
        ParamSpec::new(c, "max_batch_time", int(0, 1 << 30), Stage::Mount, "max commit batching time (us)"),
        ParamSpec::new(c, "min_batch_time", int(0, 1 << 30), Stage::Mount, "min commit batching time (us)"),
        ParamSpec::new(c, "init_itable", b(), Stage::Mount, "background inode table zeroing"),
        ParamSpec::new(c, "dioread_nolock", b(), Stage::Mount, "lockless direct I/O reads"),
        ParamSpec::new(c, "i_version", b(), Stage::Mount, "64-bit inode version"),
        ParamSpec::new(c, "grpid", b(), Stage::Mount, "BSD group-id semantics"),
        ParamSpec::new(c, "resuid", int(0, u32::MAX as i64), Stage::Mount, "uid allowed to use reserved blocks"),
        ParamSpec::new(c, "resgid", int(0, u32::MAX as i64), Stage::Mount, "gid allowed to use reserved blocks"),
        ParamSpec::new(c, "sb", int(0, i64::MAX), Stage::Mount, "alternate superblock location"),
        ParamSpec::new(c, "quota", b(), Stage::Mount, "enable quota"),
        ParamSpec::new(c, "usrquota", b(), Stage::Mount, "user quota"),
        ParamSpec::new(c, "grpquota", b(), Stage::Mount, "group quota"),
        ParamSpec::new(c, "prjquota", b(), Stage::Mount, "project quota"),
        ParamSpec::new(c, "minixdf", b(), Stage::Mount, "minix statfs semantics"),
        ParamSpec::new(c, "bsddf", b(), Stage::Mount, "BSD statfs semantics"),
        ParamSpec::new(c, "debug", b(), Stage::Mount, "debug output"),
        ParamSpec::new(c, "abort", b(), Stage::Mount, "abort the journal (debug)"),
        ParamSpec::new(c, "journal_ioprio", int(0, 7), Stage::Mount, "journal I/O priority"),
    ]
}

/// The structured `mount(8)` (ext4 section) manual page.
///
/// Documents the `data=journal` requirement but — like the real page at
/// the time of the paper — is silent on the `dax`/`inline_data` conflict
/// and the `dax` block-size requirement (two of the paper's 12
/// documentation issues).
pub fn manual() -> ManualPage {
    ManualPage {
        component: "mount".to_string(),
        synopsis: "mount -t ext4 [-o option[,option]...] device dir".to_string(),
        description: "Mount an ext4 file system with the given options.".to_string(),
        options: vec![
            ManualOption::flag("ro", "Mount the filesystem read-only."),
            ManualOption::valued("data", "mode", "Specifies the journalling mode for file data: journal, ordered, or writeback.")
                .with(DocConstraint::DataType { param: "data".into(), ty: "enum".into() })
                .with(DocConstraint::CrossComponent {
                    param: "data".into(),
                    component: "mke2fs".into(),
                    other: "has_journal".into(),
                    relation: "data=journal requires a journal on the file system".into(),
                }),
            ManualOption::flag("dax", "Use direct access (no page cache) for files on this file system. Cannot be used with data=journal.")
                .with(DocConstraint::Conflicts { param: "dax".into(), other: "data".into() }),
            // GAP(paper): dax requires block size == page size — missing.
            // GAP(paper): dax conflicts with the inline_data feature —
            // missing.
            ManualOption::valued("errors", "behaviour", "Define the behaviour when an error is encountered: continue, remount-ro, or panic.")
                .with(DocConstraint::DataType { param: "errors".into(), ty: "enum".into() }),
            ManualOption::flag("noload", "Don't load the journal on mounting. A read-write mount requires journal recovery.")
                .with(DocConstraint::CrossComponent {
                    param: "noload".into(),
                    component: "mke2fs".into(),
                    other: "has_journal".into(),
                    relation: "only meaningful on file systems with a journal".into(),
                })
                .with(DocConstraint::Requires { param: "noload".into(), other: "ro".into() }),
            ManualOption::flag("block_validity", "Enable the in-kernel facility for tracking filesystem metadata blocks within internal data structures."),
            ManualOption::valued("commit", "nrsec", "Sync all data and metadata every nrsec seconds. Valid values are 1 to 900.")
                .with(DocConstraint::DataType { param: "commit".into(), ty: "integer".into() })
                .with(DocConstraint::ValueRange { param: "commit".into(), min: 1, max: 900 }),
            ManualOption::valued("stripe", "n", "Number of filesystem blocks that mballoc will try to use for allocation size and alignment, at most 65536.")
                .with(DocConstraint::DataType { param: "stripe".into(), ty: "integer".into() })
                .with(DocConstraint::ValueRange { param: "stripe".into(), min: 0, max: 65536 }),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::MemDevice;
    use ext4sim::{MkfsParams, IncompatFeatures};

    fn image_1k() -> MemDevice {
        let fs = Ext4Fs::format(
            MemDevice::new(1024, 8192),
            &MkfsParams { block_size: Some(1024), ..MkfsParams::default() },
        )
        .unwrap();
        fs.unmount().unwrap()
    }

    fn image_4k() -> MemDevice {
        let fs = Ext4Fs::format(
            MemDevice::new(4096, 8192),
            &MkfsParams { block_size: Some(4096), ..MkfsParams::default() },
        )
        .unwrap();
        fs.unmount().unwrap()
    }

    #[test]
    fn parse_common_options() {
        let m = MountCmd::from_option_string("ro,dax,data=writeback,errors=panic").unwrap();
        assert!(m.options().read_only);
        assert!(m.options().dax);
        assert_eq!(m.options().data, DataMode::Writeback);
        assert_eq!(m.options().errors, Some(3));
        assert_eq!(m.raw_options().len(), 4);
    }

    #[test]
    fn unknown_option_rejected() {
        assert!(MountCmd::from_option_string("turbo").is_err());
        assert!(MountCmd::from_option_string("data=fast").is_err());
        assert!(MountCmd::from_option_string("errors=shrug").is_err());
        assert!(MountCmd::from_option_string("commit=soon").is_err());
    }

    #[test]
    fn empty_tokens_ignored() {
        let m = MountCmd::from_option_string("ro,,rw").unwrap();
        assert!(!m.options().read_only); // rw wins, given last
    }

    #[test]
    fn mount_runs_on_clean_image() {
        let m = MountCmd::from_option_string("ro").unwrap();
        let fs = m.run(image_1k()).unwrap();
        assert_eq!(fs.state(), ext4sim::FsState::MountedRo);
    }

    #[test]
    fn dax_on_1k_blocks_is_a_ccd_violation() {
        let m = MountCmd::from_option_string("dax").unwrap();
        let err = m.run(image_1k()).unwrap_err();
        assert!(err.to_string().contains("dax") || err.to_string().contains("DAX"));
    }

    #[test]
    fn dax_on_4k_blocks_mounts() {
        let m = MountCmd::from_option_string("dax").unwrap();
        m.run(image_4k()).unwrap();
    }

    #[test]
    fn dax_vs_inline_data_ccd() {
        let mut params = MkfsParams { block_size: Some(4096), ..MkfsParams::default() };
        params.features.incompat.insert(IncompatFeatures::INLINE_DATA);
        let dev =
            Ext4Fs::format(MemDevice::new(4096, 8192), &params).unwrap().unmount().unwrap();
        let m = MountCmd::from_option_string("dax").unwrap();
        assert!(m.run(dev).is_err());
    }

    #[test]
    fn data_journal_without_journal_feature_rejected() {
        let mut params = MkfsParams { block_size: Some(1024), ..MkfsParams::default() };
        params.features.compat.remove(ext4sim::CompatFeatures::HAS_JOURNAL);
        let dev =
            Ext4Fs::format(MemDevice::new(1024, 8192), &params).unwrap().unmount().unwrap();
        let m = MountCmd::from_option_string("data=journal").unwrap();
        assert!(m.run(dev).is_err());
    }

    #[test]
    fn accepted_noop_options_parse() {
        let m = MountCmd::from_option_string(
            "acl,user_xattr,barrier,discard,delalloc,lazytime,commit=5,stripe=16",
        )
        .unwrap();
        assert_eq!(m.raw_options().len(), 8);
    }

    #[test]
    fn param_table_size() {
        assert_eq!(param_table().len(), 36);
    }

    #[test]
    fn manual_gaps_for_dax() {
        let page = manual();
        // dax documents only its conflict with data=journal; the
        // block-size requirement and the inline_data conflict (both
        // cross-component dependencies on mke2fs parameters) are absent —
        // exactly the documentation gaps ConDocCk flags
        let dax = page.option("dax").unwrap();
        assert_eq!(dax.constraints.len(), 1);
        assert!(page
            .constraints_for("dax")
            .iter()
            .all(|c| !matches!(c, DocConstraint::CrossComponent { .. })));
        // data= documents its CCD on has_journal
        assert!(page
            .constraints_for("data")
            .iter()
            .any(|c| matches!(c, DocConstraint::CrossComponent { .. })));
    }
}
