//! The Ext4 ecosystem utilities, re-implemented over `ext4sim`.
//!
//! The paper (§2) treats the file system *plus its utilities* as one
//! configuration ecosystem, because parameters flow across component
//! boundaries through the shared metadata structures. This crate provides
//! the five components the paper studies:
//!
//! | Component | Stage | Module |
//! |-----------|----------|--------------|
//! | `mke2fs` | create | [`mke2fs`] |
//! | `mount` | mount | [`mount_cmd`] |
//! | `e4defrag` | online | [`e4defrag`] |
//! | `resize2fs` | offline | [`resize2fs`] |
//! | `e2fsck` | offline | [`e2fsck`] |
//!
//! plus two supporting tools outside the paper's analyzed component set:
//! [`dumpe2fs`] (read-only image inspection) and [`tune2fs`] (offline
//! configuration mutation with dependency re-validation).
//!
//! Every utility carries:
//!
//! * a CLI-style parameter parser with *utility-level* validation (the
//!   man-page constraints), distinct from the kernel-level validation in
//!   `ext4sim` — the two levels whose interplay produces the paper's
//!   cross-component dependencies;
//! * a structured [`manual::ManualPage`] used by the ConDocCk experiment
//!   (the manuals reproduce the 12 documentation gaps of §4.3 of the
//!   paper);
//! * a [`params::ParamSpec`] table used by the Table 2 coverage study.
//!
//! `resize2fs` faithfully preserves the paper's Figure 1 bug: expanding a
//! file system that has the `sparse_super2` feature computes the last
//! group's free-block count before the new blocks are added, corrupting
//! the free-space accounting (see [`resize2fs::ResizeQuirks`]).

pub mod cli;
pub mod component;
pub mod dumpe2fs;
pub mod e2fsck;
pub mod e4defrag;
pub mod manual;
pub mod mke2fs;
pub mod mount_cmd;
pub mod params;
pub mod resize2fs;
pub mod tune2fs;
pub mod typed;

pub use cli::{CliError, ParsedArgs};
pub use component::{component, ecosystem, registry, Component, RunOutcome};
pub use dumpe2fs::{Dumpe2fs, FsDump, GroupDump};
pub use e2fsck::{backup_superblock_candidates, E2fsck, FsckMode, FsckResult};
pub use e4defrag::{DefragReport, E4defrag};
pub use manual::{DocConstraint, ManualOption, ManualPage};
pub use mke2fs::Mke2fs;
pub use mount_cmd::MountCmd;
pub use params::{ParamSpec, ParamType};
pub use resize2fs::{Resize2fs, ResizeQuirks, ResizeResult};
pub use tune2fs::{Tune2fs, TuneReport};
pub use typed::{TypedConfig, TypedValue, ValidationError};

/// All component names of the ecosystem, in the paper's order.
pub const COMPONENTS: [&str; 6] = ["mke2fs", "mount", "ext4", "e4defrag", "resize2fs", "e2fsck"];

/// Errors shared by all utilities.
#[derive(Debug)]
pub enum ToolError {
    /// Command-line parsing or utility-level validation failed.
    Cli(cli::CliError),
    /// The file system rejected the operation (kernel-level validation or
    /// a runtime failure).
    Fs(ext4sim::FsError),
    /// Utility-specific refusal (e.g., `resize2fs` shrinking below the
    /// used size).
    Refused(String),
}

impl std::fmt::Display for ToolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ToolError::Cli(e) => write!(f, "{e}"),
            ToolError::Fs(e) => write!(f, "{e}"),
            ToolError::Refused(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ToolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ToolError::Cli(e) => Some(e),
            ToolError::Fs(e) => Some(e),
            ToolError::Refused(_) => None,
        }
    }
}

impl From<cli::CliError> for ToolError {
    fn from(e: cli::CliError) -> Self {
        ToolError::Cli(e)
    }
}

impl From<ext4sim::FsError> for ToolError {
    fn from(e: ext4sim::FsError) -> Self {
        ToolError::Fs(e)
    }
}
