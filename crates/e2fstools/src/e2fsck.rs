//! `e2fsck` — the offline checker/repairer.
//!
//! Wraps the five-pass consistency check of `ext4sim::check_image` with
//! the real tool's CLI semantics: `-n` (check only), `-p` (preen: fix
//! only safe issues, bail on anything serious), `-y` (fix everything),
//! `-f` (force a check of a clean file system), and `-b`/`-B` (recover
//! from a backup superblock — whose valid locations depend on the
//! `mke2fs` sparse-superblock features, one of the paper's
//! cross-component dependencies).

use blockdev::BlockDevice;
use ext4sim::{
    check_image, state, CheckReport, Ext4Fs, FsError, InconsistencyKind, InodeNo, ROOT_INODE,
};

use crate::cli::{self, CliError};
use crate::manual::{DocConstraint, ManualOption, ManualPage};
use crate::params::{ParamSpec, ParamType, Stage};
use crate::typed::TypedConfig;
use crate::ToolError;

/// Boolean options of the `e2fsck` CLI surface.
const FLAG_OPTS: [&str; 8] = ["p", "n", "y", "f", "c", "d", "t", "v"];
/// Valued options of the `e2fsck` CLI surface.
const VALUE_OPTS: [&str; 6] = ["b", "B", "E", "j", "l", "z"];

/// How invasive the run may be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsckMode {
    /// `-n`: open read-only, answer "no" to every fix.
    Check,
    /// `-p`: preen — fix safe problems silently, bail on serious ones.
    Preen,
    /// `-y`: answer "yes" to every fix.
    Fix,
}

/// A parsed `e2fsck` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E2fsck {
    mode: FsckMode,
    force: bool,
    backup_superblock: Option<u64>,
    backup_blocksize: Option<u32>,
}

/// Result of an `e2fsck` run. `exit_code` follows the real convention:
/// 0 = clean, 1 = errors corrected, 4 = errors left uncorrected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckResult {
    /// Findings of the initial check (empty when the clean-skip path was
    /// taken).
    pub report: CheckReport,
    /// Human-readable descriptions of each applied fix.
    pub fixes: Vec<String>,
    /// Exit code (0/1/4).
    pub exit_code: i32,
    /// Whether the check was skipped because the image was clean.
    pub skipped_clean: bool,
}

impl E2fsck {
    /// Parses `e2fsck [-p|-n|-y] [-f] [-b superblock] [-B blocksize]
    /// device`.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Cli`] for unknown options and for the mutual
    /// exclusions the real tool enforces (`-p`/`-n`/`-y` are pairwise
    /// exclusive; `-B` requires `-b`).
    pub fn from_args(argv: &[&str]) -> Result<Self, ToolError> {
        let parsed = cli::parse(argv, &FLAG_OPTS, &VALUE_OPTS)?;
        if parsed.operands.len() != 1 {
            return Err(CliError::BadOperands("exactly one device is required".to_string()).into());
        }
        // CPDs: -p, -n and -y are pairwise exclusive (real e2fsck: "only
        // one of the options -p/-a, -n or -y may be specified")
        let p = parsed.has_flag("p");
        let n = parsed.has_flag("n");
        let y = parsed.has_flag("y");
        if (p && (n || y)) || (n && y) {
            let (a, b) = if p && n {
                ("-p", "-n")
            } else if p && y {
                ("-p", "-y")
            } else {
                ("-n", "-y")
            };
            return Err(CliError::Conflict { a: a.to_string(), b: b.to_string() }.into());
        }
        let backup_superblock = parsed.int_value("b")?;
        let backup_blocksize = parsed.int_value("B")?.map(|v| v as u32);
        // CPD: -B is only meaningful together with -b
        if backup_blocksize.is_some() && backup_superblock.is_none() {
            return Err(CliError::Conflict { a: "-B".to_string(), b: "(missing -b)".to_string() }.into());
        }
        let mode = if y {
            FsckMode::Fix
        } else if p {
            FsckMode::Preen
        } else {
            FsckMode::Check // -n and the default both only report
        };
        Ok(E2fsck { mode, force: parsed.has_flag("f"), backup_superblock, backup_blocksize })
    }

    /// Parses `argv` and additionally lowers it into a [`TypedConfig`]
    /// validated against [`param_table`].
    ///
    /// Validation is delegated entirely to [`E2fsck::from_args`], so the
    /// error surface is byte-identical to the legacy path.
    ///
    /// # Errors
    ///
    /// Exactly those of [`E2fsck::from_args`].
    pub fn parse_typed(argv: &[&str]) -> Result<(Self, TypedConfig), ToolError> {
        let tool = Self::from_args(argv)?;
        let parsed = cli::parse(argv, &FLAG_OPTS, &VALUE_OPTS).expect("validated by from_args");
        let mut cfg = TypedConfig::new("e2fsck");
        for (flag, name) in [
            ("p", "preen"),
            ("n", "no"),
            ("y", "yes"),
            ("f", "force"),
            ("c", "badblocks"),
            ("d", "debug"),
            ("t", "timing"),
            ("v", "verbose"),
        ] {
            if parsed.has_flag(flag) {
                cfg.set_bool(name, true);
            }
        }
        if let Some(b) = parsed.int_value("b").expect("validated by from_args") {
            cfg.set_int("superblock", b as i64);
        }
        if let Some(bs) = parsed.int_value("B").expect("validated by from_args") {
            cfg.set_int("blocksize", bs as i64);
        }
        if let Some(j) = parsed.value("j") {
            cfg.set_str("external_journal", j);
        }
        if let Some(l) = parsed.value("l") {
            cfg.set_str("badblocks_list", l);
        }
        if let Some(z) = parsed.value("z") {
            cfg.set_str("undo_file", z);
        }
        if let Some(device) = parsed.operands.first() {
            cfg.operands.push(device.clone());
        }
        Ok((tool, cfg))
    }

    /// Builds a typed invocation.
    pub fn with_mode(mode: FsckMode) -> Self {
        E2fsck { mode, force: false, backup_superblock: None, backup_blocksize: None }
    }

    /// Forces a check even when the image is marked clean (`-f`).
    pub fn forced(mut self) -> Self {
        self.force = true;
        self
    }

    /// Recovers using the backup superblock at the given file-system
    /// block (`-b`), with `-B` giving the block size.
    pub fn with_backup_superblock(mut self, block: u64, blocksize: u32) -> Self {
        self.backup_superblock = Some(block);
        self.backup_blocksize = Some(blocksize);
        self
    }

    /// The selected mode.
    pub fn mode(&self) -> FsckMode {
        self.mode
    }

    /// Runs the check (and repairs, per mode) on `dev`.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Fs`] when the image cannot be opened at all
    /// (no usable superblock).
    pub fn run<D: BlockDevice>(&self, dev: D) -> Result<(D, FsckResult), ToolError> {
        let mut fs = match self.backup_superblock {
            Some(block) => {
                let bs = u64::from(self.backup_blocksize.unwrap_or(1024));
                Ext4Fs::open_for_maintenance_at(dev, block * bs)?
            }
            None => Ext4Fs::open_for_maintenance(dev)?,
        };

        // like the real tool, recover the journal before checking — but
        // never in -n mode, which must not write to the device
        if self.mode != FsckMode::Check && self.backup_superblock.is_none() {
            if let Ok(Some(region)) = fs.journal_region() {
                let bs = fs.layout().block_size;
                let mut journal = ext4sim::Journal::open(fs.device(), region, bs)?;
                let fixes_from_replay = journal.replay(fs.device_mut())?;
                if fixes_from_replay > 0 {
                    // re-read the recovered metadata (replay wrote to the
                    // device behind the in-memory copies)
                    let dev = fs.into_device_dirty();
                    fs = Ext4Fs::open_for_maintenance(dev)?;
                }
            }
        }

        // the clean-skip path: like the real tool, a clean image is not
        // checked unless -f is given
        if fs.superblock().is_clean() && !self.force && self.backup_superblock.is_none() {
            let dev = fs.unmount()?;
            return Ok((
                dev,
                FsckResult {
                    report: CheckReport::default(),
                    fixes: Vec::new(),
                    exit_code: 0,
                    skipped_clean: true,
                },
            ));
        }

        let report = check_image(&fs)?;
        let mut fixes = Vec::new();
        let mut uncorrected = 0usize;

        match self.mode {
            FsckMode::Check => {
                uncorrected = report.inconsistencies.len();
                // -n must leave the image untouched, including its state
                let dev = fs.into_device_dirty();
                let exit_code = if uncorrected == 0 { 0 } else { 4 };
                return Ok((
                    dev,
                    FsckResult { report, fixes, exit_code, skipped_clean: false },
                ));
            }
            FsckMode::Preen => {
                // preen fixes only "safe" issues: counters and state
                let serious = report.inconsistencies.iter().any(|i| {
                    !matches!(
                        i.kind,
                        InconsistencyKind::SuperFreeBlocks { .. }
                            | InconsistencyKind::GroupFreeBlocks { .. }
                            | InconsistencyKind::SuperFreeInodes { .. }
                            | InconsistencyKind::GroupFreeInodes { .. }
                            | InconsistencyKind::NotCleanlyUnmounted
                            | InconsistencyKind::StaleBackupSuper { .. }
                    )
                });
                if serious {
                    // "UNEXPECTED INCONSISTENCY; RUN fsck MANUALLY"
                    let dev = fs.into_device_dirty();
                    return Ok((
                        dev,
                        FsckResult {
                            report,
                            fixes,
                            exit_code: 4,
                            skipped_clean: false,
                        },
                    ));
                }
                repair_counters_and_state(&mut fs, &report, &mut fixes)?;
            }
            FsckMode::Fix => {
                repair_structure(&mut fs, &report, &mut fixes)?;
                repair_counters_and_state(&mut fs, &report, &mut fixes)?;
                // recount after structural repairs (they free/claim space)
                let recount = check_image(&fs)?;
                repair_counters_and_state(&mut fs, &recount, &mut fixes)?;
            }
        }

        // verify
        let post = check_image(&fs)?;
        uncorrected += post.inconsistencies.len();
        let exit_code = if uncorrected > 0 {
            4
        } else if fixes.is_empty() {
            0
        } else {
            1
        };
        let dev = fs.unmount()?;
        Ok((dev, FsckResult { report, fixes, exit_code, skipped_clean: false }))
    }
}

/// The block numbers a recovery tool should try with `-b`: the first
/// block of every backup-bearing group. Which groups those are depends
/// on the `mke2fs` sparse-superblock features (`sparse_super` puts them
/// in groups 1 and powers of 3/5/7; `sparse_super2` in exactly the two
/// recorded groups) — the cross-component dependency behind the real
/// tool's "try 8193, 16385, 32769..." hint.
pub fn backup_superblock_candidates(layout: &ext4sim::Layout) -> Vec<u64> {
    layout.backup_groups().iter().map(|&g| layout.group_first_block(g)).collect()
}

fn repair_counters_and_state<D: BlockDevice>(
    fs: &mut Ext4Fs<D>,
    report: &CheckReport,
    fixes: &mut Vec<String>,
) -> Result<(), FsError> {
    for inc in &report.inconsistencies {
        match &inc.kind {
            InconsistencyKind::GroupFreeBlocks { group, actual, recorded } => {
                fs.groups_mut()[*group as usize].free_blocks_count = *actual;
                fixes.push(format!(
                    "group {group}: free blocks count {recorded} -> {actual}"
                ));
            }
            InconsistencyKind::SuperFreeBlocks { actual, recorded } => {
                fs.superblock_mut().free_blocks_count = *actual;
                fixes.push(format!("free blocks count {recorded} -> {actual}"));
            }
            InconsistencyKind::GroupFreeInodes { group, actual, recorded } => {
                fs.groups_mut()[*group as usize].free_inodes_count = *actual;
                fixes.push(format!(
                    "group {group}: free inodes count {recorded} -> {actual}"
                ));
            }
            InconsistencyKind::SuperFreeInodes { actual, recorded } => {
                fs.superblock_mut().free_inodes_count = *actual;
                fixes.push(format!("free inodes count {recorded} -> {actual}"));
            }
            InconsistencyKind::NotCleanlyUnmounted => {
                fs.superblock_mut().state |= state::VALID_FS;
                fixes.push("marked file system clean".to_string());
            }
            InconsistencyKind::ErrorFlagSet => {
                fs.superblock_mut().state &= !state::ERROR_FS;
                fixes.push("cleared error flag".to_string());
            }
            InconsistencyKind::StaleBackupSuper { group, field } => {
                // flush_metadata below rewrites every backup
                fixes.push(format!("refreshed backup superblock in group {group} ({field})"));
            }
            _ => {}
        }
    }
    fs.flush_metadata()?;
    Ok(())
}

fn repair_structure<D: BlockDevice>(
    fs: &mut Ext4Fs<D>,
    report: &CheckReport,
    fixes: &mut Vec<String>,
) -> Result<(), FsError> {
    for inc in &report.inconsistencies {
        match &inc.kind {
            InconsistencyKind::DanglingDirent { dir, name, target } => {
                fs.remove_entry_only(InodeNo(*dir), name)?;
                fixes.push(format!(
                    "cleared dangling entry '{name}' (inode {target}) in directory {dir}"
                ));
            }
            InconsistencyKind::UnreachableInode { ino } => {
                // reconnect into lost+found, like the real tool
                let lf = match fs.lookup(ROOT_INODE, "lost+found")? {
                    Some(e) => InodeNo(e.inode),
                    None => fs.mkdir(ROOT_INODE, "lost+found")?,
                };
                let name = format!("#{ino}");
                let mut inode = fs.read_inode(InodeNo(*ino))?;
                // link() bumps the count; normalise to 0 first so the
                // reconnected file ends at exactly one link
                inode.links_count = 0;
                fs.write_inode(InodeNo(*ino), &inode)?;
                fs.link(lf, &name, InodeNo(*ino))?;
                fixes.push(format!("reconnected inode {ino} as lost+found/{name}"));
            }
            InconsistencyKind::WrongLinkCount { ino, actual, recorded } => {
                let mut inode = fs.read_inode(InodeNo(*ino))?;
                inode.links_count = *actual;
                fs.write_inode(InodeNo(*ino), &inode)?;
                fixes.push(format!("inode {ino}: link count {recorded} -> {actual}"));
            }
            _ => {}
        }
    }
    Ok(())
}

/// The `e2fsck` parameter table — 36 parameters.
pub fn param_table() -> Vec<ParamSpec> {
    let c = "e2fsck";
    let b = || ParamType::Bool;
    vec![
        ParamSpec::new(c, "device", ParamType::Str, Stage::Offline, "the device to check"),
        ParamSpec::new(c, "preen", b(), Stage::Offline, "-p: automatic safe repair"),
        ParamSpec::new(c, "no", b(), Stage::Offline, "-n: answer no to all questions"),
        ParamSpec::new(c, "yes", b(), Stage::Offline, "-y: answer yes to all questions"),
        ParamSpec::new(c, "force", b(), Stage::Offline, "-f: check even if clean"),
        ParamSpec::new(c, "superblock", ParamType::Size, Stage::Offline, "-b: use backup superblock (location depends on mke2fs sparse features)"),
        ParamSpec::new(c, "blocksize", ParamType::Size, Stage::Offline, "-B: block size for -b"),
        ParamSpec::new(c, "badblocks", b(), Stage::Offline, "-c: run badblocks"),
        ParamSpec::new(c, "completion", b(), Stage::Offline, "-C: progress fd"),
        ParamSpec::new(c, "debug", b(), Stage::Offline, "-d: debugging output"),
        ParamSpec::new(c, "optimize_dirs", b(), Stage::Offline, "-D: optimize directories"),
        ParamSpec::new(c, "ea_ver", ParamType::Int { min: 1, max: 2 }, Stage::Offline, "-E ea_ver=: xattr version"),
        ParamSpec::new(c, "journal_only", b(), Stage::Offline, "-E journal_only: replay journal only"),
        ParamSpec::new(c, "fixes_only", b(), Stage::Offline, "-E fixes_only: no optimisations"),
        ParamSpec::new(c, "unshare_blocks", b(), Stage::Offline, "-E unshare_blocks: unshare shared blocks"),
        ParamSpec::new(c, "discard", b(), Stage::Offline, "-E discard: discard free blocks"),
        ParamSpec::new(c, "nodiscard", b(), Stage::Offline, "-E nodiscard"),
        ParamSpec::new(c, "external_journal", ParamType::Str, Stage::Offline, "-j: external journal device"),
        ParamSpec::new(c, "keep_badblocks", b(), Stage::Offline, "-k: keep existing bad blocks"),
        ParamSpec::new(c, "badblocks_list", ParamType::Str, Stage::Offline, "-l: add bad blocks from file"),
        ParamSpec::new(c, "badblocks_set", ParamType::Str, Stage::Offline, "-L: set bad blocks from file"),
        ParamSpec::new(c, "interactive_repair", b(), Stage::Offline, "-r: interactive repair (legacy)"),
        ParamSpec::new(c, "timing", b(), Stage::Offline, "-t: timing statistics"),
        ParamSpec::new(c, "verbose", b(), Stage::Offline, "-v: verbose"),
        ParamSpec::new(c, "version", b(), Stage::Offline, "-V: version"),
        ParamSpec::new(c, "undo_file", ParamType::Str, Stage::Offline, "-z: undo file"),
        ParamSpec::new(c, "exit_on_error", b(), Stage::Offline, "-a: alias for -p"),
        ParamSpec::new(c, "progress_fd", ParamType::Int { min: 0, max: 1024 }, Stage::Offline, "-C fd"),
        ParamSpec::new(c, "broken_system_clock", b(), Stage::Offline, "-E broken_system_clock"),
        ParamSpec::new(c, "bmap2extent", b(), Stage::Offline, "-E bmap2extent: convert block-mapped files"),
        ParamSpec::new(c, "inode_count_fullmap", b(), Stage::Offline, "-E inode_count_fullmap"),
        ParamSpec::new(c, "readahead_kb", ParamType::Size, Stage::Offline, "-E readahead_kb="),
        ParamSpec::new(c, "check_blocks", b(), Stage::Offline, "-cc: non-destructive write test"),
        ParamSpec::new(c, "force_rewrite", b(), Stage::Offline, "-S: rewrite superblock"),
        ParamSpec::new(c, "threads", ParamType::Int { min: 1, max: 64 }, Stage::Offline, "-m: multiple threads"),
        ParamSpec::new(c, "no_mmap", b(), Stage::Offline, "-E no_mmap"),
    ]
}

/// The structured `e2fsck(8)` manual page. Documents the `-p`/`-n`/`-y`
/// exclusions but — like the real page at the time of the paper — not the
/// `-B`-requires-`-b` dependency, and it states nothing about where valid
/// `-b` values come from (the sparse-superblock CCD).
pub fn manual() -> ManualPage {
    ManualPage {
        component: "e2fsck".to_string(),
        synopsis: "e2fsck [-pnyf] [-b superblock] [-B blocksize] device".to_string(),
        description: "e2fsck is used to check the ext2/ext3/ext4 family of file systems."
            .to_string(),
        options: vec![
            ManualOption::flag("-p", "Automatically repair (preen) the file system without any questions.")
                .with(DocConstraint::Conflicts { param: "preen".into(), other: "no".into() })
                .with(DocConstraint::Conflicts { param: "preen".into(), other: "yes".into() }),
            ManualOption::flag("-n", "Open the filesystem read-only, and assume an answer of 'no' to all questions.")
                .with(DocConstraint::Conflicts { param: "no".into(), other: "yes".into() }),
            ManualOption::flag("-y", "Assume an answer of 'yes' to all questions."),
            ManualOption::flag("-f", "Force checking even if the file system seems clean."),
            ManualOption::valued("-b", "superblock", "Instead of using the normal superblock, use an alternative superblock specified by superblock.")
                .with(DocConstraint::DataType { param: "superblock".into(), ty: "integer".into() }),
            // GAP(paper): valid -b locations depend on the mke2fs
            // sparse_super/sparse_super2 features — not documented.
            ManualOption::valued("-B", "blocksize", "Normally, e2fsck will search for the superblock at various different block sizes. This option forces a specific blocksize."),
            // GAP(paper): -B requires -b — not documented.
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mke2fs::Mke2fs;
    use crate::resize2fs::Resize2fs;
    use blockdev::MemDevice;
    use ext4sim::MountOptions;

    fn clean_image() -> MemDevice {
        let m = Mke2fs::from_args(&["-b", "1024", "/dev/x", "12288"]).unwrap();
        m.run(MemDevice::new(1024, 16384)).unwrap().0
    }

    fn figure1_corrupted_image() -> MemDevice {
        let m = Mke2fs::from_args(&[
            "-b", "1024", "-O", "sparse_super2,^sparse_super,^resize_inode", "/dev/x", "12288",
        ])
        .unwrap();
        let (dev, _) = m.run(MemDevice::new(1024, 16384)).unwrap();
        Resize2fs::to_size(16384).run(dev).unwrap().0
    }

    #[test]
    fn backup_candidates_follow_the_sparse_features() {
        // sparse_super on a 2-group image: group 1 -> block 8193, the
        // location the real tool's error hint suggests first
        let fs = Ext4Fs::open_for_maintenance(clean_image()).unwrap();
        assert_eq!(backup_superblock_candidates(fs.layout()), vec![8193]);
        // sparse_super2 records its two groups explicitly
        let fs = Ext4Fs::open_for_maintenance(figure1_corrupted_image()).unwrap();
        let candidates = backup_superblock_candidates(fs.layout());
        assert!(candidates.contains(&8193), "group 1 backup expected in {candidates:?}");
    }

    #[test]
    fn parse_modes_and_conflicts() {
        assert_eq!(E2fsck::from_args(&["-y", "/dev/x"]).unwrap().mode(), FsckMode::Fix);
        assert_eq!(E2fsck::from_args(&["-p", "/dev/x"]).unwrap().mode(), FsckMode::Preen);
        assert_eq!(E2fsck::from_args(&["-n", "/dev/x"]).unwrap().mode(), FsckMode::Check);
        for combo in [["-p", "-y"], ["-p", "-n"], ["-n", "-y"]] {
            let argv = [combo[0], combo[1], "/dev/x"];
            assert!(
                matches!(E2fsck::from_args(&argv), Err(ToolError::Cli(CliError::Conflict { .. }))),
                "{combo:?} must conflict"
            );
        }
    }

    #[test]
    fn big_b_requires_small_b() {
        assert!(E2fsck::from_args(&["-B", "1024", "/dev/x"]).is_err());
        assert!(E2fsck::from_args(&["-b", "8193", "-B", "1024", "/dev/x"]).is_ok());
    }

    #[test]
    fn clean_image_skipped_without_force() {
        let (_, res) = E2fsck::with_mode(FsckMode::Fix).run(clean_image()).unwrap();
        assert!(res.skipped_clean);
        assert_eq!(res.exit_code, 0);
    }

    #[test]
    fn forced_check_of_clean_image_finds_nothing() {
        let (_, res) = E2fsck::with_mode(FsckMode::Fix).forced().run(clean_image()).unwrap();
        assert!(!res.skipped_clean);
        assert_eq!(res.exit_code, 0);
        assert!(res.report.is_clean());
    }

    #[test]
    fn detects_figure1_corruption_with_n() {
        let (_, res) = E2fsck::with_mode(FsckMode::Check).forced().run(figure1_corrupted_image()).unwrap();
        assert_eq!(res.exit_code, 4);
        assert!(!res.report.is_clean());
    }

    #[test]
    fn preen_fixes_figure1_counters() {
        let (dev, res) = E2fsck::with_mode(FsckMode::Preen).forced().run(figure1_corrupted_image()).unwrap();
        assert_eq!(res.exit_code, 1, "fixes applied: {:?}", res.fixes);
        assert!(!res.fixes.is_empty());
        // second run: clean
        let (_, res2) = E2fsck::with_mode(FsckMode::Preen).forced().run(dev).unwrap();
        assert_eq!(res2.exit_code, 0);
    }

    #[test]
    fn fix_mode_repairs_structural_damage() {
        // orphan an inode
        let dev = clean_image();
        let mut fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        let root = fs.root_inode();
        let f = fs.create_file(root, "soon-orphan").unwrap();
        fs.write_file(f, 0, b"orphan data").unwrap();
        fs.remove_entry_only(root, "soon-orphan").unwrap();
        let dev = fs.unmount().unwrap();

        let (dev, res) = E2fsck::with_mode(FsckMode::Fix).forced().run(dev).unwrap();
        assert_eq!(res.exit_code, 1, "fixes: {:?}", res.fixes);
        assert!(res.fixes.iter().any(|f| f.contains("reconnected")));
        // the orphan now lives in lost+found
        let fs = Ext4Fs::mount(dev, &MountOptions::read_only()).unwrap();
        let lf = fs.lookup(ROOT_INODE, "lost+found").unwrap().unwrap();
        let entries = fs.readdir(InodeNo(lf.inode)).unwrap();
        assert!(entries.iter().any(|e| e.name.starts_with('#')));
    }

    #[test]
    fn preen_bails_on_serious_damage() {
        let dev = clean_image();
        let mut fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        let root = fs.root_inode();
        let f = fs.create_file(root, "soon-orphan").unwrap();
        fs.remove_entry_only(root, "soon-orphan").unwrap();
        let _ = f;
        let dev = fs.unmount().unwrap();
        let (_, res) = E2fsck::with_mode(FsckMode::Preen).forced().run(dev).unwrap();
        assert_eq!(res.exit_code, 4);
        assert!(res.fixes.is_empty());
    }

    #[test]
    fn n_mode_leaves_image_untouched() {
        let img = figure1_corrupted_image();
        let before = img.clone();
        let (after, _) = E2fsck::with_mode(FsckMode::Check).forced().run(img).unwrap();
        // compare every populated block
        for b in 0..before.num_blocks() {
            let mut x = vec![0u8; 1024];
            let mut y = vec![0u8; 1024];
            before.read_block(b, &mut x).unwrap();
            after.read_block(b, &mut y).unwrap();
            assert_eq!(x, y, "block {b} modified by -n run");
        }
    }

    #[test]
    fn backup_superblock_recovery() {
        // corrupt the primary superblock, then recover with -b
        let mut dev = clean_image();
        for off in 0..32 {
            dev.corrupt_byte(1, off, 0xFF).unwrap(); // block 1 = primary sb (1k blocks)
        }
        assert!(Ext4Fs::open_for_maintenance(dev.clone()).is_err());
        // backups for sparse_super with 2 groups: group 1 at block 8193
        let ck = E2fsck::with_mode(FsckMode::Fix).with_backup_superblock(8193, 1024);
        let (dev, res) = ck.run(dev).unwrap();
        assert!(res.exit_code <= 1);
        // primary restored
        let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        assert_eq!(fs.superblock().blocks_count, 12288);
    }

    #[test]
    fn dirty_flag_cleared_by_fix() {
        let fs = Ext4Fs::mount(clean_image(), &MountOptions::default()).unwrap();
        let dev = fs.into_device_dirty(); // crash while mounted rw
        let (dev, res) = E2fsck::with_mode(FsckMode::Fix).run(dev).unwrap();
        assert_eq!(res.exit_code, 1);
        assert!(res.fixes.iter().any(|f| f.contains("clean")));
        // now mountable rw again
        Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
    }

    #[test]
    fn param_table_size() {
        assert_eq!(param_table().len(), 36);
    }
}
