//! `tune2fs` — adjusts tunable configuration parameters on an existing
//! file system.
//!
//! This is the purest configuration-mutation utility of the ecosystem:
//! it rewrites superblock parameters (label, reserved percentage, error
//! behaviour, mount-count limits) and toggles feature flags *after*
//! creation — so every `mke2fs`-time dependency must be re-validated
//! here, against an image whose state `mke2fs` chose. Several of its
//! refusals are cross-parameter dependencies in the paper's taxonomy
//! (e.g., `-O meta_bg` on an image that still has `resize_inode`).

use blockdev::BlockDevice;
use ext4sim::{errors_policy, CompatFeatures, Ext4Fs, IncompatFeatures};

use crate::cli::{self, CliError};
use crate::manual::{DocConstraint, ManualOption, ManualPage};
use crate::params::{ParamSpec, ParamType, Stage};
use crate::typed::TypedConfig;
use crate::ToolError;

/// Boolean options of the `tune2fs` CLI surface.
const FLAG_OPTS: [&str; 1] = ["l"];
/// Valued options of the `tune2fs` CLI surface.
const VALUE_OPTS: [&str; 5] = ["L", "m", "c", "e", "O"];

/// A parsed `tune2fs` invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tune2fs {
    label: Option<String>,
    reserved_percent: Option<u8>,
    max_mount_count: Option<u16>,
    errors: Option<u16>,
    feature_tokens: Vec<String>,
    list: bool,
}

/// What the run changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TuneReport {
    /// Human-readable change descriptions.
    pub changes: Vec<String>,
}

impl Tune2fs {
    /// Parses `tune2fs [-L label] [-m pct] [-c max-mounts] [-e behaviour]
    /// [-O feature[,...]] [-l] device`.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Cli`] for unknown options and man-page-level
    /// violations.
    pub fn from_args(argv: &[&str]) -> Result<Self, ToolError> {
        let parsed = cli::parse(argv, &FLAG_OPTS, &VALUE_OPTS)?;
        if parsed.operands.len() != 1 {
            return Err(CliError::BadOperands("exactly one device is required".to_string()).into());
        }
        let mut t = Tune2fs { list: parsed.has_flag("l"), ..Tune2fs::default() };
        if let Some(label) = parsed.value("L") {
            if label.len() > 16 {
                return Err(CliError::BadValue {
                    option: "-L".to_string(),
                    value: label.to_string(),
                    expected: "at most 16 bytes".to_string(),
                }
                .into());
            }
            t.label = Some(label.to_string());
        }
        if let Some(m) = parsed.int_value("m")? {
            if m > 50 {
                return Err(CliError::BadValue {
                    option: "-m".to_string(),
                    value: m.to_string(),
                    expected: "a percentage between 0 and 50".to_string(),
                }
                .into());
            }
            t.reserved_percent = Some(m as u8);
        }
        if let Some(c) = parsed.int_value("c")? {
            t.max_mount_count = Some(c as u16);
        }
        if let Some(e) = parsed.value("e") {
            t.errors = Some(match e {
                "continue" => errors_policy::CONTINUE,
                "remount-ro" => errors_policy::REMOUNT_RO,
                "panic" => errors_policy::PANIC,
                other => {
                    return Err(CliError::BadValue {
                        option: "-e".to_string(),
                        value: other.to_string(),
                        expected: "continue|remount-ro|panic".to_string(),
                    }
                    .into())
                }
            });
        }
        if let Some(feats) = parsed.value("O") {
            t.feature_tokens = feats.split(',').map(str::to_string).collect();
        }
        Ok(t)
    }

    /// Parses `argv` and additionally lowers it into a [`TypedConfig`]
    /// validated against [`param_table`].
    ///
    /// Validation is delegated entirely to [`Tune2fs::from_args`], so the
    /// error surface is byte-identical to the legacy path.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Tune2fs::from_args`].
    pub fn parse_typed(argv: &[&str]) -> Result<(Self, TypedConfig), ToolError> {
        let tool = Self::from_args(argv)?;
        let parsed = cli::parse(argv, &FLAG_OPTS, &VALUE_OPTS).expect("validated by from_args");
        let mut cfg = TypedConfig::new("tune2fs");
        if parsed.has_flag("l") {
            cfg.set_bool("list", true);
        }
        if let Some(label) = parsed.value("L") {
            cfg.set_str("label", label);
        }
        if let Some(m) = parsed.int_value("m").expect("validated by from_args") {
            cfg.set_int("reserved_percent", m as i64);
        }
        if let Some(c) = parsed.int_value("c").expect("validated by from_args") {
            cfg.set_int("max_mount_count", c as i64);
        }
        if let Some(e) = parsed.value("e") {
            cfg.set_str("errors", e);
        }
        if let Some(feats) = parsed.value("O") {
            cfg.set_str("features", feats);
        }
        if let Some(device) = parsed.operands.first() {
            cfg.operands.push(device.clone());
        }
        Ok((tool, cfg))
    }

    /// Applies the changes to `dev` (which must hold a clean image).
    ///
    /// # Errors
    ///
    /// * [`ToolError::Refused`] — dirty image, or a feature change whose
    ///   dependencies the on-image state violates;
    /// * [`ToolError::Fs`] — unreadable image or device failure.
    pub fn run<D: BlockDevice>(&self, dev: D) -> Result<(D, TuneReport), ToolError> {
        let mut fs = Ext4Fs::open_for_maintenance(dev)?;
        if !fs.superblock().is_clean() {
            return Err(ToolError::Refused(
                "filesystem is not clean; run e2fsck first".to_string(),
            ));
        }
        let mut report = TuneReport::default();

        if let Some(label) = &self.label {
            fs.superblock_mut().set_label(label);
            report.changes.push(format!("volume label set to '{label}'"));
        }
        if let Some(m) = self.reserved_percent {
            let blocks = fs.superblock().blocks_count;
            let sb = fs.superblock_mut();
            sb.reserved_blocks_count = blocks * u64::from(m) / 100;
            report.changes.push(format!("reserved blocks percentage set to {m}%"));
        }
        if let Some(c) = self.max_mount_count {
            fs.superblock_mut().max_mnt_count = c;
            report.changes.push(format!("maximal mount count set to {c}"));
        }
        if let Some(e) = self.errors {
            fs.superblock_mut().errors = e;
            report.changes.push(format!("error behaviour set to {e}"));
        }
        for token in &self.feature_tokens {
            self.apply_feature(&mut fs, token, &mut report)?;
        }
        fs.flush_metadata()?;
        let dev = fs.unmount()?;
        Ok((dev, report))
    }

    fn apply_feature<D: BlockDevice>(
        &self,
        fs: &mut Ext4Fs<D>,
        token: &str,
        report: &mut TuneReport,
    ) -> Result<(), ToolError> {
        let (clear, name) = match token.strip_prefix('^') {
            Some(rest) => (true, rest),
            None => (false, token),
        };
        let features = fs.superblock().features;
        // dependency re-validation against the *existing* image state:
        // the same constraints mke2fs enforces at creation
        if !clear {
            match name {
                "meta_bg" if features.compat.contains(CompatFeatures::RESIZE_INODE) => {
                    return Err(ToolError::Refused(
                        "enabling meta_bg requires clearing resize_inode first".to_string(),
                    ));
                }
                "bigalloc" => {
                    return Err(ToolError::Refused(
                        "bigalloc cannot be enabled on an existing file system".to_string(),
                    ));
                }
                "sparse_super2" if features.ro_compat.contains(ext4sim::RoCompatFeatures::SPARSE_SUPER) => {
                    return Err(ToolError::Refused(
                        "enabling sparse_super2 requires clearing sparse_super first".to_string(),
                    ));
                }
                _ => {}
            }
        } else {
            // clearing extent on an image with extent-mapped files would
            // orphan every block map
            if name == "extent" && features.incompat.contains(IncompatFeatures::EXTENTS) {
                return Err(ToolError::Refused(
                    "the extent feature cannot be cleared once files use extents".to_string(),
                ));
            }
            // removing has_journal is allowed (journal becomes unused)
        }
        let sb = fs.superblock_mut();
        if !sb.features.apply_token(token) {
            return Err(ToolError::Cli(CliError::BadValue {
                option: "-O".to_string(),
                value: token.to_string(),
                expected: "a known feature name".to_string(),
            }));
        }
        report.changes.push(format!(
            "feature '{name}' {}",
            if clear { "cleared" } else { "set" }
        ));
        Ok(())
    }
}

/// The `tune2fs` parameter table.
pub fn param_table() -> Vec<ParamSpec> {
    let c = "tune2fs";
    vec![
        ParamSpec::new(c, "device", ParamType::Str, Stage::Offline, "the device to tune"),
        ParamSpec::new(c, "label", ParamType::Str, Stage::Offline, "-L: new volume label"),
        ParamSpec::new(c, "reserved_percent", ParamType::Int { min: 0, max: 50 }, Stage::Offline, "-m: reserved percentage"),
        ParamSpec::new(c, "max_mount_count", ParamType::Int { min: 0, max: 65535 }, Stage::Offline, "-c: mounts before forced check"),
        ParamSpec::new(c, "errors", ParamType::Enum(vec!["continue".into(), "remount-ro".into(), "panic".into()]), Stage::Offline, "-e: error behaviour"),
        ParamSpec::new(c, "features", ParamType::Feature, Stage::Offline, "-O: feature toggles"),
        ParamSpec::new(c, "list", ParamType::Bool, Stage::Offline, "-l: list superblock contents"),
    ]
}

/// The structured `tune2fs(8)` manual page.
pub fn manual() -> ManualPage {
    ManualPage {
        component: "tune2fs".to_string(),
        synopsis: "tune2fs [-L label] [-m percent] [-c max-mounts] [-e behaviour] [-O feature[,...]] device".to_string(),
        description: "tune2fs allows the system administrator to adjust various tunable file system parameters on ext2/ext3/ext4 file systems.".to_string(),
        options: vec![
            ManualOption::valued("-L", "volume-label", "Set the volume label, at most 16 bytes.")
                .with(DocConstraint::DataType { param: "label".into(), ty: "string".into() })
                .with(DocConstraint::ValueRange { param: "label".into(), min: 0, max: 16 }),
            ManualOption::valued("-m", "reserved-blocks-percentage", "Set the percentage of reserved file system blocks.")
                .with(DocConstraint::ValueRange { param: "reserved_percent".into(), min: 0, max: 50 }),
            ManualOption::valued("-c", "max-mount-counts", "Adjust the number of mounts after which the file system will be checked."),
            ManualOption::valued("-e", "error-behaviour", "Change the behaviour of the kernel when errors are detected.")
                .with(DocConstraint::DataType { param: "errors".into(), ty: "enum".into() }),
            ManualOption::valued("-O", "feature[,...]", "Set or clear the listed file system features.")
                .with(DocConstraint::Requires { param: "meta_bg".into(), other: "resize_inode".into() }),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::e2fsck::{E2fsck, FsckMode};
    use crate::mke2fs::Mke2fs;
    use blockdev::MemDevice;
    use ext4sim::MountOptions;

    fn image() -> MemDevice {
        let m = Mke2fs::from_args(&["-b", "1024", "-L", "before", "/dev/t", "12288"]).unwrap();
        m.run(MemDevice::new(1024, 16384)).unwrap().0
    }

    #[test]
    fn relabel_and_reserve() {
        let t = Tune2fs::from_args(&["-L", "after", "-m", "10", "/dev/t"]).unwrap();
        let (dev, report) = t.run(image()).unwrap();
        assert_eq!(report.changes.len(), 2);
        let fs = Ext4Fs::mount(dev, &MountOptions::read_only()).unwrap();
        assert_eq!(fs.superblock().label(), "after");
        assert_eq!(fs.superblock().reserved_blocks_count, 12288 * 10 / 100);
    }

    #[test]
    fn parse_validation() {
        assert!(Tune2fs::from_args(&["-m", "80", "/dev/t"]).is_err());
        assert!(Tune2fs::from_args(&["-L", "a-very-long-label-over-16", "/dev/t"]).is_err());
        assert!(Tune2fs::from_args(&["-e", "shrug", "/dev/t"]).is_err());
        assert!(Tune2fs::from_args(&[]).is_err());
        assert!(Tune2fs::from_args(&["-e", "panic", "/dev/t"]).is_ok());
    }

    #[test]
    fn meta_bg_requires_clearing_resize_inode_first() {
        // the same CPD as at mke2fs time, re-validated against the image
        let t = Tune2fs::from_args(&["-O", "meta_bg", "/dev/t"]).unwrap();
        let err = t.run(image()).unwrap_err();
        assert!(err.to_string().contains("resize_inode"));
        // clearing resize_inode first makes it legal
        let t = Tune2fs::from_args(&["-O", "^resize_inode,meta_bg", "/dev/t"]).unwrap();
        let (dev, report) = t.run(image()).unwrap();
        assert_eq!(report.changes.len(), 2);
        let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        assert!(fs.superblock().features.has("meta_bg"));
        assert!(!fs.superblock().features.has("resize_inode"));
    }

    #[test]
    fn bigalloc_cannot_be_retrofitted() {
        let t = Tune2fs::from_args(&["-O", "bigalloc", "/dev/t"]).unwrap();
        assert!(matches!(t.run(image()), Err(ToolError::Refused(_))));
    }

    #[test]
    fn extent_cannot_be_cleared() {
        let t = Tune2fs::from_args(&["-O", "^extent", "/dev/t"]).unwrap();
        assert!(matches!(t.run(image()), Err(ToolError::Refused(_))));
    }

    #[test]
    fn unknown_feature_rejected() {
        let t = Tune2fs::from_args(&["-O", "warp", "/dev/t"]).unwrap();
        assert!(matches!(t.run(image()), Err(ToolError::Cli(_))));
    }

    #[test]
    fn dirty_image_refused() {
        let fs = Ext4Fs::mount(image(), &MountOptions::default()).unwrap();
        let dev = fs.into_device_dirty();
        let t = Tune2fs::from_args(&["-L", "x", "/dev/t"]).unwrap();
        assert!(matches!(t.run(dev), Err(ToolError::Refused(_))));
    }

    #[test]
    fn tuned_image_stays_consistent() {
        let t = Tune2fs::from_args(&["-L", "tuned", "-m", "0", "-c", "25", "/dev/t"]).unwrap();
        let (dev, _) = t.run(image()).unwrap();
        let (_, res) = E2fsck::with_mode(FsckMode::Check).forced().run(dev).unwrap();
        assert_eq!(res.exit_code, 0, "{:?}", res.report.inconsistencies);
    }

    #[test]
    fn max_mount_count_applied() {
        let t = Tune2fs::from_args(&["-c", "7", "/dev/t"]).unwrap();
        let (dev, _) = t.run(image()).unwrap();
        let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        assert_eq!(fs.superblock().max_mnt_count, 7);
    }
}
