//! `mke2fs` — the create-stage utility.
//!
//! Parses the real `mke2fs` option surface, applies the *utility-level*
//! validation the man page documents, and drives [`ext4sim::Ext4Fs::format`]
//! (which re-validates at the kernel level, as `ext4_fill_super` does for
//! the corresponding real parameters — the two-level validation structure
//! §2 of the paper describes).

use blockdev::BlockDevice;
use ext4sim::{CachePolicy, CompatFeatures, Ext4Fs, FeatureSet, MkfsParams};

use crate::cli::{self, CliError};
use crate::manual::{DocConstraint, ManualOption, ManualPage};
use crate::params::{ParamSpec, ParamType, Stage};
use crate::typed::TypedConfig;
use crate::ToolError;

/// Boolean options of the `mke2fs` CLI surface.
const FLAG_OPTS: [&str; 6] = ["c", "j", "n", "q", "v", "F"];
/// Valued options of the `mke2fs` CLI surface.
const VALUE_OPTS: [&str; 13] = ["b", "C", "E", "g", "G", "i", "I", "J", "L", "m", "N", "O", "U"];
/// The `-O` feature tokens that have a registered [`ParamSpec`] (the
/// simulator's `FeatureSet` knows a few more, which stay out of the
/// typed view).
pub(crate) const REGISTRY_FEATURES: [&str; 11] = [
    "sparse_super",
    "sparse_super2",
    "has_journal",
    "extent",
    "64bit",
    "meta_bg",
    "resize_inode",
    "inline_data",
    "bigalloc",
    "dir_index",
    "metadata_csum",
];

/// A parsed-and-validated `mke2fs` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mke2fs {
    params: MkfsParams,
    dry_run: bool,
    quiet: bool,
    cache_policy: CachePolicy,
}

/// Outcome of a successful format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mke2fsReport {
    /// Final block count.
    pub blocks_count: u64,
    /// Number of block groups created.
    pub group_count: u32,
    /// Total inodes.
    pub inodes_count: u32,
    /// The feature set written to the superblock.
    pub features: FeatureSet,
    /// Backup superblock groups.
    pub backup_groups: Vec<u32>,
}

impl Mke2fs {
    /// Builds directly from typed parameters (API callers).
    pub fn from_params(params: MkfsParams) -> Self {
        Mke2fs { params, dry_run: false, quiet: true, cache_policy: CachePolicy::WriteBack }
    }

    /// Overrides the metadata cache policy used during the format
    /// (write-back by default; write-through is the legacy baseline).
    #[must_use]
    pub fn with_cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Parses a command line: `mke2fs [options] device [blocks-count]`.
    /// The device operand is notional (the caller supplies the actual
    /// device to [`Mke2fs::run`]).
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Cli`] for unknown options, malformed values,
    /// and the man-page-level constraint violations.
    pub fn from_args(argv: &[&str]) -> Result<Self, ToolError> {
        let parsed = cli::parse(argv, &FLAG_OPTS, &VALUE_OPTS)?;
        if parsed.operands.is_empty() {
            return Err(CliError::BadOperands("a device is required".to_string()).into());
        }
        if parsed.operands.len() > 2 {
            return Err(CliError::BadOperands(format!(
                "expected device [blocks-count], got {} operands",
                parsed.operands.len()
            ))
            .into());
        }

        let mut params = MkfsParams::default();

        if let Some(b) = parsed.int_value("b")? {
            // man: "Valid block-size values are powers of two from 1024
            // up to 65536."
            if !(1024..=65536).contains(&b) || !b.is_power_of_two() {
                return Err(CliError::BadValue {
                    option: "-b".to_string(),
                    value: b.to_string(),
                    expected: "a power of two between 1024 and 65536".to_string(),
                }
                .into());
            }
            params.block_size = Some(b as u32);
        }
        if let Some(c) = parsed.int_value("C")? {
            params.cluster_size = Some(c as u32);
        }
        if let Some(g) = parsed.int_value("g")? {
            params.blocks_per_group = Some(g as u32);
        }
        if let Some(i) = parsed.int_value("i")? {
            // man: "i must be at least the blocksize"
            params.inode_ratio = i as u32;
        }
        if let Some(isz) = parsed.int_value("I")? {
            if isz != 128 && isz != 256 {
                return Err(CliError::BadValue {
                    option: "-I".to_string(),
                    value: isz.to_string(),
                    expected: "128 or 256".to_string(),
                }
                .into());
            }
            params.inode_size = isz as u16;
        }
        if let Some(m) = parsed.int_value("m")? {
            if m > 50 {
                return Err(CliError::BadValue {
                    option: "-m".to_string(),
                    value: m.to_string(),
                    expected: "a percentage between 0 and 50".to_string(),
                }
                .into());
            }
            params.reserved_percent = m as u8;
        }
        if let Some(n) = parsed.int_value("N")? {
            params.inodes_count = Some(n as u32);
        }
        if let Some(label) = parsed.value("L") {
            if label.len() > 16 {
                return Err(CliError::BadValue {
                    option: "-L".to_string(),
                    value: label.to_string(),
                    expected: "at most 16 bytes".to_string(),
                }
                .into());
            }
            params.label = label.to_string();
        }
        if let Some(j) = parsed.value("J") {
            // accept "size=blocks"
            match j.strip_prefix("size=") {
                Some(v) => {
                    let blocks: u64 = v.parse().map_err(|_| CliError::BadValue {
                        option: "-J".to_string(),
                        value: j.to_string(),
                        expected: "size=<blocks>".to_string(),
                    })?;
                    params.journal_blocks = Some(blocks as u32);
                }
                None => {
                    return Err(CliError::BadValue {
                        option: "-J".to_string(),
                        value: j.to_string(),
                        expected: "size=<blocks>".to_string(),
                    }
                    .into())
                }
            }
        }
        if let Some(e) = parsed.value("E") {
            for opt in e.split(',') {
                match opt.split_once('=') {
                    Some(("resize", v)) => {
                        let blocks: u64 = v.parse().map_err(|_| CliError::BadValue {
                            option: "-E resize".to_string(),
                            value: v.to_string(),
                            expected: "a block count".to_string(),
                        })?;
                        params.resize_headroom = Some(blocks);
                    }
                    Some(("stride", _)) | Some(("stripe_width", _)) => {
                        // accepted, geometry hints have no effect in the sim
                    }
                    Some(("lazy_itable_init", _)) => {}
                    _ => {
                        return Err(CliError::BadValue {
                            option: "-E".to_string(),
                            value: opt.to_string(),
                            expected: "resize=, stride=, stripe_width=, lazy_itable_init=".to_string(),
                        }
                        .into())
                    }
                }
            }
        }
        if let Some(feats) = parsed.value("O") {
            for token in feats.split(',') {
                if !params.features.apply_token(token) {
                    return Err(CliError::BadValue {
                        option: "-O".to_string(),
                        value: token.to_string(),
                        expected: "a known feature name".to_string(),
                    }
                    .into());
                }
            }
        }
        if parsed.has_flag("j") {
            // -j forces a journal; CPD with "-O ^has_journal"
            if !params.features.compat.contains(CompatFeatures::HAS_JOURNAL) {
                return Err(CliError::Conflict { a: "-j".to_string(), b: "-O ^has_journal".to_string() }.into());
            }
            params.features.compat.insert(CompatFeatures::HAS_JOURNAL);
        }
        if let Some(size) = parsed.operands.get(1) {
            let blocks: u64 = size.parse().map_err(|_| CliError::BadValue {
                option: "blocks-count".to_string(),
                value: size.to_string(),
                expected: "an integer block count".to_string(),
            })?;
            params.blocks_count = Some(blocks);
        }
        Ok(Mke2fs {
            params,
            dry_run: parsed.has_flag("n"),
            quiet: parsed.has_flag("q"),
            cache_policy: CachePolicy::WriteBack,
        })
    }

    /// [`Mke2fs::from_args`] plus the canonical [`TypedConfig`] lowering
    /// of the invocation — the ecosystem layer's entry point. Validation
    /// (and therefore every error) is exactly `from_args`'s; the typed
    /// view is derived from the already-validated arguments.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Mke2fs::from_args`].
    pub fn parse_typed(argv: &[&str]) -> Result<(Self, TypedConfig), ToolError> {
        let tool = Self::from_args(argv)?;
        let parsed = cli::parse(argv, &FLAG_OPTS, &VALUE_OPTS).expect("validated by from_args");
        let mut cfg = TypedConfig::new("mke2fs");
        for (flag, name) in [
            ("c", "check_badblocks"),
            ("j", "journal"),
            ("n", "dry_run"),
            ("q", "quiet"),
            ("v", "verbose"),
            ("F", "force"),
        ] {
            if parsed.has_flag(flag) {
                cfg.set_bool(name, true);
            }
        }
        for (opt, name) in [
            ("b", "blocksize"),
            ("C", "cluster_size"),
            ("g", "blocks_per_group"),
            ("G", "number_of_groups"),
            ("i", "inode_ratio"),
            ("I", "inode_size"),
            ("m", "reserved_percent"),
            ("N", "inodes_count"),
        ] {
            if let Some(v) = parsed.value(opt) {
                match v.parse::<i64>() {
                    Ok(i) => cfg.set_int(name, i),
                    Err(_) => cfg.set_str(name, v),
                };
            }
        }
        if let Some(label) = parsed.value("L") {
            cfg.set_str("label", label);
        }
        if let Some(uuid) = parsed.value("U") {
            cfg.set_str("uuid", uuid);
        }
        if let Some(j) = parsed.value("J") {
            if let Some(Ok(blocks)) = j.strip_prefix("size=").map(str::parse::<i64>) {
                cfg.set_int("journal_size", blocks);
            }
        }
        if let Some(e) = parsed.value("E") {
            for opt in e.split(',') {
                match opt.split_once('=') {
                    Some(("resize", v)) => {
                        if let Ok(blocks) = v.parse::<i64>() {
                            cfg.set_int("resize_headroom", blocks);
                        }
                    }
                    Some(("stride", v)) | Some(("stripe_width", v)) => {
                        let name =
                            if opt.starts_with("stride") { "stride" } else { "stripe_width" };
                        match v.parse::<i64>() {
                            Ok(i) => cfg.set_int(name, i),
                            Err(_) => cfg.set_str(name, v),
                        };
                    }
                    Some(("lazy_itable_init", v)) => {
                        cfg.set_bool("lazy_itable_init", v != "0");
                    }
                    _ => {}
                }
            }
        }
        if let Some(feats) = parsed.value("O") {
            // only registry-known features enter the typed view; the
            // full FeatureSet (which knows more tokens) lives in `tool`
            for token in feats.split(',') {
                let (enabled, name) = match token.strip_prefix('^') {
                    Some(rest) => (false, rest),
                    None => (true, token),
                };
                if REGISTRY_FEATURES.contains(&name) {
                    cfg.set_bool(name, enabled);
                }
            }
        }
        if let Some(size) = parsed.operands.get(1) {
            if let Ok(blocks) = size.parse::<i64>() {
                cfg.set_int("size", blocks);
            }
        }
        if let Some(device) = parsed.operands.first() {
            cfg.operands.push(device.to_string());
        }
        Ok((tool, cfg))
    }

    /// The typed parameters this invocation resolved to.
    pub fn params(&self) -> &MkfsParams {
        &self.params
    }

    /// Whether `-n` (dry run) was given.
    pub fn is_dry_run(&self) -> bool {
        self.dry_run
    }

    /// Formats `dev`, unmounts cleanly, and returns the device plus a
    /// report. With `-n`, validates only and leaves the device untouched.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Fs`] for kernel-level validation failures
    /// (e.g., the `meta_bg`/`resize_inode` conflict) and device errors.
    pub fn run<D: BlockDevice>(&self, dev: D) -> Result<(D, Mke2fsReport), ToolError> {
        if self.dry_run {
            let bs = self.params.effective_block_size(dev.size_bytes());
            self.params.validate(dev.size_bytes() / u64::from(bs)).map_err(ToolError::Fs)?;
            let blocks = self.params.blocks_count.unwrap_or(dev.size_bytes() / u64::from(bs));
            return Ok((
                dev,
                Mke2fsReport {
                    blocks_count: blocks,
                    group_count: 0,
                    inodes_count: 0,
                    features: self.params.features,
                    backup_groups: Vec::new(),
                },
            ));
        }
        let fs = Ext4Fs::format_with_policy(dev, &self.params, self.cache_policy)?;
        let report = Mke2fsReport {
            blocks_count: fs.superblock().blocks_count,
            group_count: fs.layout().group_count(),
            inodes_count: fs.superblock().inodes_count,
            features: fs.superblock().features,
            backup_groups: fs.layout().backup_groups(),
        };
        let dev = fs.unmount().map_err(ToolError::Fs)?;
        Ok((dev, report))
    }
}

/// The `mke2fs` parameter table (30 parameters) for the Table 2 coverage
/// universe.
pub fn param_table() -> Vec<ParamSpec> {
    let c = "mke2fs";
    let int = |min, max| ParamType::Int { min, max };
    let feat = || ParamType::Feature;
    vec![
        ParamSpec::new(c, "blocksize", int(1024, 65536), Stage::Create, "-b: bytes per block (power of 2)"),
        ParamSpec::new(c, "cluster_size", ParamType::Size, Stage::Create, "-C: bytes per cluster (bigalloc)"),
        ParamSpec::new(c, "check_badblocks", ParamType::Bool, Stage::Create, "-c: check for bad blocks first"),
        ParamSpec::new(c, "blocks_per_group", int(8, 65536 * 8), Stage::Create, "-g: blocks per block group"),
        ParamSpec::new(c, "number_of_groups", int(1, 1 << 20), Stage::Create, "-G: groups per flex group"),
        ParamSpec::new(c, "inode_ratio", ParamType::Size, Stage::Create, "-i: bytes of data per inode"),
        ParamSpec::new(c, "inode_size", int(128, 256), Stage::Create, "-I: bytes per inode record"),
        ParamSpec::new(c, "journal", ParamType::Bool, Stage::Create, "-j: create a journal"),
        ParamSpec::new(c, "journal_size", ParamType::Size, Stage::Create, "-J size=: journal blocks"),
        ParamSpec::new(c, "label", ParamType::Str, Stage::Create, "-L: volume label (16 bytes)"),
        ParamSpec::new(c, "reserved_percent", int(0, 50), Stage::Create, "-m: reserved block percentage"),
        ParamSpec::new(c, "inodes_count", int(16, i64::MAX), Stage::Create, "-N: total inode count"),
        ParamSpec::new(c, "dry_run", ParamType::Bool, Stage::Create, "-n: do not actually create"),
        ParamSpec::new(c, "quiet", ParamType::Bool, Stage::Create, "-q: quiet output"),
        ParamSpec::new(c, "verbose", ParamType::Bool, Stage::Create, "-v: verbose output"),
        ParamSpec::new(c, "force", ParamType::Bool, Stage::Create, "-F: force creation"),
        ParamSpec::new(c, "uuid", ParamType::Str, Stage::Create, "-U: volume UUID"),
        ParamSpec::new(c, "size", ParamType::Size, Stage::Create, "blocks-count operand (the Figure 1 CCD)"),
        ParamSpec::new(c, "resize_headroom", ParamType::Size, Stage::Create, "-E resize=: growth headroom"),
        ParamSpec::new(c, "stride", ParamType::Size, Stage::Create, "-E stride=: RAID stride hint"),
        ParamSpec::new(c, "stripe_width", ParamType::Size, Stage::Create, "-E stripe_width=: RAID stripe hint"),
        ParamSpec::new(c, "lazy_itable_init", ParamType::Bool, Stage::Create, "-E lazy_itable_init="),
        ParamSpec::new(c, "sparse_super", feat(), Stage::Create, "-O sparse_super"),
        ParamSpec::new(c, "sparse_super2", feat(), Stage::Create, "-O sparse_super2"),
        ParamSpec::new(c, "has_journal", feat(), Stage::Create, "-O has_journal"),
        ParamSpec::new(c, "extent", feat(), Stage::Create, "-O extent"),
        ParamSpec::new(c, "64bit", feat(), Stage::Create, "-O 64bit"),
        ParamSpec::new(c, "meta_bg", feat(), Stage::Create, "-O meta_bg"),
        ParamSpec::new(c, "resize_inode", feat(), Stage::Create, "-O resize_inode"),
        ParamSpec::new(c, "inline_data", feat(), Stage::Create, "-O inline_data"),
        ParamSpec::new(c, "bigalloc", feat(), Stage::Create, "-O bigalloc"),
        ParamSpec::new(c, "dir_index", feat(), Stage::Create, "-O dir_index"),
        ParamSpec::new(c, "metadata_csum", feat(), Stage::Create, "-O metadata_csum"),
    ]
}

/// The structured `mke2fs(8)` manual page.
///
/// Deliberately reproduces the real manual's documentation gaps that the
/// paper's ConDocCk found (§4.3) — most prominently: the page does **not**
/// document that `meta_bg` and `resize_inode` cannot be used together,
/// nor the `bigalloc`→`extent` requirement, nor the constraint that
/// `-i` must be at least the block size.
pub fn manual() -> ManualPage {
    ManualPage {
        component: "mke2fs".to_string(),
        synopsis: "mke2fs [-b block-size] [-C cluster-size] [-O feature[,...]] [-m percent] device [blocks-count]".to_string(),
        description: "mke2fs is used to create an ext2/ext3/ext4 file system on a device."
            .to_string(),
        options: vec![
            ManualOption::valued("-b", "block-size", "Specify the size of blocks in bytes. Valid block-size values are powers of two from 1024 up to 65536.")
                .with(DocConstraint::DataType { param: "blocksize".into(), ty: "integer".into() })
                .with(DocConstraint::ValueRange { param: "blocksize".into(), min: 1024, max: 65536 }),
            ManualOption::valued("-C", "cluster-size", "Specify the size of clusters in bytes, for file systems using the bigalloc feature. Must be at least the block size.")
                .with(DocConstraint::Requires { param: "cluster_size".into(), other: "bigalloc".into() })
                .with(DocConstraint::ValueRange { param: "cluster_size".into(), min: 2048, max: 256 * 1024 * 1024 })
                .with(DocConstraint::Requires { param: "cluster_size".into(), other: "blocksize".into() })
                .with(DocConstraint::DataType { param: "cluster_size".into(), ty: "size".into() }),
            ManualOption::valued("-g", "blocks-per-group", "Specify the number of blocks in a block group. May be no larger than 8 times the block size.")
                .with(DocConstraint::DataType { param: "blocks_per_group".into(), ty: "integer".into() })
                .with(DocConstraint::Requires { param: "blocks_per_group".into(), other: "blocksize".into() }),
            // GAP(paper): the real page does not state the multiple-of-8
            // value constraint on -g.
            ManualOption::valued("-i", "bytes-per-inode", "Specify the bytes/inode ratio.")
                .with(DocConstraint::DataType { param: "inode_ratio".into(), ty: "size".into() }),
            // GAP(paper): "-i must be at least blocksize" is enforced in
            // code but absent here.
            ManualOption::valued("-I", "inode-size", "Specify the size of each inode in bytes.")
                .with(DocConstraint::DataType { param: "inode_size".into(), ty: "integer".into() }),
            // GAP(paper): the {128, 256} value set is not documented.
            ManualOption::flag("-j", "Create the file system with an ext3 journal."),
            // GAP(paper): the conflict between -j and -O ^has_journal is
            // not documented.
            ManualOption::valued("-J", "size=journal-blocks", "Create the journal using options specified on the command line. Only meaningful together with -j, and limited to a quarter of the file system.")
                .with(DocConstraint::Requires { param: "journal_size".into(), other: "has_journal".into() })
                .with(DocConstraint::Requires { param: "journal_size".into(), other: "journal_flag".into() })
                .with(DocConstraint::Requires { param: "journal_size".into(), other: "size".into() })
                .with(DocConstraint::DataType { param: "journal_size".into(), ty: "size".into() }),
            // GAP(paper): the valid journal size range (256..=409600
            // blocks) is not documented.
            ManualOption::valued("-L", "new-volume-label", "Set the volume label, at most 16 bytes.")
                .with(DocConstraint::DataType { param: "label".into(), ty: "string".into() })
                .with(DocConstraint::ValueRange { param: "label".into(), min: 0, max: 16 }),
            ManualOption::valued("-m", "reserved-blocks-percentage", "Specify the percentage of the file system blocks reserved for the super-user. The default percentage is 5%.")
                .with(DocConstraint::DataType { param: "reserved_percent".into(), ty: "integer".into() }),
            // GAP(paper): the 0..=50 range of -m is enforced but
            // undocumented.
            ManualOption::valued("-N", "number-of-inodes", "Overrides the default calculation of the number of inodes.")
                .with(DocConstraint::Conflicts { param: "inodes_count".into(), other: "inode_ratio".into() })
                .with(DocConstraint::Requires { param: "inodes_count".into(), other: "size".into() })
                .with(DocConstraint::Requires { param: "inodes_count".into(), other: "blocksize".into() })
                .with(DocConstraint::DataType { param: "inodes_count".into(), ty: "int".into() }),
            ManualOption::valued("-O", "feature[,...]", "Create a file system with the given features. The pseudo-feature '^feature' disables a feature.")
                .with(DocConstraint::DataType { param: "features".into(), ty: "feature-list".into() })
                .with(DocConstraint::Requires { param: "bigalloc".into(), other: "extent".into() })
                .with(DocConstraint::Conflicts { param: "sparse_super".into(), other: "sparse_super2".into() })
                .with(DocConstraint::Requires { param: "feat_64bit".into(), other: "extent".into() })
                .with(DocConstraint::Conflicts { param: "metadata_csum".into(), other: "uninit_bg".into() })
                .with(DocConstraint::Requires { param: "metadata_csum".into(), other: "inode_size".into() }),
            // GAP(paper): meta_bg and resize_inode cannot be used together
            // — missing from the page (the paper's flagship example).
            // GAP(paper): bigalloc also conflicts with resize_inode —
            // missing.
            // GAP(paper): sparse_super2 changes resize2fs behaviour
            // (Figure 1) — missing.
            ManualOption::valued("-E", "extended-options", "Set extended options: resize=, stride=, stripe_width=, lazy_itable_init=.")
                .with(DocConstraint::Requires { param: "resize_headroom".into(), other: "resize_inode".into() })
                .with(DocConstraint::Requires { param: "resize_headroom".into(), other: "size".into() })
                .with(DocConstraint::DataType { param: "resize_headroom".into(), ty: "size".into() }),
            ManualOption::valued("blocks-count", "blocks", "The number of blocks of the file system; defaults to the device size. Must be at least 64 blocks.")
                .with(DocConstraint::ValueRange { param: "size".into(), min: 64, max: i64::MAX }),
            ManualOption::flag("-q", "Quiet execution. Cannot be combined with -v.")
                .with(DocConstraint::Conflicts { param: "quiet".into(), other: "verbose".into() }),
            ManualOption::flag("-n", "Cause mke2fs to not actually create a file system, but display what it would do."),
            ManualOption::flag("-F", "Force mke2fs to create a file system even if the device is in use."),
            ManualOption::valued("-U", "UUID", "Set the UUID of the file system."),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::MemDevice;
    use ext4sim::MountOptions;

    #[test]
    fn parse_basic_invocation() {
        let m = Mke2fs::from_args(&["-b", "1024", "-m", "3", "-L", "vol", "/dev/x", "8192"]).unwrap();
        assert_eq!(m.params().block_size, Some(1024));
        assert_eq!(m.params().reserved_percent, 3);
        assert_eq!(m.params().label, "vol");
        assert_eq!(m.params().blocks_count, Some(8192));
    }

    #[test]
    fn device_operand_required() {
        assert!(Mke2fs::from_args(&["-b", "1024"]).is_err());
        assert!(Mke2fs::from_args(&["-b1024", "a", "2", "extra"]).is_err());
    }

    #[test]
    fn block_size_validated_at_utility_level() {
        assert!(Mke2fs::from_args(&["-b", "3000", "/dev/x"]).is_err());
        assert!(Mke2fs::from_args(&["-b", "512", "/dev/x"]).is_err());
        assert!(Mke2fs::from_args(&["-b", "hello", "/dev/x"]).is_err());
    }

    #[test]
    fn feature_tokens_parsed() {
        let m = Mke2fs::from_args(&["-O", "sparse_super2,^resize_inode", "/dev/x"]).unwrap();
        assert!(m.params().features.has("sparse_super2"));
        assert!(!m.params().features.has("resize_inode"));
        assert!(Mke2fs::from_args(&["-O", "warp_drive", "/dev/x"]).is_err());
    }

    #[test]
    fn j_conflicts_with_cleared_journal() {
        let err = Mke2fs::from_args(&["-j", "-O", "^has_journal", "/dev/x"]).unwrap_err();
        assert!(matches!(err, ToolError::Cli(CliError::Conflict { .. })));
    }

    #[test]
    fn reserved_percent_range() {
        assert!(Mke2fs::from_args(&["-m", "51", "/dev/x"]).is_err());
        assert!(Mke2fs::from_args(&["-m", "50", "/dev/x"]).is_ok());
    }

    #[test]
    fn journal_size_syntax() {
        let m = Mke2fs::from_args(&["-J", "size=512", "/dev/x"]).unwrap();
        assert_eq!(m.params().journal_blocks, Some(512));
        assert!(Mke2fs::from_args(&["-J", "512", "/dev/x"]).is_err());
    }

    #[test]
    fn extended_options() {
        let m = Mke2fs::from_args(&["-E", "resize=100000,stride=16", "/dev/x"]).unwrap();
        assert_eq!(m.params().resize_headroom, Some(100000));
        assert!(Mke2fs::from_args(&["-E", "bogus=1", "/dev/x"]).is_err());
    }

    #[test]
    fn run_formats_a_mountable_image() {
        let m = Mke2fs::from_args(&["-b", "1024", "/dev/x", "8192"]).unwrap();
        let (dev, report) = m.run(MemDevice::new(1024, 8192)).unwrap();
        assert_eq!(report.blocks_count, 8192);
        assert_eq!(report.group_count, 1);
        let fs = Ext4Fs::mount(dev, &MountOptions::default()).unwrap();
        assert_eq!(fs.superblock().blocks_count, 8192);
    }

    #[test]
    fn run_kernel_level_conflict_surfaces() {
        // meta_bg + resize_inode passes CLI parsing (the manual is silent!)
        // but the kernel-level validation refuses it.
        let m = Mke2fs::from_args(&["-O", "meta_bg", "/dev/x"]).unwrap();
        let err = m.run(MemDevice::new(1024, 8192)).unwrap_err();
        assert!(matches!(err, ToolError::Fs(ext4sim::FsError::ConflictingParams { .. })));
    }

    #[test]
    fn dry_run_leaves_device_untouched() {
        let m = Mke2fs::from_args(&["-n", "-b", "1024", "/dev/x", "8192"]).unwrap();
        assert!(m.is_dry_run());
        let (dev, report) = m.run(MemDevice::new(1024, 8192)).unwrap();
        assert_eq!(report.blocks_count, 8192);
        assert_eq!(dev.populated_blocks(), 0);
    }

    #[test]
    fn label_too_long_rejected() {
        assert!(Mke2fs::from_args(&["-L", "12345678901234567", "/dev/x"]).is_err());
    }

    #[test]
    fn sparse_super2_round_trip() {
        let m = Mke2fs::from_args(&["-b1024", "-O", "sparse_super2,^sparse_super", "/dev/x"]).unwrap();
        let (dev, report) = m.run(MemDevice::new(1024, 8192 * 4)).unwrap();
        assert_eq!(report.backup_groups, vec![1, 3]);
        let fs = Ext4Fs::open_for_maintenance(dev).unwrap();
        assert_eq!(fs.superblock().backup_bgs, [1, 3]);
    }

    #[test]
    fn manual_documents_gaps_faithfully() {
        let page = manual();
        // documented: -b range
        assert!(page
            .constraints_for("blocksize")
            .iter()
            .any(|c| matches!(c, DocConstraint::ValueRange { .. })));
        // NOT documented (paper's flagship example): meta_bg/resize_inode
        assert!(page
            .all_constraints()
            .iter()
            .all(|c| !matches!(c, DocConstraint::Conflicts { param, other }
                if (param == "meta_bg" && other == "resize_inode")
                    || (param == "resize_inode" && other == "meta_bg"))));
        // NOT documented: -m range
        assert!(page
            .constraints_for("reserved_percent")
            .iter()
            .all(|c| !matches!(c, DocConstraint::ValueRange { .. })));
    }

    #[test]
    fn param_table_is_large_enough() {
        assert!(param_table().len() >= 30);
    }
}
