//! A small getopt-style parser shared by the utilities.
//!
//! Real e2fsprogs tools parse `-b 1024`-style short options with optional
//! attached values (`-b1024`) plus positional operands. This module
//! reproduces that surface so each utility's option handling mirrors its
//! real counterpart.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors from command-line parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// An option the utility does not define.
    UnknownOption(String),
    /// An option that requires a value was given none.
    MissingValue(String),
    /// A value failed to parse (e.g., `-b banana`).
    BadValue {
        /// The option.
        option: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: String,
    },
    /// Too many / too few positional operands.
    BadOperands(String),
    /// Two options that may not be combined (a cross-parameter
    /// dependency violation at the utility level).
    Conflict {
        /// First option.
        a: String,
        /// Second option.
        b: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownOption(o) => write!(f, "unknown option: {o}"),
            CliError::MissingValue(o) => write!(f, "option {o} requires a value"),
            CliError::BadValue { option, value, expected } => {
                write!(f, "bad value '{value}' for {option}: expected {expected}")
            }
            CliError::BadOperands(msg) => write!(f, "bad operands: {msg}"),
            CliError::Conflict { a, b } => write!(f, "options {a} and {b} may not be combined"),
        }
    }
}

impl Error for CliError {}

/// The result of tokenising a command line against an option spec.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    /// Flag options present (e.g., `-p`), keyed without the dash.
    pub flags: Vec<String>,
    /// Valued options (e.g., `-b 1024`), keyed without the dash.
    pub values: BTreeMap<String, String>,
    /// Positional operands in order.
    pub operands: Vec<String>,
}

impl ParsedArgs {
    /// True if flag `name` (no dash) was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The value of option `name` (no dash), if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Parses the value of option `name` as an integer.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadValue`] if present but not an integer.
    pub fn int_value(&self, name: &str) -> Result<Option<u64>, CliError> {
        match self.value(name) {
            None => Ok(None),
            Some(v) => v.parse::<u64>().map(Some).map_err(|_| CliError::BadValue {
                option: format!("-{name}"),
                value: v.to_string(),
                expected: "an integer".to_string(),
            }),
        }
    }
}

/// Parses `argv` (without the program name). `flag_opts` lists the no-value
/// short options, `value_opts` the value-taking ones; both use the bare
/// letter/name without the dash. Attached values (`-b1024`) are accepted
/// for single-letter options.
///
/// # Errors
///
/// Returns [`CliError::UnknownOption`] or [`CliError::MissingValue`].
pub fn parse(
    argv: &[&str],
    flag_opts: &[&str],
    value_opts: &[&str],
) -> Result<ParsedArgs, CliError> {
    let mut out = ParsedArgs::default();
    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i];
        if let Some(body) = arg.strip_prefix('-') {
            if body.is_empty() {
                return Err(CliError::UnknownOption("-".to_string()));
            }
            // exact multi-char option first (e.g. -o for mount is single
            // letter anyway; mke2fs has none multi-char)
            if flag_opts.contains(&body) {
                out.flags.push(body.to_string());
            } else if value_opts.contains(&body) {
                i += 1;
                let v = argv.get(i).ok_or_else(|| CliError::MissingValue(arg.to_string()))?;
                out.values.insert(body.to_string(), (*v).to_string());
            } else {
                // attached value form: -b1024
                let (head, tail) = body.split_at(1);
                if value_opts.contains(&head) && !tail.is_empty() {
                    out.values.insert(head.to_string(), tail.to_string());
                } else {
                    return Err(CliError::UnknownOption(arg.to_string()));
                }
            }
        } else {
            out.operands.push(arg.to_string());
        }
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_values_operands() {
        let p = parse(&["-p", "-b", "1024", "/dev/sda1", "2048"], &["p"], &["b"]).unwrap();
        assert!(p.has_flag("p"));
        assert_eq!(p.value("b"), Some("1024"));
        assert_eq!(p.operands, vec!["/dev/sda1", "2048"]);
    }

    #[test]
    fn attached_value_form() {
        let p = parse(&["-b1024"], &[], &["b"]).unwrap();
        assert_eq!(p.value("b"), Some("1024"));
    }

    #[test]
    fn unknown_option_rejected() {
        assert_eq!(parse(&["-z"], &["p"], &["b"]), Err(CliError::UnknownOption("-z".to_string())));
    }

    #[test]
    fn missing_value_rejected() {
        assert_eq!(parse(&["-b"], &[], &["b"]), Err(CliError::MissingValue("-b".to_string())));
    }

    #[test]
    fn int_value_parses_and_rejects() {
        let p = parse(&["-b", "4096"], &[], &["b"]).unwrap();
        assert_eq!(p.int_value("b").unwrap(), Some(4096));
        let p = parse(&["-b", "banana"], &[], &["b"]).unwrap();
        assert!(p.int_value("b").is_err());
        assert_eq!(p.int_value("x").unwrap(), None);
    }

    #[test]
    fn bare_dash_rejected() {
        assert!(parse(&["-"], &[], &[]).is_err());
    }

    #[test]
    fn display_messages() {
        let e = CliError::Conflict { a: "-p".to_string(), b: "-y".to_string() };
        assert!(e.to_string().contains("-p"));
        assert!(e.to_string().contains("-y"));
    }
}
