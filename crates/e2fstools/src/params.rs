//! Parameter specification tables.
//!
//! Table 2 of the paper counts how many of each component's configuration
//! parameters the de-facto test suites actually exercise (xfstest uses 29
//! of Ext4's >85; e2fsprogs-test uses 6 of e2fsck's >35 and 7 of
//! resize2fs's >15). These tables define that parameter universe: one
//! [`ParamSpec`] per parameter, spread over the utility modules plus the
//! ext4 kernel-module parameters defined here.

use serde::{Deserialize, Serialize};

/// The value domain of a parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamType {
    /// A boolean flag.
    Bool,
    /// An integer with an inclusive range.
    Int {
        /// Minimum.
        min: i64,
        /// Maximum.
        max: i64,
    },
    /// One of an enumerated set.
    Enum(Vec<String>),
    /// Free-form string.
    Str,
    /// A size in bytes/blocks.
    Size,
    /// A feature toggle (`-O name` / `-O ^name`).
    Feature,
}

/// The configuration stage at which the parameter takes effect
/// (Figure 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// File-system creation (`mke2fs`).
    Create,
    /// Mount time (`mount`).
    Mount,
    /// Online utilities (`e4defrag`) and kernel knobs.
    Online,
    /// Offline utilities (`resize2fs`, `e2fsck`).
    Offline,
}

/// One configuration parameter of one component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Owning component (`mke2fs`, `mount`, `ext4`, ...).
    pub component: String,
    /// Parameter name (`blocksize`, `sparse_super2`, `data`, ...).
    pub name: String,
    /// Value domain.
    pub param_type: ParamType,
    /// Stage at which it applies.
    pub stage: Stage,
    /// One-line description.
    pub description: String,
}

impl ParamSpec {
    /// Convenience constructor.
    pub fn new(
        component: &str,
        name: &str,
        param_type: ParamType,
        stage: Stage,
        description: &str,
    ) -> Self {
        ParamSpec {
            component: component.to_string(),
            name: name.to_string(),
            param_type,
            stage,
            description: description.to_string(),
        }
    }
}

/// Parameters of the ext4 kernel module itself (sysfs/module knobs), which
/// together with `mke2fs` and `mount` make up the ">85" Ext4 parameter
/// universe of Table 2.
pub fn ext4_module_params() -> Vec<ParamSpec> {
    let c = "ext4";
    let int = |min, max| ParamType::Int { min, max };
    vec![
        ParamSpec::new(c, "mb_stats", ParamType::Bool, Stage::Online, "collect multiblock allocator statistics"),
        ParamSpec::new(c, "mb_max_to_scan", int(0, 100_000), Stage::Online, "max extents to scan in the allocator"),
        ParamSpec::new(c, "mb_min_to_scan", int(0, 100_000), Stage::Online, "min extents to scan before picking"),
        ParamSpec::new(c, "mb_order2_req", int(0, 64), Stage::Online, "min order for buddy allocation requests"),
        ParamSpec::new(c, "mb_stream_req", int(0, 1 << 20), Stage::Online, "small-file stream allocation threshold"),
        ParamSpec::new(c, "mb_group_prealloc", int(0, 1 << 20), Stage::Online, "group preallocation size"),
        ParamSpec::new(c, "max_writeback_mb_bump", int(1, 1 << 16), Stage::Online, "max MB written back per inode round"),
        ParamSpec::new(c, "extent_max_zeroout_kb", int(0, 1 << 20), Stage::Online, "max extent zeroout size"),
        ParamSpec::new(c, "trigger_fs_error", ParamType::Str, Stage::Online, "debug: inject an fs error"),
        ParamSpec::new(c, "err_ratelimit_interval_ms", int(0, 1 << 30), Stage::Online, "error message rate limit interval"),
        ParamSpec::new(c, "err_ratelimit_burst", int(0, 1 << 16), Stage::Online, "error message rate limit burst"),
        ParamSpec::new(c, "warning_ratelimit_interval_ms", int(0, 1 << 30), Stage::Online, "warning rate limit interval"),
        ParamSpec::new(c, "warning_ratelimit_burst", int(0, 1 << 16), Stage::Online, "warning rate limit burst"),
        ParamSpec::new(c, "msg_ratelimit_interval_ms", int(0, 1 << 30), Stage::Online, "message rate limit interval"),
        ParamSpec::new(c, "msg_ratelimit_burst", int(0, 1 << 16), Stage::Online, "message rate limit burst"),
        ParamSpec::new(c, "inode_readahead_blks", int(0, 1 << 30), Stage::Online, "inode table readahead (power of 2)"),
        ParamSpec::new(c, "inode_goal", int(0, i64::MAX), Stage::Online, "debug: force next inode number"),
        ParamSpec::new(c, "reserved_clusters", int(0, i64::MAX), Stage::Online, "clusters reserved for delalloc"),
        ParamSpec::new(c, "first_error_time", ParamType::Str, Stage::Online, "timestamp of first error (read/clear)"),
        ParamSpec::new(c, "last_error_time", ParamType::Str, Stage::Online, "timestamp of last error (read/clear)"),
    ]
}

/// The whole Ext4 ecosystem parameter universe: every component's table.
pub fn all_params() -> Vec<ParamSpec> {
    let mut v = crate::mke2fs::param_table();
    v.extend(crate::mount_cmd::param_table());
    v.extend(ext4_module_params());
    v.extend(crate::e4defrag::param_table());
    v.extend(crate::resize2fs::param_table());
    v.extend(crate::e2fsck::param_table());
    v
}

/// Parameters owned by one component.
pub fn params_of(component: &str) -> Vec<ParamSpec> {
    all_params().into_iter().filter(|p| p.component == component).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext4_module_param_count() {
        assert_eq!(ext4_module_params().len(), 20);
    }

    #[test]
    fn universe_matches_table2_totals() {
        // Table 2: Ext4 (mke2fs + mount + ext4) > 85
        let ext4_universe = params_of("mke2fs").len() + params_of("mount").len() + params_of("ext4").len();
        assert!(ext4_universe > 85, "Ext4 universe is {ext4_universe}, need >85");
        // e2fsck > 35
        assert!(params_of("e2fsck").len() > 35, "e2fsck has {}", params_of("e2fsck").len());
        // resize2fs > 15
        assert!(params_of("resize2fs").len() > 15, "resize2fs has {}", params_of("resize2fs").len());
    }

    #[test]
    fn no_duplicate_params_within_component() {
        let all = all_params();
        for p in &all {
            let dup = all
                .iter()
                .filter(|q| q.component == p.component && q.name == p.name)
                .count();
            assert_eq!(dup, 1, "duplicate spec {}:{}", p.component, p.name);
        }
    }

    #[test]
    fn serde_round_trip() {
        let p = ParamSpec::new("x", "y", ParamType::Int { min: 0, max: 9 }, Stage::Create, "d");
        let back: ParamSpec = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
        assert_eq!(p, back);
    }
}
