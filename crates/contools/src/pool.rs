//! The shared worker pool, re-exported from [`conpool`].
//!
//! The implementation moved into its own bottom-of-the-stack crate so
//! `confdep` (which `contools` depends on) can fan out component
//! analysis on the same pool without a dependency cycle. The canonical
//! `contools::pool::{parallel_map, effective_threads}` path is
//! preserved here.

pub use conpool::{effective_threads, parallel_map};
