//! ConDocCk: manual-vs-code consistency checking (§4.2).
//!
//! For every *true* extracted dependency, the checker looks for a manual
//! statement of the same constraint; a dependency the code enforces (or
//! relies on) that no manual documents is an inaccurate-documentation
//! issue. The paper found 12 such issues from the 59 true dependencies;
//! this module reproduces them.

use confdep::{is_true_dependency, ConstraintSet, Dependency, DocVerdict};
use e2fstools::manual::ManualPage;
use ecosys::Ecosystem;
use serde::{Deserialize, Serialize};

/// What is wrong with the documentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DocIssueKind {
    /// The dependency is not documented at all.
    Missing,
    /// No manual exists for the component.
    NoManual,
}

/// One documentation issue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DocIssue {
    /// The undocumented dependency.
    pub dependency: Dependency,
    /// The manual that should document it.
    pub manual: String,
    /// Issue kind.
    pub kind: DocIssueKind,
}

/// The kernel-side documentation for the ext4 module knobs — now owned
/// by the registry layer ([`ecosys::ext4_kernel_doc`]); re-exported
/// here for the established call sites.
pub fn ext4_kernel_doc() -> ManualPage {
    ecosys::ext4_kernel_doc()
}

/// Runs ConDocCk over the Ext4 ecosystem: extract dependencies, compile
/// them into constraints, keep the true ones, and report every
/// constraint whose [`ConstraintSet`] documentation verdict is not
/// `Documented`.
///
/// # Errors
///
/// Returns [`confdep::ConfdepError`] if a model fails to compile.
pub fn run_condocck() -> Result<Vec<DocIssue>, confdep::ConfdepError> {
    run_condocck_for(&ecosys::ext4())
}

/// Runs ConDocCk over any registered ecosystem: the checker logic is
/// unchanged; the constraint set and the manual corpus come from the
/// ecosystem descriptor.
///
/// # Errors
///
/// Returns [`confdep::ConfdepError`] if a model fails to compile.
pub fn run_condocck_for(eco: &Ecosystem) -> Result<Vec<DocIssue>, confdep::ConfdepError> {
    let constraints = eco.constraints()?;
    let pages = eco.doc_corpus();
    Ok(doc_issues(&constraints, &pages))
}

/// The shared checker core: every *true* compiled dependency whose
/// documentation verdict over `pages` is not `Documented`.
fn doc_issues(constraints: &ConstraintSet, pages: &[ManualPage]) -> Vec<DocIssue> {
    let page_refs: Vec<&ManualPage> = pages.iter().collect();
    let mut issues = Vec::new();
    for c in constraints.constraints() {
        if !is_true_dependency(&c.dependency) {
            continue;
        }
        let kind = match c.doc_verdict(&page_refs) {
            DocVerdict::Documented => continue,
            DocVerdict::Missing => DocIssueKind::Missing,
            DocVerdict::NoManual => DocIssueKind::NoManual,
        };
        issues.push(DocIssue {
            dependency: c.dependency.clone(),
            manual: c.dependency.subject.component.clone(),
            kind,
        });
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use confdep::DepKind;

    #[test]
    fn finds_exactly_twelve_issues() {
        // §4.3: "we have identified 12 inaccurate documentation issues"
        let issues = run_condocck().unwrap();
        let sigs: Vec<String> =
            issues.iter().map(|i| i.dependency.signature()).collect();
        assert_eq!(issues.len(), 12, "issues: {sigs:#?}");
    }

    #[test]
    fn flagship_example_is_found() {
        // "there is a cross-parameter dependency in mke2fs specifying
        //  that meta_bg and resize_inode can not be used together, which
        //  is missing from the manual"
        let issues = run_condocck().unwrap();
        assert!(issues.iter().any(|i| {
            let s = i.dependency.signature();
            s.contains("meta_bg") && s.contains("resize_inode") && s.starts_with("CpdControl")
        }));
    }

    #[test]
    fn figure1_behavioral_gap_is_found() {
        // the sparse_super2 → resize2fs behavioural dependency is
        // undocumented (the root of the Figure 1 surprise)
        let issues = run_condocck().unwrap();
        assert!(issues
            .iter()
            .any(|i| i.dependency.signature().contains("sparse_super2")));
    }

    #[test]
    fn documented_dependencies_are_not_flagged() {
        let issues = run_condocck().unwrap();
        for i in &issues {
            // the blocksize range IS documented; it must not appear
            assert!(
                !(i.dependency.kind == DepKind::SdValueRange
                    && i.dependency.subject.param == "blocksize"),
                "blocksize range is documented but was flagged"
            );
        }
    }

    #[test]
    fn false_positives_are_excluded() {
        // ConDocCk runs on the 59 *true* dependencies only
        let issues = run_condocck().unwrap();
        for i in &issues {
            assert!(confdep::is_true_dependency(&i.dependency));
        }
    }

    #[test]
    fn every_component_has_a_manual() {
        let corpus = ecosys::ext4().doc_corpus();
        for c in ["mke2fs", "mount", "ext4", "e4defrag", "resize2fs", "e2fsck"] {
            assert!(corpus.iter().any(|p| p.component == c), "{c} lacks a manual");
        }
        let issues = run_condocck().unwrap();
        assert!(issues.iter().all(|i| i.kind == DocIssueKind::Missing));
    }

    #[test]
    fn f2fs_corpus_yields_documentation_issues_too() {
        // the f2fs manuals carry deliberate gaps (the zone cap, the
        // extra_attr prerequisites, the discard CCD, the -y/-n
        // conflict) — the unchanged checker must surface them
        let issues = run_condocck_for(&ecosys::f2fs()).unwrap();
        assert!(issues.len() >= 5, "only {} f2fs issues", issues.len());
        assert!(issues.iter().all(|i| i.kind == DocIssueKind::Missing));
        // the casefold/encrypt conflict is enforced at format time but
        // stated by no manual
        assert!(issues
            .iter()
            .any(|i| i.dependency.signature() == "CpdControl|mkfs_f2fs|casefold~encrypt"));
        // the documented norecovery→ro requirement must NOT be flagged
        assert!(issues
            .iter()
            .all(|i| i.dependency.signature() != "CpdControl|f2fs|norecovery~ro"));
    }

    #[test]
    fn ext4_kernel_doc_is_the_registry_layer_page() {
        let page = ext4_kernel_doc();
        assert_eq!(page.component, "ext4");
        assert!(page.option("inode_readahead_blks").is_some());
    }
}
