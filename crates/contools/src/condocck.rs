//! ConDocCk: manual-vs-code consistency checking (§4.2).
//!
//! For every *true* extracted dependency, the checker looks for a manual
//! statement of the same constraint; a dependency the code enforces (or
//! relies on) that no manual documents is an inaccurate-documentation
//! issue. The paper found 12 such issues from the 59 true dependencies;
//! this module reproduces them.

use confdep::{
    extract_scenario, is_true_dependency, models, DepKind, Dependency, Endpoint, ExtractOptions,
};
use e2fstools::manual::{DocConstraint, ManualPage};
use e2fstools::{e2fsck, e4defrag, mke2fs, mount_cmd, resize2fs};
use serde::{Deserialize, Serialize};

/// What is wrong with the documentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DocIssueKind {
    /// The dependency is not documented at all.
    Missing,
    /// No manual exists for the component.
    NoManual,
}

/// One documentation issue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DocIssue {
    /// The undocumented dependency.
    pub dependency: Dependency,
    /// The manual that should document it.
    pub manual: String,
    /// Issue kind.
    pub kind: DocIssueKind,
}

/// The kernel-side documentation for the ext4 module knobs
/// (Documentation/admin-guide + sysfs docs): it documents the knobs'
/// types, and a range only for `mb_stream_req` — the
/// `inode_readahead_blks` power-of-two/limit constraint is one of the
/// paper's missing-documentation findings.
pub fn ext4_kernel_doc() -> ManualPage {
    ManualPage {
        component: "ext4".to_string(),
        synopsis: "/sys/fs/ext4/<disk>/...".to_string(),
        description: "Tunables of the ext4 kernel module.".to_string(),
        options: vec![
            e2fstools::manual::ManualOption::valued(
                "inode_readahead_blks",
                "n",
                "Tuning parameter which controls the maximum number of inode table blocks that ext4's inode table readahead algorithm will pre-read.",
            )
            .with(DocConstraint::DataType { param: "inode_readahead_blks".into(), ty: "int".into() }),
            // GAP(paper): the power-of-two/upper-bound constraint is
            // enforced in code but absent here.
            e2fstools::manual::ManualOption::valued(
                "mb_stream_req",
                "n",
                "Files smaller than this number of blocks use group preallocation; at most 1048576.",
            )
            .with(DocConstraint::DataType { param: "mb_stream_req".into(), ty: "int".into() })
            .with(DocConstraint::ValueRange { param: "mb_stream_req".into(), min: 0, max: 1_048_576 }),
        ],
    }
}

fn manual_for(component: &str) -> Option<ManualPage> {
    match component {
        "mke2fs" => Some(mke2fs::manual()),
        "mount" => Some(mount_cmd::manual()),
        "resize2fs" => Some(resize2fs::manual()),
        "e2fsck" => Some(e2fsck::manual()),
        "e4defrag" => Some(e4defrag::manual()),
        "ext4" => Some(ext4_kernel_doc()),
        _ => None,
    }
}

fn pair_documented(page: &ManualPage, a: &str, b: &str) -> bool {
    page.all_constraints().iter().any(|c| match c {
        DocConstraint::Conflicts { param, other } | DocConstraint::Requires { param, other } => {
            (param == a && other == b) || (param == b && other == a)
        }
        _ => false,
    })
}

fn cross_documented(pages: &[&ManualPage], subj_param: &str, obj_param: Option<&str>) -> bool {
    pages.iter().any(|page| {
        page.all_constraints().iter().any(|c| match c {
            DocConstraint::CrossComponent { param, other, .. } => match obj_param {
                Some(q) => {
                    (param == subj_param && other == q) || (param == q && other == subj_param)
                }
                None => param == subj_param || other == subj_param,
            },
            _ => false,
        })
    })
}

fn is_documented(dep: &Dependency, all_pages: &[&ManualPage]) -> Option<DocIssueKind> {
    let Some(page) = all_pages.iter().find(|p| p.component == dep.subject.component) else {
        return Some(DocIssueKind::NoManual);
    };
    let p = &dep.subject.param;
    let ok = match dep.kind {
        DepKind::SdDataType => page
            .all_constraints()
            .iter()
            .any(|c| matches!(c, DocConstraint::DataType { param, .. } if param == p)),
        DepKind::SdValueRange => page.all_constraints().iter().any(|c| match c {
            DocConstraint::ValueRange { param, .. } => param == p,
            DocConstraint::DataType { param, ty } => param == p && ty == "enum",
            _ => false,
        }),
        DepKind::CpdControl | DepKind::CpdValue => match &dep.object {
            Some(Endpoint::Param(q)) => pair_documented(page, p, &q.param),
            _ => false,
        },
        DepKind::CcdControl | DepKind::CcdValue | DepKind::CcdBehavioral => {
            let obj_param = match &dep.object {
                Some(Endpoint::Param(q)) => Some(q.param.as_str()),
                _ => None,
            };
            cross_documented(all_pages, p, obj_param)
        }
    };
    if ok {
        None
    } else {
        Some(DocIssueKind::Missing)
    }
}

/// Runs ConDocCk over the full ecosystem: extract dependencies, keep the
/// true ones, and report every dependency no manual documents.
///
/// # Errors
///
/// Returns [`confdep::ConfdepError`] if a model fails to compile.
pub fn run_condocck() -> Result<Vec<DocIssue>, confdep::ConfdepError> {
    let deps = extract_scenario(&models::all(), ExtractOptions::default())?;
    let pages: Vec<ManualPage> = ["mke2fs", "mount", "ext4", "e4defrag", "resize2fs", "e2fsck"]
        .iter()
        .filter_map(|c| manual_for(c))
        .collect();
    let page_refs: Vec<&ManualPage> = pages.iter().collect();
    let mut issues = Vec::new();
    for dep in deps.into_iter().filter(is_true_dependency) {
        if let Some(kind) = is_documented(&dep, &page_refs) {
            let manual = dep.subject.component.clone();
            issues.push(DocIssue { dependency: dep, manual, kind });
        }
    }
    Ok(issues)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exactly_twelve_issues() {
        // §4.3: "we have identified 12 inaccurate documentation issues"
        let issues = run_condocck().unwrap();
        let sigs: Vec<String> =
            issues.iter().map(|i| i.dependency.signature()).collect();
        assert_eq!(issues.len(), 12, "issues: {sigs:#?}");
    }

    #[test]
    fn flagship_example_is_found() {
        // "there is a cross-parameter dependency in mke2fs specifying
        //  that meta_bg and resize_inode can not be used together, which
        //  is missing from the manual"
        let issues = run_condocck().unwrap();
        assert!(issues.iter().any(|i| {
            let s = i.dependency.signature();
            s.contains("meta_bg") && s.contains("resize_inode") && s.starts_with("CpdControl")
        }));
    }

    #[test]
    fn figure1_behavioral_gap_is_found() {
        // the sparse_super2 → resize2fs behavioural dependency is
        // undocumented (the root of the Figure 1 surprise)
        let issues = run_condocck().unwrap();
        assert!(issues
            .iter()
            .any(|i| i.dependency.signature().contains("sparse_super2")));
    }

    #[test]
    fn documented_dependencies_are_not_flagged() {
        let issues = run_condocck().unwrap();
        for i in &issues {
            // the blocksize range IS documented; it must not appear
            assert!(
                !(i.dependency.kind == DepKind::SdValueRange
                    && i.dependency.subject.param == "blocksize"),
                "blocksize range is documented but was flagged"
            );
        }
    }

    #[test]
    fn false_positives_are_excluded() {
        // ConDocCk runs on the 59 *true* dependencies only
        let issues = run_condocck().unwrap();
        for i in &issues {
            assert!(confdep::is_true_dependency(&i.dependency));
        }
    }

    #[test]
    fn every_component_has_a_manual() {
        for c in ["mke2fs", "mount", "ext4", "e4defrag", "resize2fs", "e2fsck"] {
            assert!(manual_for(c).is_some(), "{c} lacks a manual");
        }
        assert!(manual_for("xfs").is_none());
        let issues = run_condocck().unwrap();
        assert!(issues.iter().all(|i| i.kind == DocIssueKind::Missing));
    }
}
