//! ConDocCk: manual-vs-code consistency checking (§4.2).
//!
//! For every *true* extracted dependency, the checker looks for a manual
//! statement of the same constraint; a dependency the code enforces (or
//! relies on) that no manual documents is an inaccurate-documentation
//! issue. The paper found 12 such issues from the 59 true dependencies;
//! this module reproduces them.

use confdep::{
    extract_scenario, is_true_dependency, models, ConstraintSet, Dependency, DocVerdict,
    ExtractOptions,
};
use e2fstools::manual::{DocConstraint, ManualPage};
use e2fstools::{e2fsck, e4defrag, mke2fs, mount_cmd, resize2fs};
use serde::{Deserialize, Serialize};

/// What is wrong with the documentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DocIssueKind {
    /// The dependency is not documented at all.
    Missing,
    /// No manual exists for the component.
    NoManual,
}

/// One documentation issue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DocIssue {
    /// The undocumented dependency.
    pub dependency: Dependency,
    /// The manual that should document it.
    pub manual: String,
    /// Issue kind.
    pub kind: DocIssueKind,
}

/// The kernel-side documentation for the ext4 module knobs
/// (Documentation/admin-guide + sysfs docs): it documents the knobs'
/// types, and a range only for `mb_stream_req` — the
/// `inode_readahead_blks` power-of-two/limit constraint is one of the
/// paper's missing-documentation findings.
pub fn ext4_kernel_doc() -> ManualPage {
    ManualPage {
        component: "ext4".to_string(),
        synopsis: "/sys/fs/ext4/<disk>/...".to_string(),
        description: "Tunables of the ext4 kernel module.".to_string(),
        options: vec![
            e2fstools::manual::ManualOption::valued(
                "inode_readahead_blks",
                "n",
                "Tuning parameter which controls the maximum number of inode table blocks that ext4's inode table readahead algorithm will pre-read.",
            )
            .with(DocConstraint::DataType { param: "inode_readahead_blks".into(), ty: "int".into() }),
            // GAP(paper): the power-of-two/upper-bound constraint is
            // enforced in code but absent here.
            e2fstools::manual::ManualOption::valued(
                "mb_stream_req",
                "n",
                "Files smaller than this number of blocks use group preallocation; at most 1048576.",
            )
            .with(DocConstraint::DataType { param: "mb_stream_req".into(), ty: "int".into() })
            .with(DocConstraint::ValueRange { param: "mb_stream_req".into(), min: 0, max: 1_048_576 }),
        ],
    }
}

fn manual_for(component: &str) -> Option<ManualPage> {
    match component {
        "mke2fs" => Some(mke2fs::manual()),
        "mount" => Some(mount_cmd::manual()),
        "resize2fs" => Some(resize2fs::manual()),
        "e2fsck" => Some(e2fsck::manual()),
        "e4defrag" => Some(e4defrag::manual()),
        "ext4" => Some(ext4_kernel_doc()),
        _ => None,
    }
}

/// Runs ConDocCk over the full ecosystem: extract dependencies, compile
/// them into constraints, keep the true ones, and report every
/// constraint whose [`ConstraintSet`] documentation verdict is not
/// `Documented`.
///
/// # Errors
///
/// Returns [`confdep::ConfdepError`] if a model fails to compile.
pub fn run_condocck() -> Result<Vec<DocIssue>, confdep::ConfdepError> {
    let constraints =
        ConstraintSet::compile(extract_scenario(&models::all(), ExtractOptions::default())?);
    let pages: Vec<ManualPage> = ["mke2fs", "mount", "ext4", "e4defrag", "resize2fs", "e2fsck"]
        .iter()
        .filter_map(|c| manual_for(c))
        .collect();
    let page_refs: Vec<&ManualPage> = pages.iter().collect();
    let mut issues = Vec::new();
    for c in constraints.constraints() {
        if !is_true_dependency(&c.dependency) {
            continue;
        }
        let kind = match c.doc_verdict(&page_refs) {
            DocVerdict::Documented => continue,
            DocVerdict::Missing => DocIssueKind::Missing,
            DocVerdict::NoManual => DocIssueKind::NoManual,
        };
        issues.push(DocIssue {
            dependency: c.dependency.clone(),
            manual: c.dependency.subject.component.clone(),
            kind,
        });
    }
    Ok(issues)
}

#[cfg(test)]
mod tests {
    use super::*;
    use confdep::DepKind;

    #[test]
    fn finds_exactly_twelve_issues() {
        // §4.3: "we have identified 12 inaccurate documentation issues"
        let issues = run_condocck().unwrap();
        let sigs: Vec<String> =
            issues.iter().map(|i| i.dependency.signature()).collect();
        assert_eq!(issues.len(), 12, "issues: {sigs:#?}");
    }

    #[test]
    fn flagship_example_is_found() {
        // "there is a cross-parameter dependency in mke2fs specifying
        //  that meta_bg and resize_inode can not be used together, which
        //  is missing from the manual"
        let issues = run_condocck().unwrap();
        assert!(issues.iter().any(|i| {
            let s = i.dependency.signature();
            s.contains("meta_bg") && s.contains("resize_inode") && s.starts_with("CpdControl")
        }));
    }

    #[test]
    fn figure1_behavioral_gap_is_found() {
        // the sparse_super2 → resize2fs behavioural dependency is
        // undocumented (the root of the Figure 1 surprise)
        let issues = run_condocck().unwrap();
        assert!(issues
            .iter()
            .any(|i| i.dependency.signature().contains("sparse_super2")));
    }

    #[test]
    fn documented_dependencies_are_not_flagged() {
        let issues = run_condocck().unwrap();
        for i in &issues {
            // the blocksize range IS documented; it must not appear
            assert!(
                !(i.dependency.kind == DepKind::SdValueRange
                    && i.dependency.subject.param == "blocksize"),
                "blocksize range is documented but was flagged"
            );
        }
    }

    #[test]
    fn false_positives_are_excluded() {
        // ConDocCk runs on the 59 *true* dependencies only
        let issues = run_condocck().unwrap();
        for i in &issues {
            assert!(confdep::is_true_dependency(&i.dependency));
        }
    }

    #[test]
    fn every_component_has_a_manual() {
        for c in ["mke2fs", "mount", "ext4", "e4defrag", "resize2fs", "e2fsck"] {
            assert!(manual_for(c).is_some(), "{c} lacks a manual");
        }
        assert!(manual_for("xfs").is_none());
        let issues = run_condocck().unwrap();
        assert!(issues.iter().all(|i| i.kind == DocIssueKind::Missing));
    }
}
