//! ConBugCk: dependency-aware configuration generation (§4.2).
//!
//! Existing FS test suites exercise few configuration states (Table 2),
//! and naive random configurations mostly die on shallow validation
//! errors before reaching deep code. ConBugCk "manipulates
//! configurations without violating dependencies", so the driven test
//! gets past the shallow checks and exercises the target code under many
//! distinct configuration states. The ablation benchmark compares the
//! *deep-run* rate of dependency-aware generation against naive random
//! generation.

use std::collections::HashMap;

use blockdev::MemDevice;
use confdep::{extract_scenario, models, ConstraintSet, ExtractOptions};
use e2fstools::{E2fsck, FsckMode, Mke2fs, MountCmd, TypedConfig};
use ext4sim::CachePolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One generated configuration: a `mke2fs` invocation plus mount
/// options.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratedConfig {
    /// `mke2fs` arguments (without the device operand).
    pub mkfs_args: Vec<String>,
    /// `mount -o` option string.
    pub mount_opts: String,
}

impl GeneratedConfig {
    /// The lenient typed views of the two invocation halves — the
    /// whole-configuration state in the ecosystem's shared value model.
    pub fn typed(&self) -> (TypedConfig, TypedConfig) {
        (
            TypedConfig::from_mkfs_args_lenient(&self.mkfs_args),
            TypedConfig::from_mount_opts_lenient(&self.mount_opts),
        )
    }

    /// Canonical whole-configuration state key — the identity
    /// [`coverage`] counts distinct states by, and the memoization key
    /// the campaigns use to run each distinct state only once.
    ///
    /// Derived from the sorted [`TypedConfig`] views, so
    /// semantically-equal configurations (same options in a different
    /// argument order or spelling) share one state.
    pub fn state_key(&self) -> String {
        let (mkfs, mount) = self.typed();
        format!("{}|{}", mkfs.canonical_key(), mount.canonical_key())
    }

    /// Allocation-free fingerprint of [`GeneratedConfig::state_key`]:
    /// a 64-bit FNV-1a hash streamed over the exact canonical-key
    /// bytes, so the campaign dedup maps can key on a `u64` instead of
    /// building a `String` per candidate. `state_key` remains the
    /// display/serde identity.
    pub fn state_id(&self) -> u64 {
        use std::fmt::Write as _;
        let (mkfs, mount) = self.typed();
        let mut hasher = FnvWriter::new();
        mkfs.canonical_key_into(&mut hasher).expect("hashing is infallible");
        hasher.write_char('|').expect("hashing is infallible");
        mount.canonical_key_into(&mut hasher).expect("hashing is infallible");
        hasher.finish()
    }
}

/// Streaming FNV-1a hasher behind [`std::fmt::Write`], so canonical
/// keys hash without being materialised as strings.
struct FnvWriter(u64);

impl FnvWriter {
    fn new() -> Self {
        FnvWriter(0xcbf2_9ce4_8422_2325)
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for &b in s.as_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(())
    }
}

/// How deep a configuration drove the ecosystem before something
/// stopped it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RunDepth {
    /// Rejected by utility-level (CLI) validation.
    RejectedCli,
    /// Rejected by kernel-level validation at format time.
    RejectedFormat,
    /// Image created but the mount was rejected.
    RejectedMount,
    /// Mounted and the workload ran to completion with a clean final
    /// check — the deep-code target state.
    Deep,
}

/// Aggregate results of a generation campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigCampaign {
    /// Total configurations tallied (including memoized duplicates).
    pub total: usize,
    /// Runs per depth: CLI-rejected, format-rejected, mount-rejected,
    /// deep.
    pub rejected_cli: usize,
    /// Rejected at format (kernel-level).
    pub rejected_format: usize,
    /// Rejected at mount.
    pub rejected_mount: usize,
    /// Reached deep code.
    pub deep: usize,
    /// Distinct configuration states actually executed; duplicates are
    /// tallied from the memoized result without re-running.
    #[serde(default)]
    pub executed: usize,
}

impl ConfigCampaign {
    /// Fraction of runs that reached deep code.
    pub fn deep_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.deep as f64 / self.total as f64
        }
    }
}

/// The dependency-aware configuration generator.
#[derive(Debug)]
pub struct ConBugCk {
    constraints: ConstraintSet,
    rng: StdRng,
}

const FEATURES: [&str; 8] = [
    "meta_bg", "resize_inode", "bigalloc", "extent", "inline_data", "sparse_super2",
    "has_journal", "metadata_csum",
];

const BLOCK_SIZES: [u64; 6] = [512, 1024, 2048, 3000, 4096, 131072]; // includes invalid ones
const RESERVED: [u64; 4] = [0, 5, 50, 80]; // 80 is invalid
const MOUNT_SETS: [&str; 6] = ["", "ro", "dax", "data=journal", "data=writeback", "dax,data=journal"];

impl ConBugCk {
    /// Builds the generator: extracts the ecosystem's dependencies and
    /// seeds the RNG.
    ///
    /// # Errors
    ///
    /// Returns [`confdep::ConfdepError`] if the models fail to compile.
    pub fn new(seed: u64) -> Result<Self, confdep::ConfdepError> {
        let deps = extract_scenario(&models::all(), ExtractOptions::default())?;
        Ok(ConBugCk { constraints: ConstraintSet::compile(deps), rng: StdRng::seed_from_u64(seed) })
    }

    /// The compiled constraints steering generation.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Generates one configuration that respects the extracted
    /// dependencies.
    pub fn generate_one(&mut self) -> GeneratedConfig {
        // block size: respect the extracted range and the power-of-two
        // rule encoded as the data type
        let (min_bs, max_bs) =
            self.constraints.int_range("mke2fs", "blocksize").unwrap_or((1024, 65536));
        let bs = loop {
            let candidate = BLOCK_SIZES[self.rng.gen_range(0..BLOCK_SIZES.len())];
            if (candidate as i64) >= min_bs && (candidate as i64) <= max_bs
                && candidate.is_power_of_two()
            {
                break candidate;
            }
        };
        // reserved percent within range
        let (_, max_m) =
            self.constraints.int_range("mke2fs", "reserved_percent").unwrap_or((0, 50));
        let m = loop {
            let candidate = RESERVED[self.rng.gen_range(0..RESERVED.len())];
            if (candidate as i64) <= max_m {
                break candidate;
            }
        };
        // features: random subset, repaired against control dependencies
        let mut enabled: Vec<&str> =
            FEATURES.iter().copied().filter(|_| self.rng.gen_bool(0.4)).collect();
        // always keep a consistent base
        if !enabled.contains(&"extent") {
            enabled.push("extent");
        }
        // repair conflicts: drop the later feature of each conflicting pair
        let mut repaired: Vec<&str> = Vec::new();
        for f in &enabled {
            if repaired.iter().any(|g| self.constraints.conflicting(f, g)) {
                continue;
            }
            repaired.push(f);
        }
        // repair requires: bigalloc requires extent (already kept);
        // sparse_super2 conflicts with sparse_super (disable it)
        let mut tokens: Vec<String> = repaired.iter().map(|s| s.to_string()).collect();
        if repaired.contains(&"sparse_super2") {
            tokens.push("^sparse_super".to_string());
            // the repaired set may not carry resize_inode alongside
            // bigalloc/meta_bg conflicts; sparse_super2 itself is fine
        }
        if repaired.contains(&"meta_bg") || repaired.contains(&"bigalloc") {
            tokens.push("^resize_inode".to_string());
        }
        // mount options: respect the CCDs (dax needs 4k blocks and no
        // inline_data; data=journal needs has_journal)
        let mut mount_opts = MOUNT_SETS[self.rng.gen_range(0..MOUNT_SETS.len())].to_string();
        if mount_opts.contains("dax")
            && (bs != 4096 || repaired.contains(&"inline_data") || mount_opts.contains("data=journal"))
        {
            mount_opts = String::new();
        }
        if mount_opts.contains("data=journal") && !repaired.contains(&"has_journal") {
            mount_opts = "data=writeback".to_string();
        }
        let mut args =
            vec!["-b".to_string(), bs.to_string(), "-m".to_string(), m.to_string()];
        if !tokens.is_empty() {
            args.push("-O".to_string());
            args.push(tokens.join(","));
        }
        GeneratedConfig { mkfs_args: args, mount_opts }
    }

    /// Generates `n` dependency-respecting configurations.
    pub fn generate(&mut self, n: usize) -> Vec<GeneratedConfig> {
        (0..n).map(|_| self.generate_one()).collect()
    }
}

/// Naive random generation (the baseline): samples the same space with
/// no knowledge of the dependencies.
pub fn generate_naive(seed: u64, n: usize) -> Vec<GeneratedConfig> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let bs = BLOCK_SIZES[rng.gen_range(0..BLOCK_SIZES.len())];
            let m = RESERVED[rng.gen_range(0..RESERVED.len())];
            let tokens: Vec<String> = FEATURES
                .iter()
                .filter(|_| rng.gen_bool(0.4))
                .map(|s| s.to_string())
                .collect();
            let mut args =
                vec!["-b".to_string(), bs.to_string(), "-m".to_string(), m.to_string()];
            if !tokens.is_empty() {
                args.push("-O".to_string());
                args.push(tokens.join(","));
            }
            GeneratedConfig {
                mkfs_args: args,
                mount_opts: MOUNT_SETS[rng.gen_range(0..MOUNT_SETS.len())].to_string(),
            }
        })
        .collect()
}

/// Executes one configuration end to end: format, mount, a small
/// workload, unmount, final check.
pub fn execute(config: &GeneratedConfig) -> RunDepth {
    execute_with_policy(config, CachePolicy::WriteBack)
}

/// Like [`execute`], but pins the ext4sim metadata-cache policy for the
/// format and mount stages (the fs-ops benchmark races write-back
/// against the write-through baseline; the two must classify every
/// configuration identically).
pub fn execute_with_policy(config: &GeneratedConfig, policy: CachePolicy) -> RunDepth {
    let mut argv: Vec<&str> = config.mkfs_args.iter().map(String::as_str).collect();
    argv.push("/dev/conbugck");
    argv.push("12288");
    let mkfs = match Mke2fs::from_args(&argv) {
        Ok(m) => m.with_cache_policy(policy),
        Err(_) => return RunDepth::RejectedCli,
    };
    // pick a device block size compatible with the fs block size
    let bs: u32 = config
        .mkfs_args
        .iter()
        .position(|a| a == "-b")
        .and_then(|i| config.mkfs_args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024);
    let dev = MemDevice::new(bs.clamp(1024, 65536), 16384);
    let dev = match mkfs.run(dev) {
        Ok((dev, _)) => dev,
        Err(_) => return RunDepth::RejectedFormat,
    };
    let mount = match MountCmd::from_option_string(&config.mount_opts) {
        Ok(m) => m,
        Err(_) => return RunDepth::RejectedCli,
    };
    let mut fs = match mount.run(dev) {
        Ok(fs) => fs,
        Err(_) => return RunDepth::RejectedMount,
    };
    // read-only mounts are already (and stay) write-through
    if policy == CachePolicy::WriteThrough && fs.set_cache_policy(policy).is_err() {
        return RunDepth::RejectedMount;
    }
    // deep workload: exercise file + directory paths
    if !fs.state().eq(&ext4sim::FsState::MountedRo) {
        let root = fs.root_inode();
        let ok = (|| -> Result<(), ext4sim::FsError> {
            let d = fs.mkdir(root, "work")?;
            let f = fs.create_file(d, "data.bin")?;
            fs.write_file(f, 0, &[0xC3; 4096])?;
            let g = fs.create_file(root, "tiny")?;
            fs.write_file(g, 0, b"x")?;
            fs.unlink(root, "tiny")?;
            let back = fs.read_file_to_vec(f)?;
            if back.len() != 4096 {
                return Err(ext4sim::FsError::Corrupt("short read".to_string()));
            }
            Ok(())
        })();
        if ok.is_err() {
            return RunDepth::RejectedMount;
        }
    }
    let dev = match fs.unmount() {
        Ok(d) => d,
        Err(_) => return RunDepth::RejectedMount,
    };
    match E2fsck::with_mode(FsckMode::Check).forced().run(dev) {
        Ok((_, res)) if res.exit_code == 0 => RunDepth::Deep,
        _ => RunDepth::RejectedMount,
    }
}

/// Coverage statistics of a configuration set: how many distinct
/// parameters and whole configuration states it exercises (the Table 2
/// axis ConBugCk exists to widen).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageStats {
    /// Distinct (component, parameter) pairs exercised.
    pub distinct_params: usize,
    /// Distinct whole configuration states.
    pub distinct_states: usize,
}

/// Measures the coverage of a configuration set. Parameters and states
/// are counted on the [`TypedConfig`] views, so the tally uses the same
/// identities as the registry and the campaign memoization.
pub fn coverage(configs: &[GeneratedConfig]) -> CoverageStats {
    use std::collections::BTreeSet;
    let mut params: BTreeSet<(String, String)> = BTreeSet::new();
    let mut states: BTreeSet<String> = BTreeSet::new();
    for c in configs {
        states.insert(c.state_key());
        let (mkfs, mount) = c.typed();
        for cfg in [&mkfs, &mount] {
            for name in cfg.values.keys() {
                params.insert((cfg.component.clone(), name.clone()));
            }
        }
    }
    CoverageStats { distinct_params: params.len(), distinct_states: states.len() }
}

fn tally(depths: impl IntoIterator<Item = RunDepth>) -> ConfigCampaign {
    let mut c = ConfigCampaign::default();
    for depth in depths {
        c.total += 1;
        match depth {
            RunDepth::RejectedCli => c.rejected_cli += 1,
            RunDepth::RejectedFormat => c.rejected_format += 1,
            RunDepth::RejectedMount => c.rejected_mount += 1,
            RunDepth::Deep => c.deep += 1,
        }
    }
    c
}

/// Runs a campaign over a set of configurations. Identical generated
/// configurations (same [`GeneratedConfig::state_key`]) execute once;
/// every duplicate is tallied from the memoized result.
pub fn campaign(configs: &[GeneratedConfig]) -> ConfigCampaign {
    let mut memo: HashMap<u64, RunDepth> = HashMap::new();
    let depths: Vec<RunDepth> = configs
        .iter()
        .map(|cfg| {
            let key = cfg.state_id();
            match memo.get(&key) {
                Some(&depth) => depth,
                None => {
                    let depth = execute(cfg);
                    memo.insert(key, depth);
                    depth
                }
            }
        })
        .collect();
    let mut c = tally(depths);
    c.executed = memo.len();
    c
}

/// Like [`campaign`], but executes the distinct configuration runs on
/// `threads` workers of the shared [`crate::pool`]. Each run owns its
/// device, so the fan-out is free of shared state and the tally is
/// identical to the sequential campaign's: duplicates are collapsed to
/// their first occurrence before the fan-out and tallied afterwards.
pub fn campaign_parallel(configs: &[GeneratedConfig], threads: usize) -> ConfigCampaign {
    let mut seen: HashMap<u64, usize> = HashMap::new();
    let mut uniques: Vec<GeneratedConfig> = Vec::new();
    let mut slots: Vec<usize> = Vec::with_capacity(configs.len());
    for cfg in configs {
        let idx = *seen.entry(cfg.state_id()).or_insert_with(|| {
            uniques.push(cfg.clone());
            uniques.len() - 1
        });
        slots.push(idx);
    }
    let depths = crate::pool::parallel_map(uniques, threads, |_, cfg| execute(&cfg));
    let mut c = tally(slots.into_iter().map(|i| depths[i]));
    c.executed = depths.len();
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aware_generation_beats_naive() {
        let mut gen = ConBugCk::new(42).unwrap();
        let aware = campaign(&gen.generate(40));
        let naive = campaign(&generate_naive(42, 40));
        assert!(
            aware.deep_rate() > naive.deep_rate(),
            "aware {:.2} vs naive {:.2}",
            aware.deep_rate(),
            naive.deep_rate()
        );
        // dependency-aware runs should overwhelmingly reach deep code
        // (the vendored rand's seeded stream lands exactly on 36/40)
        assert!(aware.deep_rate() >= 0.9, "aware deep rate {:.2}", aware.deep_rate());
        // naive random dies on shallow validation most of the time
        assert!(naive.deep_rate() < 0.6, "naive deep rate {:.2}", naive.deep_rate());
    }

    #[test]
    fn parallel_campaign_matches_sequential() {
        let mut gen = ConBugCk::new(11).unwrap();
        let configs = gen.generate(24);
        let seq = campaign(&configs);
        let par = campaign_parallel(&configs, 4);
        assert_eq!(seq, par);
        assert_eq!(par.total, 24);
        // the pool's single-thread path is the inline sequential run
        assert_eq!(campaign_parallel(&configs, 1), seq);
    }

    #[test]
    fn duplicate_configs_are_memoized_not_rerun() {
        let mut gen = ConBugCk::new(5).unwrap();
        let mut configs = gen.generate(6);
        // triple the list: every config now appears three times
        let uniques = coverage(&configs).distinct_states;
        configs.extend(configs.clone());
        configs.extend(configs[..6].to_vec());
        let seq = campaign(&configs);
        assert_eq!(seq.total, 18);
        assert_eq!(seq.executed, uniques);
        assert!(seq.executed < seq.total);
        // duplicates land in the same depth buckets as their original
        assert_eq!(
            seq.rejected_cli + seq.rejected_format + seq.rejected_mount + seq.deep,
            seq.total
        );
        let par = campaign_parallel(&configs, 4);
        assert_eq!(par, seq);
        // the u64 fingerprints the campaigns dedup by must partition
        // the runs exactly like the string state keys do
        let ids: std::collections::HashSet<u64> =
            configs.iter().map(GeneratedConfig::state_id).collect();
        let keys: std::collections::HashSet<String> =
            configs.iter().map(|c| c.state_key()).collect();
        assert_eq!(ids.len(), keys.len(), "state_id collision changed campaign totals");
        assert_eq!(ids.len(), uniques);
    }

    #[test]
    fn state_id_fingerprints_state_key() {
        let mut gen = ConBugCk::new(11).unwrap();
        let configs = gen.generate(64);
        let mut by_key: HashMap<String, u64> = HashMap::new();
        for cfg in &configs {
            let key = cfg.state_key();
            let id = cfg.state_id();
            // equal keys hash equal; distinct keys stay distinct
            if let Some(&prev) = by_key.get(&key) {
                assert_eq!(prev, id, "same state key, different state id");
            }
            by_key.insert(key, id);
        }
        let distinct_ids: std::collections::HashSet<u64> = by_key.values().copied().collect();
        assert_eq!(distinct_ids.len(), by_key.len(), "state_id collision");
        // argument order does not change the fingerprint
        let a = GeneratedConfig {
            mkfs_args: vec!["-m".into(), "5".into(), "-b".into(), "4096".into()],
            mount_opts: "data=ordered,ro".into(),
        };
        let b = GeneratedConfig {
            mkfs_args: vec!["-b".into(), "4096".into(), "-m".into(), "5".into()],
            mount_opts: "ro,data=ordered".into(),
        };
        assert_eq!(a.state_id(), b.state_id());
        assert_eq!(a.state_key(), b.state_key());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = ConBugCk::new(7).unwrap().generate(10);
        let b = ConBugCk::new(7).unwrap().generate(10);
        assert_eq!(a, b);
        assert_eq!(generate_naive(7, 10), generate_naive(7, 10));
    }

    #[test]
    fn coverage_counts_distinct_params_and_states() {
        let mut gen = ConBugCk::new(9).unwrap();
        let configs = gen.generate(30);
        let cov = coverage(&configs);
        // far beyond what a fixed-config suite exercises
        assert!(cov.distinct_params >= 8, "params: {}", cov.distinct_params);
        assert!(cov.distinct_states >= 10, "states: {}", cov.distinct_states);
        assert_eq!(coverage(&[]).distinct_params, 0);
    }

    #[test]
    fn aware_configs_visit_many_feature_states() {
        let mut gen = ConBugCk::new(3).unwrap();
        let configs = gen.generate(30);
        let distinct: std::collections::BTreeSet<String> =
            configs.iter().map(|c| format!("{:?}|{}", c.mkfs_args, c.mount_opts)).collect();
        assert!(distinct.len() > 10, "only {} distinct states", distinct.len());
    }

    #[test]
    fn executor_classifies_cli_rejection() {
        let cfg = GeneratedConfig {
            mkfs_args: vec!["-b".into(), "3000".into()],
            mount_opts: String::new(),
        };
        assert_eq!(execute(&cfg), RunDepth::RejectedCli);
    }

    #[test]
    fn executor_classifies_format_rejection() {
        let cfg = GeneratedConfig {
            mkfs_args: vec!["-b".into(), "1024".into(), "-O".into(), "meta_bg".into()],
            mount_opts: String::new(),
        };
        assert_eq!(execute(&cfg), RunDepth::RejectedFormat);
    }

    #[test]
    fn executor_classifies_mount_rejection() {
        let cfg = GeneratedConfig {
            mkfs_args: vec!["-b".into(), "1024".into()],
            mount_opts: "dax".into(),
        };
        assert_eq!(execute(&cfg), RunDepth::RejectedMount);
    }

    #[test]
    fn executor_reaches_deep_on_defaults() {
        let cfg = GeneratedConfig {
            mkfs_args: vec!["-b".into(), "1024".into()],
            mount_opts: String::new(),
        };
        assert_eq!(execute(&cfg), RunDepth::Deep);
    }
}
