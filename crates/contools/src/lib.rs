//! The three applications of extracted configuration dependencies
//! (§4.2–4.3 of the paper):
//!
//! * **ConDocCk** ([`condocck`]) — checks the consistency between the
//!   manuals and the code-derived dependencies; reproduces the paper's
//!   **12 inaccurate-documentation** findings.
//! * **ConHandleCk** ([`conhandleck`]) — intentionally violates
//!   dependencies against the *real* simulated ecosystem and checks the
//!   handling; reproduces the paper's **1 bad configuration handling**
//!   case (the Figure 1 `resize2fs` corruption).
//! * **ConBugCk** ([`conbugck`]) — dependency-aware configuration
//!   generation for test suites: manipulates configurations *without*
//!   violating the extracted dependencies, so test runs get past shallow
//!   validation and exercise deep code under many configuration states.
//!
//! [`pool`] carries the shared scoped worker pool these applications
//! (and the `crashsim` explorer) fan their independent work out on.

pub mod conbugck;
pub mod condocck;
pub mod conhandleck;
pub mod f2fs;
pub mod fuzz;
pub mod pool;

pub use conbugck::{
    campaign, campaign_parallel, coverage, execute, execute_with_policy, generate_naive, ConBugCk,
    ConfigCampaign, CoverageStats, GeneratedConfig, RunDepth,
};
pub use condocck::{ext4_kernel_doc, run_condocck, run_condocck_for, DocIssue, DocIssueKind};
pub use conhandleck::{
    run_conhandleck, run_conhandleck_f2fs, standard_f2fs_image, standard_image, Handling,
    ViolationCase, ViolationOutcome,
};
pub use f2fs::execute_f2fs;
pub use fuzz::{
    fuzz_campaign, fuzz_campaign_with, FuzzOptions, FuzzOutcome, FuzzReport, Harness,
    PolarityCoverage, Strategy,
};
