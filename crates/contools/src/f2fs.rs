//! The F2FS side of the checkers: executor, typed views, and mutation
//! for the fuzz [`Harness`], plus the ConHandleCk violation cases of
//! the second ecosystem.
//!
//! Everything here plugs into the same ecosystem-agnostic machinery the
//! ext4 substrate uses — the campaign loop, the coverage tracker, the
//! verdict store, and the violation-outcome taxonomy are all shared;
//! only the `fn` pointers differ.

use blockdev::MemDevice;
use confdep::solve::{SolvedConfig, Solver, SolverScope};
use e2fstools::typed::{TypedConfig, TypedValue};
use f2fstools::{F2fsError, F2fsMount, FsckF2fs, MkfsF2fs};
use rand::rngs::StdRng;
use rand::Rng;

use crate::conbugck::{GeneratedConfig, RunDepth};
use crate::fuzz::{to_generated, Harness};

/// The F2FS fuzz harness: same campaign loop, second substrate. The
/// store context is distinct from the ext4 campaigns' so persisted
/// verdicts can never leak across ecosystems.
pub fn harness() -> Harness {
    Harness {
        name: "f2fs",
        store_context: "conbugck/fuzz/f2fs/v1",
        scope: f2fs_scope,
        typed: typed_views,
        execute: execute_f2fs,
        cheap_parent: cheap_parent_f2fs,
        mutate: mutate_f2fs,
    }
}

fn f2fs_scope() -> SolverScope {
    ecosys::f2fs().solver_scope()
}

/// The lenient typed views of an f2fs candidate — the f2fs analog of
/// [`GeneratedConfig::typed`].
pub fn typed_views(cfg: &GeneratedConfig) -> (TypedConfig, TypedConfig) {
    (
        f2fstools::typed::from_mkfs_f2fs_args_lenient(&cfg.mkfs_args),
        f2fstools::typed::from_f2fs_mount_opts_lenient(&cfg.mount_opts),
    )
}

/// Executes one f2fs configuration end to end: format, mount, a small
/// workload, unmount, final `fsck.f2fs` — classifying how deep the
/// configuration drove the ecosystem, exactly like the ext4 executor.
///
/// `mkfs_args` must carry its own device operand (the f2fs solver
/// scope renders a fixed `/dev/sim`), unlike the ext4 executor which
/// appends one.
pub fn execute_f2fs(config: &GeneratedConfig) -> RunDepth {
    let argv: Vec<&str> = config.mkfs_args.iter().map(String::as_str).collect();
    let mkfs = match MkfsF2fs::from_args(&argv) {
        Ok(m) => m,
        Err(_) => return RunDepth::RejectedCli,
    };
    // 32 MiB @ 4 KiB blocks: sixteen 2 MiB segments, 65536 512 B sectors
    let dev = MemDevice::new(4096, 8192);
    let dev = match mkfs.run(dev) {
        Ok((dev, _)) => dev,
        Err(_) => return RunDepth::RejectedFormat,
    };
    let mount = match F2fsMount::from_option_string(&config.mount_opts) {
        Ok(m) => m,
        Err(_) => return RunDepth::RejectedCli,
    };
    let mut fs = match mount.run(dev) {
        Ok(fs) => fs,
        Err(_) => return RunDepth::RejectedMount,
    };
    if !fs.readonly() {
        let ok = (|| -> Result<(), F2fsError> {
            fs.mkdir("/work")?;
            fs.create("/work/data.bin")?;
            fs.write("/work/data.bin", &[0xC3; 4096])?;
            fs.create("/tiny")?;
            fs.write("/tiny", b"x")?;
            fs.unlink("/tiny")?;
            if fs.read("/work/data.bin")?.len() != 4096 {
                return Err(F2fsError::NotFound("short read".to_string()));
            }
            Ok(())
        })();
        if ok.is_err() {
            return RunDepth::RejectedMount;
        }
    }
    let dev = match fs.unmount() {
        Ok(d) => d,
        Err(_) => return RunDepth::RejectedMount,
    };
    let fsck = FsckF2fs::from_args(&["-f", "/dev/sim"]).expect("fixed fsck invocation parses");
    match fsck.run(dev) {
        Ok(_) => RunDepth::Deep,
        Err(_) => RunDepth::RejectedMount,
    }
}

/// The f2fs simulator's superblock is a fixed-size record, so no pool
/// value makes a single run meaningfully more expensive than another —
/// every verdict-carrying config may breed.
fn cheap_parent_f2fs(_cfg: &GeneratedConfig) -> bool {
    true
}

fn pick_int(solver: &Solver<'_>, rng: &mut StdRng, component: &str, param: &str) -> Option<i64> {
    let pool = solver.int_pool(component, param);
    if pool.is_empty() {
        return None;
    }
    Some(pool[rng.gen_range(0..pool.len())])
}

/// Mutates one corpus member through the f2fs solver scope's value
/// pools: geometry integers, `-O` feature toggles, mount enums and
/// integers, and the boolean mount surface.
fn mutate_f2fs(solver: &Solver<'_>, rng: &mut StdRng, parent: &GeneratedConfig) -> GeneratedConfig {
    let (mkfs, mount) = typed_views(parent);
    let mut solved = SolvedConfig { mkfs, mount };
    let ops = 1 + rng.gen_range(0..2);
    for _ in 0..ops {
        match rng.gen_range(0..6) {
            0 => {
                if let Some(v) = pick_int(solver, rng, "mkfs_f2fs", "overprovision") {
                    solved.mkfs.set_int("overprovision", v);
                }
            }
            1 => {
                if let Some(v) = pick_int(solver, rng, "mkfs_f2fs", "segs_per_sec") {
                    solved.mkfs.set_int("segs_per_sec", v);
                }
            }
            2 => {
                let features = solver.feature_pool("mkfs_f2fs");
                if !features.is_empty() {
                    let f = &features[rng.gen_range(0..features.len())];
                    let flipped = match solved.mkfs.get(f) {
                        Some(TypedValue::Bool(b)) => !*b,
                        _ => true,
                    };
                    solved.mkfs.set_bool(f, flipped);
                }
            }
            3 => {
                if let Some(v) = pick_int(solver, rng, "f2fs", "active_logs") {
                    solved.mount.set_int("active_logs", v);
                }
            }
            4 => {
                let param = match rng.gen_range(0..3) {
                    0 => "background_gc",
                    1 => "mode",
                    _ => "errors",
                };
                let members = solver.enum_pool("f2fs", param);
                if !members.is_empty() {
                    let v = &members[rng.gen_range(0..members.len())];
                    solved.mount.set_str(param, v);
                }
            }
            _ => {
                const MOUNT_BOOLS: [&str; 5] =
                    ["discard", "lazytime", "barrier", "acl", "user_xattr"];
                let name = MOUNT_BOOLS[rng.gen_range(0..MOUNT_BOOLS.len())];
                let flipped = match solved.mount.get(name) {
                    Some(TypedValue::Bool(b)) => !*b,
                    _ => true,
                };
                solved.mount.set_bool(name, flipped);
            }
        }
    }
    to_generated(solver, &solved).unwrap_or_else(|| parent.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::{fuzz_campaign_with, FuzzOptions};
    use confdep::ConstraintSet;

    fn cfg(mkfs: &[&str], mount: &str) -> GeneratedConfig {
        GeneratedConfig {
            mkfs_args: mkfs.iter().map(|s| s.to_string()).collect(),
            mount_opts: mount.to_string(),
        }
    }

    #[test]
    fn executor_classifies_all_four_depths() {
        // CLI: overprovision beyond the manual's 0..=50 domain
        assert_eq!(execute_f2fs(&cfg(&["-o", "51", "/dev/sim"], "")), RunDepth::RejectedCli);
        // format: compression without extra_attr
        assert_eq!(
            execute_f2fs(&cfg(&["-O", "compression", "/dev/sim"], "")),
            RunDepth::RejectedFormat
        );
        // mount: discard against a -t 0 image
        assert_eq!(
            execute_f2fs(&cfg(&["-t", "0", "/dev/sim"], "discard")),
            RunDepth::RejectedMount
        );
        // deep: defaults
        assert_eq!(execute_f2fs(&cfg(&["/dev/sim"], "")), RunDepth::Deep);
    }

    #[test]
    fn read_only_mounts_skip_the_workload_but_reach_deep() {
        assert_eq!(execute_f2fs(&cfg(&["/dev/sim"], "ro")), RunDepth::Deep);
    }

    #[test]
    fn f2fs_campaign_reaches_full_polarity_coverage() {
        let eco = ecosys::f2fs();
        let set = eco.constraints().unwrap();
        let outcome = fuzz_campaign_with(
            &set,
            &FuzzOptions { rounds: 2, batch: 16, ..FuzzOptions::default() },
            &Harness::f2fs(),
        );
        let r = &outcome.report;
        assert_eq!(r.coverage_covered, r.coverage_universe, "uncovered f2fs targets remain");
        assert!(r.coverage_universe >= 30, "universe {}", r.coverage_universe);
        assert!(r.deep > 0, "no f2fs config reached deep code");
    }

    #[test]
    fn f2fs_campaigns_are_deterministic_in_the_seed() {
        let set: ConstraintSet = ecosys::f2fs().constraints().unwrap();
        let opts = FuzzOptions { rounds: 2, batch: 12, ..FuzzOptions::default() };
        let a = fuzz_campaign_with(&set, &opts, &Harness::f2fs());
        let b = fuzz_campaign_with(&set, &opts, &Harness::f2fs());
        assert_eq!(a.verdicts, b.verdicts);
        assert!(a.report.same_verdicts(&b.report));
    }

    #[test]
    fn harness_state_identity_tracks_the_f2fs_views() {
        let h = Harness::f2fs();
        // argument order and spelling collapse to one state
        let a = cfg(&["-s", "2", "-o", "10", "/dev/sim"], "ro,discard");
        let b = cfg(&["-o", "10", "-s", "2", "/dev/sim"], "discard,ro");
        assert_eq!(h.state_key(&a), h.state_key(&b));
        assert_eq!(h.state_id(&a), h.state_id(&b));
        // and the ext4 harness types the same bytes differently — the
        // two ecosystems can never share a state identity
        let ext4 = Harness::ext4();
        assert_ne!(ext4.state_key(&a), h.state_key(&a));
    }
}
