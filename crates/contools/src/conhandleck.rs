//! ConHandleCk: dependency-violation injection (§4.2).
//!
//! Each case takes one extracted dependency, constructs an input that
//! *violates* it, and drives the real (simulated) ecosystem. Graceful
//! handling means the utility rejects the violation with a clear error
//! and leaves the image intact. Bad handling means the operation
//! "succeeds" and damages the file system — which is exactly what
//! happens for the Figure 1 dependency (`sparse_super2` + a growing
//! `resize2fs`), the paper's single bad-handling finding.

use blockdev::MemDevice;
use confdep::{extract_scenario, models, ConstraintSet, ExtractOptions, Verdict};
use e2fstools::{E2fsck, E4defrag, FsckMode, Mke2fs, MountCmd, Resize2fs, ToolError, TypedConfig};
use ext4sim::Ext4Fs;
use serde::{Deserialize, Serialize};

/// How the ecosystem handled the violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Handling {
    /// Rejected up front with an error; image unharmed.
    Graceful {
        /// The error message produced.
        error: String,
    },
    /// Accepted without damage (the violation turned out benign).
    Accepted,
    /// Accepted and the image was corrupted — detected by a subsequent
    /// `e2fsck -n -f`.
    BadHandling {
        /// The inconsistency tags the checker reported.
        corruption: Vec<String>,
    },
}

impl Handling {
    /// True for the bad-handling outcome.
    pub fn is_bad(&self) -> bool {
        matches!(self, Handling::BadHandling { .. })
    }
}

/// One violation-injection case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationCase {
    /// Case id.
    pub id: u32,
    /// The dependency being violated (signature-style).
    pub dependency: String,
    /// How the violation is constructed.
    pub description: String,
}

/// Case plus observed handling.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationOutcome {
    /// The case.
    pub case: ViolationCase,
    /// What happened.
    pub handling: Handling,
}

fn graceful<T>(result: Result<T, ToolError>) -> Handling {
    match result {
        Err(e) => Handling::Graceful { error: e.to_string() },
        Ok(_) => Handling::Accepted,
    }
}

/// Formats a standard 12288-block image on a 16384-block device with the
/// given extra `-O` tokens. The 4096 spare blocks leave room for the
/// growing-resize cases (and for crash-consistency workloads, which
/// reuse this geometry).
pub fn standard_image(features: &str) -> MemDevice {
    let mut args = vec!["-b", "1024"];
    if !features.is_empty() {
        args.push("-O");
        args.push(features);
    }
    args.push("/dev/test");
    args.push("12288");
    let m = Mke2fs::from_args(&args).expect("valid base invocation");
    m.run(MemDevice::new(1024, 16384)).expect("base format succeeds").0
}

/// Runs `e2fsck -n -f` and reports the inconsistency tags found.
fn fsck_tags(dev: MemDevice) -> Vec<String> {
    let (_, res) = E2fsck::with_mode(FsckMode::Check)
        .forced()
        .run(dev)
        .expect("check-only fsck runs");
    let mut tags: Vec<String> =
        res.report.inconsistencies.iter().map(|i| i.kind.tag().to_string()).collect();
    tags.sort();
    tags.dedup();
    tags
}

/// Asserts that the injected typed configurations really violate the
/// compiled constraint — every case's input is cross-checked through
/// the one shared evaluator before it is driven into the ecosystem.
fn assert_violates(constraints: &ConstraintSet, signature: &str, cfgs: &[&TypedConfig]) {
    let c = constraints.find(signature).expect("constraint compiled from extraction");
    assert_eq!(
        c.evaluate(cfgs),
        Verdict::Violated,
        "injected input does not violate {signature}"
    );
}

/// All violation cases, in execution order. The Figure 1 case is #11.
///
/// Each case is keyed by the compiled [`Constraint`]'s signature where
/// the prototype extracts the dependency; cases 6–9 violate
/// dependencies the intra-procedural extractor is known to miss
/// ([`confdep::ground_truth::known_missed_by_prototype`]), so their
/// labels cannot come from the compiled set.
///
/// [`Constraint`]: confdep::Constraint
pub fn run_conhandleck() -> Vec<ViolationOutcome> {
    let constraints = ConstraintSet::compile(
        extract_scenario(&models::all(), ExtractOptions::default())
            .expect("component models compile"),
    );
    // label helper: the case id string IS the compiled constraint's
    // signature — a missing constraint is a bug, not a silent fallback
    let sig = |s: &str| -> String {
        constraints
            .find(s)
            .unwrap_or_else(|| panic!("dependency {s} not in the compiled set"))
            .signature()
            .to_string()
    };
    let mut out = Vec::new();
    let mut push = |id: u32, dependency: String, description: &str, handling: Handling| {
        out.push(ViolationOutcome {
            case: ViolationCase { id, dependency, description: description.to_string() },
            handling,
        });
    };

    // 1. SD: blocksize range
    push(
        1,
        sig("SdValueRange|mke2fs:blocksize"),
        "mke2fs -b 3000 (not a power of two in range)",
        graceful(Mke2fs::from_args(&["-b", "3000", "/dev/test"]).map(|_| ())),
    );

    // 2. SD: reserved percent range
    push(
        2,
        sig("SdValueRange|mke2fs:reserved_percent"),
        "mke2fs -m 80 (beyond the 50% maximum)",
        {
            let cfg = TypedConfig::from_mkfs_args_lenient(&["-m".into(), "80".into()]);
            assert_violates(&constraints, "SdValueRange|mke2fs:reserved_percent", &[&cfg]);
            graceful(Mke2fs::from_args(&["-m", "80", "/dev/test"]).map(|_| ()))
        },
    );

    // 3. CPD: meta_bg ~ resize_inode (kernel-level rejection)
    push(
        3,
        sig("CpdControl|mke2fs|meta_bg~resize_inode"),
        "mke2fs -O meta_bg with resize_inode left enabled",
        {
            // resize_inode is on by default at format time; the typed
            // view of the *effective* feature state violates the pair
            let mut cfg = TypedConfig::new("mke2fs");
            cfg.set_bool("meta_bg", true);
            cfg.set_bool("resize_inode", true);
            assert_violates(&constraints, "CpdControl|mke2fs|meta_bg~resize_inode", &[&cfg]);
            let m =
                Mke2fs::from_args(&["-O", "meta_bg", "/dev/test"]).expect("parses at CLI level");
            graceful(m.run(MemDevice::new(1024, 8192)).map(|_| ()))
        },
    );

    // 4. CPD: bigalloc requires extent
    push(4, sig("CpdControl|mke2fs|bigalloc~extent"), "mke2fs -O bigalloc,^extent", {
        let m = Mke2fs::from_args(&["-O", "bigalloc,^extent,^resize_inode", "/dev/test"])
            .expect("parses at CLI level");
        graceful(m.run(MemDevice::new(1024, 8192)).map(|_| ()))
    });

    // 5. CPD: resize2fs -M with an explicit size
    push(
        5,
        sig("CpdControl|resize2fs|minimize~new_size"),
        "resize2fs -M /dev/test 16384",
        graceful(Resize2fs::from_args(&["-M", "/dev/test", "16384"]).map(|_| ())),
    );

    // 6. CPD: e2fsck -p with -y (known-missed: the flags are staged by
    // parse_args(), beyond the intra-procedural extractor)
    push(
        6,
        "CpdControl|e2fsck|preen~assume_yes".to_string(),
        "e2fsck -p -y /dev/test",
        graceful(E2fsck::from_args(&["-p", "-y", "/dev/test"]).map(|_| ())),
    );

    // 7. CCD: mount -o dax on a 1 KiB-block file system (known-missed)
    push(7, "CcdControl|mke2fs:blocksize|mount:dax".to_string(), "mount -o dax on 1k blocks", {
        let dev = standard_image("");
        let m = MountCmd::from_option_string("dax").expect("dax parses");
        graceful(m.run(dev).map(|_| ()))
    });

    // 8. CCD: data=journal without a journal (known-missed)
    push(
        8,
        "CcdControl|mke2fs:has_journal|mount:data".to_string(),
        "mount -o data=journal on ^has_journal",
        {
            let dev = standard_image("^has_journal");
            let m = MountCmd::from_option_string("data=journal").expect("parses");
            graceful(m.run(dev).map(|_| ()))
        },
    );

    // 9. CCD: e4defrag on a non-extent file system (known-missed)
    push(
        9,
        "CcdBehavioral|mke2fs:extent|e4defrag".to_string(),
        "e4defrag on ^extent with fragmented files",
        {
            let dev = standard_image("^extent,^64bit,^bigalloc");
            let mut fs = Ext4Fs::mount(dev, &ext4sim::MountOptions::default()).expect("mounts");
            let root = fs.root_inode();
            let a = fs.create_file(root, "a").expect("create");
            let b = fs.create_file(root, "b").expect("create");
            for i in 0..4u64 {
                fs.write_file(a, i * 1024, &[1u8; 1024]).expect("write");
                fs.write_file(b, i * 1024, &[2u8; 1024]).expect("write");
            }
            graceful(E4defrag::new().run(&mut fs).map(|_| ()))
        },
    );

    // 10. SD: resize2fs beyond the device (the extracted range is a
    // labelled false positive; the real constraint is the device size)
    push(
        10,
        format!("{}(device)", sig("SdValueRange|resize2fs:new_size")),
        "resize2fs to 99999 on a 16384-block device",
        {
            let dev = standard_image("");
            graceful(Resize2fs::to_size(99_999).run(dev).map(|_| ()))
        },
    );

    // 11. CCD (Figure 1): sparse_super2 + growing resize2fs
    push(
        11,
        sig("CcdBehavioral|mke2fs:sparse_super2|resize2fs:<behavior>"),
        "mke2fs -O sparse_super2, then resize2fs to a larger size",
        {
            let dev = standard_image("sparse_super2,^sparse_super,^resize_inode");
            match Resize2fs::to_size(16384).run(dev) {
                Err(e) => Handling::Graceful { error: e.to_string() },
                Ok((dev, _)) => {
                    let tags = fsck_tags(dev);
                    if tags.is_empty() {
                        Handling::Accepted
                    } else {
                        Handling::BadHandling { corruption: tags }
                    }
                }
            }
        },
    );

    // 12. CCD: growth beyond the reserved GDT capacity
    push(
        12,
        sig("CcdValue|mke2fs:resize_headroom|resize2fs:new_size"),
        "resize2fs growth with tiny reserved GDT",
        {
            // reserve headroom for barely any growth, then ask for 74 groups
            let m = Mke2fs::from_args(&["-b", "1024", "-E", "resize=12289", "/dev/test", "12288"])
                .expect("parses");
            let dev = m.run(MemDevice::new(1024, 700_000)).expect("formats").0;
            graceful(Resize2fs::to_size(600_000).run(dev).map(|_| ()))
        },
    );

    out
}

/// Formats a standard 32 MiB f2fs image with the given extra
/// `mkfs.f2fs` arguments.
pub fn standard_f2fs_image(extra: &[&str]) -> MemDevice {
    let mut argv: Vec<&str> = extra.to_vec();
    argv.push("/dev/sim");
    let m = f2fstools::MkfsF2fs::from_args(&argv).expect("valid base invocation");
    m.run(MemDevice::new(4096, 8192)).expect("base format succeeds").0
}

/// The violation-injection cases of the F2FS ecosystem, run through the
/// same [`Handling`] taxonomy as the ext4 cases. Every case is keyed by
/// the compiled constraint's signature from the f2fs extraction — a
/// missing constraint is a bug, not a silent fallback.
pub fn run_conhandleck_f2fs() -> Vec<ViolationOutcome> {
    use f2fstools::{F2fsMount, FsckF2fs, MkfsF2fs};

    let constraints = ecosys::f2fs().constraints().expect("f2fs models compile");
    let sig = |s: &str| -> String {
        constraints
            .find(s)
            .unwrap_or_else(|| panic!("dependency {s} not in the compiled f2fs set"))
            .signature()
            .to_string()
    };
    let mut out = Vec::new();
    let mut push = |id: u32, dependency: String, description: &str, handling: Handling| {
        out.push(ViolationOutcome {
            case: ViolationCase { id, dependency, description: description.to_string() },
            handling,
        });
    };

    // 1. SD: segments per section beyond the 1..=128 range
    push(
        1,
        sig("SdValueRange|mkfs_f2fs:segs_per_sec"),
        "mkfs.f2fs -s 129 (beyond the 128 maximum)",
        graceful(MkfsF2fs::from_args(&["-s", "129", "/dev/sim"]).map(|_| ())),
    );

    // 2. SD: overprovision beyond 50%
    push(
        2,
        sig("SdValueRange|mkfs_f2fs:overprovision"),
        "mkfs.f2fs -o 51 (beyond the 50% maximum)",
        graceful(MkfsF2fs::from_args(&["-o", "51", "/dev/sim"]).map(|_| ())),
    );

    // 3. CPD: the 1024-segment zone cap couples -s and -z
    push(
        3,
        sig("CpdValue|mkfs_f2fs|secs_per_zone~segs_per_sec"),
        "mkfs.f2fs -s 128 -z 16 (2048-segment zones)",
        {
            let m = MkfsF2fs::from_args(&["-s", "128", "-z", "16", "/dev/sim"])
                .expect("parses at CLI level");
            graceful(m.run(MemDevice::new(4096, 8192)).map(|_| ()))
        },
    );

    // 4. CPD: compression requires extra_attr
    push(
        4,
        sig("CpdControl|mkfs_f2fs|compression~extra_attr"),
        "mkfs.f2fs -O compression without extra_attr",
        {
            let m = MkfsF2fs::from_args(&["-O", "compression", "/dev/sim"])
                .expect("parses at CLI level");
            graceful(m.run(MemDevice::new(4096, 8192)).map(|_| ()))
        },
    );

    // 5. CPD: casefold conflicts with encrypt
    push(
        5,
        sig("CpdControl|mkfs_f2fs|casefold~encrypt"),
        "mkfs.f2fs -O casefold,encrypt",
        {
            let mut cfg = TypedConfig::new("mkfs_f2fs");
            cfg.set_bool("casefold", true);
            cfg.set_bool("encrypt", true);
            assert_violates(&constraints, "CpdControl|mkfs_f2fs|casefold~encrypt", &[&cfg]);
            let m = MkfsF2fs::from_args(&["-O", "casefold,encrypt", "/dev/sim"])
                .expect("parses at CLI level");
            graceful(m.run(MemDevice::new(4096, 8192)).map(|_| ()))
        },
    );

    // 6. CCD: mount -o discard against a -t 0 image
    push(
        6,
        sig("CcdValue|mkfs_f2fs:discard_policy|f2fs:discard"),
        "mount -o discard on an image formatted with -t 0",
        {
            let dev = standard_f2fs_image(&["-t", "0"]);
            let m = F2fsMount::from_option_string("discard").expect("discard parses");
            graceful(m.run(dev).map(|_| ()))
        },
    );

    // 7. CCD: compress_algorithm without the compression feature
    push(
        7,
        sig("CcdControl|mkfs_f2fs:compression|f2fs:compress_algorithm"),
        "mount -o compress_algorithm=lz4 on a plain image",
        {
            let dev = standard_f2fs_image(&[]);
            let m = F2fsMount::from_option_string("compress_algorithm=lz4").expect("parses");
            graceful(m.run(dev).map(|_| ()))
        },
    );

    // 8. CPD: norecovery requires a read-only mount
    push(
        8,
        sig("CpdControl|f2fs|norecovery~ro"),
        "mount -o norecovery without ro",
        graceful(F2fsMount::from_option_string("norecovery").map(|_| ())),
    );

    // 9. CCD: a writable mount of an -O ro image
    push(
        9,
        sig("CcdControl|mkfs_f2fs:ro_feature|f2fs:ro"),
        "writable mount of an image carrying the ro feature",
        {
            let dev = standard_f2fs_image(&["-O", "ro"]);
            let m = F2fsMount::from_option_string("").expect("empty options parse");
            graceful(m.run(dev).map(|_| ()))
        },
    );

    // 10. CPD: fsck.f2fs -y conflicts with -n
    push(
        10,
        sig("CpdControl|fsck_f2fs|dry_run~fix"),
        "fsck.f2fs -y -n /dev/sim",
        graceful(FsckF2fs::from_args(&["-y", "-n", "/dev/sim"]).map(|_| ())),
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_one_bad_handling() {
        // §4.3: "we have found one unexpected configuration handling
        //  case where resize2fs may corrupt the file system"
        let outcomes = run_conhandleck();
        let bad: Vec<&ViolationOutcome> =
            outcomes.iter().filter(|o| o.handling.is_bad()).collect();
        assert_eq!(bad.len(), 1, "outcomes: {outcomes:#?}");
        assert_eq!(bad[0].case.id, 11);
        assert!(bad[0].case.dependency.contains("sparse_super2"));
    }

    #[test]
    fn figure1_corruption_is_free_block_accounting() {
        let outcomes = run_conhandleck();
        let bad = outcomes.iter().find(|o| o.handling.is_bad()).unwrap();
        match &bad.handling {
            Handling::BadHandling { corruption } => {
                assert!(
                    corruption.iter().any(|t| t.contains("free_blocks")),
                    "Figure 1 corrupts the free-block counts: {corruption:?}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_other_violations_handled_gracefully() {
        for o in run_conhandleck() {
            if o.case.id == 11 {
                continue;
            }
            assert!(
                matches!(o.handling, Handling::Graceful { .. }),
                "case {} ({}) was not graceful: {:?}",
                o.case.id,
                o.case.description,
                o.handling
            );
        }
    }

    #[test]
    fn graceful_errors_are_informative() {
        for o in run_conhandleck() {
            if let Handling::Graceful { error } = &o.handling {
                assert!(!error.is_empty(), "case {} has an empty error", o.case.id);
            }
        }
    }

    #[test]
    fn twelve_cases_executed() {
        assert_eq!(run_conhandleck().len(), 12);
    }

    #[test]
    fn f2fs_violations_are_all_handled_gracefully() {
        // the second ecosystem turns out clean: every injected
        // violation is rejected up front with an informative error
        let outcomes = run_conhandleck_f2fs();
        assert_eq!(outcomes.len(), 10);
        for o in &outcomes {
            match &o.handling {
                Handling::Graceful { error } => {
                    assert!(!error.is_empty(), "case {} has an empty error", o.case.id);
                }
                other => panic!(
                    "f2fs case {} ({}) was not graceful: {other:?}",
                    o.case.id, o.case.description
                ),
            }
        }
    }

    #[test]
    fn f2fs_cases_span_the_dependency_taxonomy() {
        let outcomes = run_conhandleck_f2fs();
        let has = |prefix: &str| outcomes.iter().any(|o| o.case.dependency.starts_with(prefix));
        assert!(has("Sd"), "no self dependency case");
        assert!(has("Cpd"), "no cross-parameter case");
        assert!(has("Ccd"), "no cross-component case");
        // cases violate compiled constraints from both CLI tools and
        // the mount surface
        assert!(outcomes.iter().any(|o| o.case.dependency.contains("mkfs_f2fs")));
        assert!(outcomes.iter().any(|o| o.case.dependency.contains("fsck_f2fs")));
        assert!(outcomes.iter().any(|o| o.case.dependency.contains("|f2fs|")));
    }
}
