//! Coverage-guided constraint fuzzing — ConBugCk at corpus scale.
//!
//! The original ConBugCk generator ([`crate::conbugck`]) draws from
//! hard-coded value tables and measures success as its deep-code rate.
//! The fuzz campaign here turns that into a feedback loop driven by the
//! constraint layer itself:
//!
//! * **Coverage** is per-constraint *polarity* coverage: for every
//!   compiled constraint the campaign wants a configuration that
//!   satisfies it, one that violates it, and (for finite value ranges)
//!   one that sits exactly on a bound. The achievable universe comes
//!   from [`Solver::targets`].
//! * **Seeding**: each round starts by asking the solver for a witness
//!   of every still-uncovered `(constraint, polarity)` target, so the
//!   solver-guided strategy reaches full polarity coverage by
//!   construction.
//! * **Mutation**: deep-reaching or coverage-contributing states enter
//!   a bounded corpus; later rounds mutate corpus members through the
//!   solver's boundary-derived value pools (range bounds ± 1, registry
//!   enum members, feature toggles) instead of the legacy tables.
//! * **Memoization**: every candidate is deduplicated by
//!   [`GeneratedConfig::state_id`] before execution, and verdicts are
//!   memoized in a [`VerdictStore`] keyed by the canonical state key —
//!   a persistent store makes campaigns incremental across processes
//!   (a warm rerun executes nothing and reproduces the cold verdicts
//!   bit for bit).
//!
//! Execution fans out on the shared worker pool; each distinct state
//! runs the full mkfs → mount → workload → fsck pipeline once.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::time::Instant;

use blockdev::{store_context, ImageDigest, VerdictStore};
use confdep::solve::{Polarity, SolvedConfig, Solver, SolverScope};
use confdep::{ConstraintSet, Verdict};
use e2fstools::typed::{TypedConfig, TypedValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::conbugck::{execute, ConBugCk, GeneratedConfig, RunDepth};
use crate::pool::parallel_map;

/// Store context tag: campaign semantics version. Bump on any change to
/// the executor or the state-key format.
const STORE_CONTEXT: &str = "conbugck/fuzz/v1";

/// Everything ecosystem-specific the fuzz loop needs: how a
/// [`GeneratedConfig`] is typed, executed, bred, and which solver scope
/// renders candidates. The campaign itself — seeding, dedup, the
/// verdict store, coverage accounting — is ecosystem-agnostic and runs
/// unchanged over any harness.
///
/// All fields are plain function pointers so a harness is a `'static`
/// value with no captured state; [`Harness::ext4`] reproduces the
/// original single-ecosystem campaign bit for bit (same store context,
/// same state fingerprints, same RNG consumption).
pub struct Harness {
    /// Ecosystem label (`"ext4"`, `"f2fs"`).
    pub name: &'static str,
    /// Verdict-store context tag; distinct per ecosystem so memoized
    /// verdicts can never cross substrates.
    pub store_context: &'static str,
    /// The solver scope generating and rendering candidates.
    pub scope: fn() -> SolverScope,
    /// The lenient typed views of a candidate's two invocation halves.
    pub typed: fn(&GeneratedConfig) -> (TypedConfig, TypedConfig),
    /// The end-to-end executor (format → mount → workload → check).
    pub execute: fn(&GeneratedConfig) -> RunDepth,
    /// Whether a config may join the mutation corpus (cost gate).
    pub cheap_parent: fn(&GeneratedConfig) -> bool,
    /// One mutation step over the solver's value pools.
    pub mutate: fn(&Solver<'_>, &mut StdRng, &GeneratedConfig) -> GeneratedConfig,
}

impl Harness {
    /// The Ext4 harness — the original ConBugCk fuzz campaign.
    pub fn ext4() -> Self {
        Harness {
            name: "ext4",
            store_context: STORE_CONTEXT,
            scope: SolverScope::ext4,
            typed: ext4_typed,
            execute,
            cheap_parent,
            mutate,
        }
    }

    /// The F2FS harness (see [`crate::f2fs`]).
    pub fn f2fs() -> Self {
        crate::f2fs::harness()
    }

    /// Canonical whole-configuration state key under this harness's
    /// typed views — the store/memoization identity. Equals
    /// [`GeneratedConfig::state_key`] for the ext4 harness.
    pub fn state_key(&self, cfg: &GeneratedConfig) -> String {
        let (create, mount) = (self.typed)(cfg);
        format!("{}|{}", create.canonical_key(), mount.canonical_key())
    }

    /// FNV-1a fingerprint of [`Harness::state_key`]. Byte-identical to
    /// [`GeneratedConfig::state_id`] for the ext4 harness, so existing
    /// persistent stores stay warm across the refactor.
    pub fn state_id(&self, cfg: &GeneratedConfig) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in self.state_key(cfg).as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        h
    }
}

fn ext4_typed(cfg: &GeneratedConfig) -> (TypedConfig, TypedConfig) {
    cfg.typed()
}

/// Corpus cap: the mutation pool keeps at most this many states.
const CORPUS_CAP: usize = 64;

/// How candidate configurations are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Solver-seeded rounds for uncovered polarities plus pool-driven
    /// mutation of the corpus.
    Solver,
    /// The legacy dependency-aware generator (hard-coded tables).
    Aware,
    /// The naive random generator.
    Naive,
}

impl Strategy {
    /// Short lowercase label (`solver`/`aware`/`naive`).
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Solver => "solver",
            Strategy::Aware => "aware",
            Strategy::Naive => "naive",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// RNG seed — the whole candidate stream is deterministic in it.
    pub seed: u64,
    /// Number of generation rounds.
    pub rounds: usize,
    /// Candidates per round.
    pub batch: usize,
    /// Worker threads for the execution fan-out (0 = one per core).
    pub threads: usize,
    /// Candidate generation strategy.
    pub strategy: Strategy,
    /// Persistent verdict store path; `None` runs in-memory.
    pub store_path: Option<PathBuf>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 42,
            rounds: 4,
            batch: 32,
            threads: 1,
            strategy: Strategy::Solver,
            store_path: None,
        }
    }
}

/// Per-constraint polarity coverage over the solver's achievable
/// universe.
///
/// Targets are tracked by constraint *position*, not signature, so the
/// per-config observation pass allocates nothing; the solver's
/// witnesses are computed once at construction and reused for seeding.
#[derive(Debug, Clone)]
pub struct PolarityCoverage {
    /// `(constraint position, polarity)` → seed witness; iteration
    /// order is universe (extraction × polarity) order.
    witnesses: BTreeMap<(usize, Polarity), SolvedConfig>,
    covered: BTreeSet<(usize, Polarity)>,
}

impl PolarityCoverage {
    /// An empty tracker over the solver's achievable target universe.
    pub fn new(solver: &Solver<'_>) -> Self {
        PolarityCoverage {
            witnesses: solver
                .witness_targets()
                .into_iter()
                .map(|(i, p, solved)| ((i, p), solved))
                .collect(),
            covered: BTreeSet::new(),
        }
    }

    /// Records every polarity the configuration state witnesses.
    /// Returns `true` when at least one uncovered target became covered
    /// (the state contributed coverage). A no-op once the universe is
    /// saturated.
    pub fn observe(&mut self, solver: &Solver<'_>, config: &GeneratedConfig) -> bool {
        let (mkfs, mount) = config.typed();
        self.observe_views(solver, &mkfs, &mount)
    }

    /// [`PolarityCoverage::observe`] over already-computed typed views —
    /// the harness-agnostic entry point ([`fuzz_campaign_with`] types
    /// candidates through its [`Harness`], not through the ext4 lenient
    /// parsers baked into [`GeneratedConfig::typed`]).
    pub fn observe_views(
        &mut self,
        solver: &Solver<'_>,
        mkfs: &TypedConfig,
        mount: &TypedConfig,
    ) -> bool {
        if self.complete() {
            return false;
        }
        let mut contributed = false;
        for (i, c) in solver.constraints().constraints().iter().enumerate() {
            match c.evaluate(&[mkfs, mount]) {
                Verdict::Satisfied => {
                    contributed |= self.cover((i, Polarity::Satisfy));
                    let boundary = (i, Polarity::Boundary);
                    if self.witnesses.contains_key(&boundary)
                        && !self.covered.contains(&boundary)
                        && solver.hits(c, Polarity::Boundary, mkfs, mount)
                    {
                        self.covered.insert(boundary);
                        contributed = true;
                    }
                }
                Verdict::Violated => contributed |= self.cover((i, Polarity::Violate)),
                Verdict::NotApplicable => {}
            }
        }
        contributed
    }

    /// Marks one in-universe target covered; `true` when newly covered.
    fn cover(&mut self, target: (usize, Polarity)) -> bool {
        self.witnesses.contains_key(&target) && self.covered.insert(target)
    }

    /// Whether every achievable target has been witnessed.
    pub fn complete(&self) -> bool {
        self.covered.len() == self.witnesses.len()
    }

    /// The uncovered targets' seed witnesses, in universe order.
    fn uncovered_witnesses(&self) -> Vec<&SolvedConfig> {
        self.witnesses
            .iter()
            .filter(|(target, _)| !self.covered.contains(target))
            .map(|(_, solved)| solved)
            .collect()
    }

    /// The targets not yet witnessed as `(signature, polarity)`, in
    /// universe order.
    pub fn uncovered(&self, solver: &Solver<'_>) -> Vec<(String, Polarity)> {
        let constraints = solver.constraints().constraints();
        self.witnesses
            .keys()
            .filter(|t| !self.covered.contains(t))
            .map(|&(i, p)| (constraints[i].signature().to_string(), p))
            .collect()
    }

    /// Covered target count.
    pub fn covered(&self) -> usize {
        self.covered.len()
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.witnesses.len()
    }

    /// Covered fraction in `[0, 1]` (1.0 for an empty universe).
    pub fn fraction(&self) -> f64 {
        if self.witnesses.is_empty() {
            return 1.0;
        }
        self.covered.len() as f64 / self.witnesses.len() as f64
    }
}

/// The serialisable result summary of one fuzz campaign.
///
/// Every field except `wall_ms` is deterministic in `(strategy, seed,
/// rounds, batch)` — the warm-vs-cold store equivalence check compares
/// reports with `wall_ms` (and the store traffic counters) masked off.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzReport {
    /// Generation strategy label.
    pub strategy: String,
    /// RNG seed.
    pub seed: u64,
    /// Rounds run.
    pub rounds: usize,
    /// Candidates per round.
    pub batch: usize,
    /// Worker threads requested.
    pub threads: usize,
    /// Candidates generated across all rounds (pre-dedup).
    pub generated: usize,
    /// Distinct states given verdicts (post-dedup).
    pub unique_verdicts: usize,
    /// Distinct states actually executed this process (store misses);
    /// `unique_verdicts - executed_fresh` verdicts came from the store.
    pub executed_fresh: usize,
    /// Distinct states that reached deep code.
    pub deep: usize,
    /// Distinct states rejected at CLI validation.
    pub rejected_cli: usize,
    /// Distinct states rejected at format time.
    pub rejected_format: usize,
    /// Distinct states whose mount was rejected.
    pub rejected_mount: usize,
    /// Covered polarity targets.
    pub coverage_covered: usize,
    /// Achievable polarity-target universe size.
    pub coverage_universe: usize,
    /// `coverage_covered / coverage_universe`.
    pub coverage_fraction: f64,
    /// Store hits (verdicts served from memory or the log).
    pub store_hits: usize,
    /// Store misses (verdicts computed).
    pub store_misses: usize,
    /// Verdicts preloaded from a persistent log at open.
    pub store_preloaded: usize,
    /// What happened when the store was opened: persistence, cold-start
    /// reason, preloaded/dropped records.
    pub store_open: blockdev::StoreOpenReport,
    /// FNV-1a digest over the sorted `(state_id, verdict)` pairs — two
    /// campaigns with equal digests produced bit-identical verdicts.
    pub verdict_digest: u64,
    /// Wall-clock milliseconds (not deterministic).
    pub wall_ms: u64,
}

impl FuzzReport {
    /// Unique verdicts per wall-clock second.
    pub fn verdicts_per_sec(&self) -> f64 {
        if self.wall_ms == 0 {
            return self.unique_verdicts as f64 * 1000.0;
        }
        self.unique_verdicts as f64 * 1000.0 / self.wall_ms as f64
    }

    /// Whether two campaigns produced the same verdicts over the same
    /// states — everything except wall time and store traffic.
    pub fn same_verdicts(&self, other: &FuzzReport) -> bool {
        self.strategy == other.strategy
            && self.generated == other.generated
            && self.unique_verdicts == other.unique_verdicts
            && self.deep == other.deep
            && self.rejected_cli == other.rejected_cli
            && self.rejected_format == other.rejected_format
            && self.rejected_mount == other.rejected_mount
            && self.coverage_covered == other.coverage_covered
            && self.verdict_digest == other.verdict_digest
    }
}

/// The full campaign outcome: the summary report plus the verdict map
/// itself (state fingerprint → run depth), for exact equivalence
/// checks.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Summary report.
    pub report: FuzzReport,
    /// Verdict per distinct state.
    pub verdicts: BTreeMap<u64, RunDepth>,
}

/// Runs one fuzz campaign over the compiled constraint set — the
/// original ext4 entry point, now a thin wrapper over
/// [`fuzz_campaign_with`] and [`Harness::ext4`].
pub fn fuzz_campaign(set: &ConstraintSet, opts: &FuzzOptions) -> FuzzOutcome {
    fuzz_campaign_with(set, opts, &Harness::ext4())
}

/// Runs one fuzz campaign over the compiled constraint set of the
/// ecosystem the harness drives. The `Aware`/`Naive` strategies draw
/// from the legacy ext4 value tables regardless of the harness (they
/// exist as ablation baselines); cross-ecosystem campaigns should use
/// [`Strategy::Solver`], which generates from the harness's scope.
pub fn fuzz_campaign_with(
    set: &ConstraintSet,
    opts: &FuzzOptions,
    harness: &Harness,
) -> FuzzOutcome {
    let solver = Solver::with_scope(set, (harness.scope)());
    let mut coverage = PolarityCoverage::new(&solver);
    let store: VerdictStore<RunDepth> = match &opts.store_path {
        Some(path) => VerdictStore::open(path),
        None => VerdictStore::in_memory(true),
    };
    let ctx = store_context(harness.store_context);
    let start = Instant::now();

    let mut verdicts: BTreeMap<u64, RunDepth> = BTreeMap::new();
    let mut corpus: Vec<GeneratedConfig> = Vec::new();
    let mut corpus_ids: BTreeSet<u64> = BTreeSet::new();
    let mut generated = 0usize;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut aware = match opts.strategy {
        Strategy::Aware => Some(ConBugCk::new(opts.seed).expect("constraint extraction succeeds")),
        _ => None,
    };

    for round in 0..opts.rounds {
        let batch: Vec<GeneratedConfig> = match opts.strategy {
            Strategy::Solver => {
                solver_round(&solver, &coverage, &corpus, &mut rng, opts.batch, round, harness)
            }
            Strategy::Aware => {
                aware.as_mut().expect("aware generator initialised").generate(opts.batch)
            }
            Strategy::Naive => {
                crate::conbugck::generate_naive(opts.seed.wrapping_add(round as u64), opts.batch)
            }
        };
        generated += batch.len();

        // dedup against everything already given a verdict — the
        // executor never sees the same state twice
        let mut fresh: Vec<(u64, GeneratedConfig)> = Vec::new();
        let mut in_batch: BTreeSet<u64> = BTreeSet::new();
        for cfg in batch {
            let id = harness.state_id(&cfg);
            if !verdicts.contains_key(&id) && in_batch.insert(id) {
                fresh.push((id, cfg));
            }
        }

        let results = parallel_map(fresh, opts.threads, |_, (id, cfg)| {
            let key = (ImageDigest::of_bytes(harness.state_key(&cfg).as_bytes()), ctx);
            let depth = store.get_or_compute(key, || (harness.execute)(&cfg));
            (id, cfg, depth)
        });

        for (id, cfg, depth) in results {
            verdicts.insert(id, depth);
            let (create, mount) = (harness.typed)(&cfg);
            let contributed = coverage.observe_views(&solver, &create, &mount);
            // mutants inherit every value they don't touch, so an
            // expensive parent spawns expensive descendants for the
            // rest of the campaign — only cheap configs breed
            if (depth == RunDepth::Deep || contributed)
                && (harness.cheap_parent)(&cfg)
                && corpus.len() < CORPUS_CAP
                && corpus_ids.insert(id)
            {
                corpus.push(cfg);
            }
        }
    }

    let wall_ms = start.elapsed().as_millis() as u64;
    let mut tally = [0usize; 4];
    for depth in verdicts.values() {
        let slot = match depth {
            RunDepth::RejectedCli => 0,
            RunDepth::RejectedFormat => 1,
            RunDepth::RejectedMount => 2,
            RunDepth::Deep => 3,
        };
        tally[slot] += 1;
    }
    let report = FuzzReport {
        strategy: opts.strategy.label().to_string(),
        seed: opts.seed,
        rounds: opts.rounds,
        batch: opts.batch,
        threads: opts.threads,
        generated,
        unique_verdicts: verdicts.len(),
        executed_fresh: store.misses(),
        deep: tally[3],
        rejected_cli: tally[0],
        rejected_format: tally[1],
        rejected_mount: tally[2],
        coverage_covered: coverage.covered(),
        coverage_universe: coverage.universe(),
        coverage_fraction: coverage.fraction(),
        store_hits: store.hits(),
        store_misses: store.misses(),
        store_preloaded: store.preloaded(),
        store_open: store.open_report().clone(),
        verdict_digest: verdict_digest(&verdicts),
        wall_ms,
    };
    FuzzOutcome { report, verdicts }
}

/// FNV-1a digest over the sorted `(state_id, verdict)` pairs.
fn verdict_digest(verdicts: &BTreeMap<u64, RunDepth>) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (id, depth) in verdicts {
        for byte in id.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
        }
        let tag = match depth {
            RunDepth::RejectedCli => 1u8,
            RunDepth::RejectedFormat => 2,
            RunDepth::RejectedMount => 3,
            RunDepth::Deep => 4,
        };
        h = (h ^ u64::from(tag)).wrapping_mul(PRIME);
    }
    h
}

/// One solver-strategy generation round: the cached witnesses of every
/// still-uncovered polarity target first, then pool-driven mutants of
/// the corpus up to the batch size.
fn solver_round(
    solver: &Solver<'_>,
    coverage: &PolarityCoverage,
    corpus: &[GeneratedConfig],
    rng: &mut StdRng,
    batch: usize,
    round: usize,
    harness: &Harness,
) -> Vec<GeneratedConfig> {
    let mut out: Vec<GeneratedConfig> = Vec::new();
    for solved in coverage.uncovered_witnesses() {
        if let Some(cfg) = to_generated(solver, solved) {
            out.push(cfg);
        }
    }
    if round == 0 && out.is_empty() && corpus.is_empty() {
        // degenerate universe: fall back to the base skeleton so the
        // mutation loop has something to chew on
        if let Some(first) = solver.constraints().constraints().first() {
            if let Some(solved) = solver.solve(first, Polarity::Satisfy) {
                out.extend(to_generated(solver, &solved));
            }
        }
    }
    while out.len() < batch {
        let parent = if corpus.is_empty() {
            match out.first() {
                Some(p) => p.clone(),
                None => break,
            }
        } else {
            corpus[rng.gen_range(0..corpus.len())].clone()
        };
        out.push((harness.mutate)(solver, rng, &parent));
    }
    out
}

/// Converts a solved assignment to the generator's config shape,
/// rendering through the solver's own scope.
pub(crate) fn to_generated(solver: &Solver<'_>, solved: &SolvedConfig) -> Option<GeneratedConfig> {
    let (mkfs_args, mount_opts) = solved.render_with(solver.scope())?;
    Some(GeneratedConfig { mkfs_args, mount_opts })
}

/// The harness formats a fixed 12288-block device, so per-run cost
/// scales with the bytes the simulator touches before it can reject a
/// config. Mutation keeps pool values whose probe is cheap relative to
/// the one verdict it yields: journals that could actually fit the
/// device, and block sizes that either keep the image small or are
/// rejected before any image work. The solver's boundary witnesses
/// already probe every bound once, so dropping the expensive middle
/// ground from the mutation mix loses no coverage.
const DEVICE_BLOCKS: i64 = 12288;
const CHEAP_BLOCKSIZE: i64 = 4096;

fn cheap_values(pool: Vec<i64>, keep: impl Fn(i64) -> bool) -> Vec<i64> {
    let kept: Vec<i64> = pool.iter().copied().filter(|&v| keep(v)).collect();
    if kept.is_empty() { pool } else { kept }
}

/// Whether a config may join the mutation corpus. Descendants inherit
/// every value the mutator doesn't touch, so one oversized journal or
/// block size in a parent taxes every mutant bred from it.
fn cheap_parent(cfg: &GeneratedConfig) -> bool {
    let (mkfs, _) = cfg.typed();
    if let Some(TypedValue::Int(j)) = mkfs.get("journal_size") {
        if *j > DEVICE_BLOCKS {
            return false;
        }
    }
    if let Some(TypedValue::Int(b)) = mkfs.get("blocksize") {
        if *b > CHEAP_BLOCKSIZE && *b < 8 * CHEAP_BLOCKSIZE {
            return false;
        }
    }
    true
}

/// Mutates one corpus member through the solver's value pools: range
/// and boundary integers (bounds ± 1 included, so out-of-range probes
/// arise naturally), feature toggles, enum members — the replacement
/// for the legacy hard-coded tables.
fn mutate(solver: &Solver<'_>, rng: &mut StdRng, parent: &GeneratedConfig) -> GeneratedConfig {
    let (mkfs, mount) = parent.typed();
    let mut solved = SolvedConfig { mkfs, mount };
    // parents come from renders of typed states, but the round trip can
    // in principle produce values the renderer refuses — keep the
    // parent in that case
    let ops = 1 + rng.gen_range(0..2);
    for _ in 0..ops {
        match rng.gen_range(0..6) {
            0 => {
                // large in-range block sizes pay full image cost; the
                // very large ones are refused before the image exists
                let pool = cheap_values(solver.int_pool("mke2fs", "blocksize"), |v| {
                    v <= CHEAP_BLOCKSIZE || v >= 8 * CHEAP_BLOCKSIZE
                });
                solved.mkfs.set_int("blocksize", pool[rng.gen_range(0..pool.len())]);
            }
            1 => {
                let pool = solver.int_pool("mke2fs", "reserved_percent");
                solved.mkfs.set_int("reserved_percent", pool[rng.gen_range(0..pool.len())]);
            }
            2 => {
                let features = solver.feature_pool("mke2fs");
                if !features.is_empty() {
                    let f = &features[rng.gen_range(0..features.len())];
                    let flipped = match solved.mkfs.get(f) {
                        Some(TypedValue::Bool(b)) => !*b,
                        _ => true,
                    };
                    solved.mkfs.set_bool(f, flipped);
                }
            }
            3 => {
                // a journal bigger than the device burns milliseconds
                // of simulated journal writes before the format fails
                let pool = cheap_values(solver.int_pool("mke2fs", "journal_size"), |v| {
                    v <= DEVICE_BLOCKS
                });
                solved.mkfs.set_int("journal_size", pool[rng.gen_range(0..pool.len())]);
                solved.mkfs.set_bool("has_journal", true);
            }
            4 => {
                let param = if rng.gen_bool(0.5) { "data" } else { "errors" };
                let members = solver.enum_pool("mount", param);
                if !members.is_empty() {
                    let v = &members[rng.gen_range(0..members.len())];
                    solved.mount.set_str(param, v);
                }
            }
            _ => {
                let pool = solver.int_pool("mount", "commit");
                solved.mount.set_int("commit", pool[rng.gen_range(0..pool.len())]);
            }
        }
    }
    to_generated(solver, &solved).unwrap_or_else(|| parent.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use confdep::{extract_scenario, models, ExtractOptions};

    fn compiled() -> ConstraintSet {
        ConstraintSet::compile(
            extract_scenario(&models::all(), ExtractOptions::default()).unwrap(),
        )
    }

    #[test]
    fn solver_campaign_reaches_full_polarity_coverage() {
        let set = compiled();
        let outcome = fuzz_campaign(
            &set,
            &FuzzOptions { rounds: 2, batch: 16, ..FuzzOptions::default() },
        );
        let r = &outcome.report;
        assert_eq!(r.coverage_covered, r.coverage_universe, "uncovered targets remain");
        assert!((r.coverage_fraction - 1.0).abs() < f64::EPSILON);
        assert!(r.coverage_universe >= 60, "universe {}", r.coverage_universe);
        assert_eq!(r.unique_verdicts, outcome.verdicts.len());
    }

    #[test]
    fn campaigns_are_deterministic_in_the_seed() {
        let set = compiled();
        let opts = FuzzOptions { rounds: 3, batch: 12, ..FuzzOptions::default() };
        let a = fuzz_campaign(&set, &opts);
        let b = fuzz_campaign(&set, &opts);
        assert_eq!(a.verdicts, b.verdicts);
        assert!(a.report.same_verdicts(&b.report));
    }

    #[test]
    fn thread_count_does_not_change_verdicts() {
        let set = compiled();
        let base = FuzzOptions { rounds: 2, batch: 16, ..FuzzOptions::default() };
        let seq = fuzz_campaign(&set, &base);
        let par = fuzz_campaign(&set, &FuzzOptions { threads: 4, ..base });
        assert_eq!(seq.verdicts, par.verdicts);
        assert_eq!(seq.report.verdict_digest, par.report.verdict_digest);
    }

    #[test]
    fn aware_and_naive_strategies_run_under_the_same_loop() {
        let set = compiled();
        for strategy in [Strategy::Aware, Strategy::Naive] {
            let outcome = fuzz_campaign(
                &set,
                &FuzzOptions { strategy, rounds: 2, batch: 10, ..FuzzOptions::default() },
            );
            let r = &outcome.report;
            assert_eq!(r.strategy, strategy.label());
            assert!(r.unique_verdicts > 0);
            assert!(r.unique_verdicts <= r.generated);
            // the table-driven generators cannot reach every polarity
            assert!(r.coverage_covered < r.coverage_universe, "{strategy} covered everything");
        }
    }

    #[test]
    fn ext4_harness_state_identity_matches_generated_config() {
        // the refactor's compatibility pin: the harness's generic state
        // key/fingerprint must be byte-identical to the hard-coded ext4
        // ones, so existing persistent stores stay warm
        let h = Harness::ext4();
        let mut gen = ConBugCk::new(11).expect("models compile");
        for cfg in gen.generate(32) {
            assert_eq!(h.state_key(&cfg), cfg.state_key());
            assert_eq!(h.state_id(&cfg), cfg.state_id());
        }
    }

    #[test]
    fn warm_store_reruns_execute_nothing_and_match_exactly() {
        let dir = std::env::temp_dir().join(format!("fuzz-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verdicts.vstr");
        let _ = std::fs::remove_file(&path);
        let set = compiled();
        let opts = FuzzOptions {
            rounds: 2,
            batch: 12,
            store_path: Some(path.clone()),
            ..FuzzOptions::default()
        };
        let cold = fuzz_campaign(&set, &opts);
        assert!(cold.report.executed_fresh > 0);
        let warm = fuzz_campaign(&set, &opts);
        assert_eq!(warm.report.executed_fresh, 0, "warm rerun executed configs");
        assert_eq!(warm.verdicts, cold.verdicts);
        assert!(warm.report.same_verdicts(&cold.report));
        assert!(warm.report.store_preloaded >= cold.report.unique_verdicts);
        let _ = std::fs::remove_file(&path);
    }
}
