//! ConDocCk: check the utilities' manual pages against the dependencies
//! the code actually enforces, reporting every undocumented constraint
//! (the paper's 12 inaccurate-documentation issues).
//!
//! Run with: `cargo run --example doc_checker`

use confdep_suite::contools::run_condocck;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let issues = run_condocck()?;
    println!("ConDocCk found {} documentation issues (paper: 12)\n", issues.len());
    for (i, issue) in issues.iter().enumerate() {
        println!("{:2}. manual `{}`:", i + 1, issue.manual);
        println!("    undocumented dependency: {}", issue.dependency);
        if let Some(bridge) = &issue.dependency.detail.bridge_field {
            println!("    (bridged through the shared metadata field {bridge})");
        }
        for ev in &issue.dependency.evidence {
            println!("    code evidence: {ev}");
        }
        println!();
    }
    println!("the flagship example from §4.3 — the meta_bg/resize_inode conflict —");
    println!("is enforced by mke2fs's code but absent from its man page.");
    Ok(())
}
