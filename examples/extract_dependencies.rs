//! Runs the static analyzer over every component of the Ext4 ecosystem
//! and writes the extracted dependencies to JSON files (as the paper's
//! prototype does), printing the taint-analysis statistics along the way.
//!
//! Run with: `cargo run --example extract_dependencies [output-dir]`

use confdep_suite::confdep::{
    analyze_component, extract_component, extract_scenario, models, DependencyReport,
    ExtractOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| std::env::temp_dir().display().to_string());

    println!("{:<12} {:>8} {:>12} {:>10} {:>10}", "component", "params", "tainted-vars", "traces", "deps");
    for (name, src) in models::all() {
        let analyzed = analyze_component(src, ExtractOptions::default())?;
        let deps = extract_component(src)?;
        println!(
            "{:<12} {:>8} {:>12} {:>10} {:>10}",
            name,
            analyzed.program.params.len(),
            analyzed.taint.tainted_var_count,
            analyzed.taint.traces.len(),
            deps.len()
        );
        let report = DependencyReport::new(name, false, deps);
        let path = format!("{out_dir}/confdep-{name}.json");
        report.save(&path)?;
    }

    // whole-ecosystem extraction with the cross-component bridge
    let all = extract_scenario(&models::all(), ExtractOptions::default())?;
    let by_cat = |cat: &str| all.iter().filter(|d| d.kind.category() == cat).count();
    println!("\necosystem: {} dependencies (SD {}, CPD {}, CCD {})", all.len(), by_cat("SD"), by_cat("CPD"), by_cat("CCD"));

    let report = DependencyReport::new("ext4-ecosystem", false, all);
    let path = format!("{out_dir}/confdep-ecosystem.json");
    report.save(&path)?;
    println!("JSON reports written to {out_dir}/confdep-*.json");

    // show one JSON entry as the paper describes the format
    let loaded = DependencyReport::load(&path)?;
    if let Some(ccd) = loaded.dependencies.iter().find(|d| d.is_cross_component()) {
        println!("\nsample JSON entry:\n{}", serde_json::to_string_pretty(ccd)?);
    }
    Ok(())
}
