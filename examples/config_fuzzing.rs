//! ConBugCk: dependency-aware configuration generation for deeper
//! testing. Compares how often naive random configurations and
//! dependency-respecting configurations get past shallow validation into
//! deep code (format + mount + workload + clean fsck).
//!
//! Run with: `cargo run --example config_fuzzing [count] [seed]`

use confdep_suite::contools::conbugck::{campaign, execute, generate_naive, ConBugCk, RunDepth};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(50);
    let seed: u64 = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(2022);

    let mut gen = ConBugCk::new(seed)?;
    println!("generator steered by {} compiled constraints", gen.constraints().len());

    let aware_configs = gen.generate(n);
    let naive_configs = generate_naive(seed, n);

    println!("\nsample dependency-aware configurations:");
    for cfg in aware_configs.iter().take(5) {
        let depth = execute(cfg);
        println!("  mke2fs {:?} + mount -o '{}' -> {:?}", cfg.mkfs_args, cfg.mount_opts, depth);
        assert_ne!(depth, RunDepth::RejectedCli, "aware configs never die at the CLI");
    }

    let aware = campaign(&aware_configs);
    let naive = campaign(&naive_configs);

    println!("\n{:<22} {:>6} {:>8} {:>8} {:>8} {:>8}", "strategy", "total", "cli-rej", "fmt-rej", "mnt-rej", "deep");
    println!(
        "{:<22} {:>6} {:>8} {:>8} {:>8} {:>8}",
        "dependency-aware", aware.total, aware.rejected_cli, aware.rejected_format, aware.rejected_mount, aware.deep
    );
    println!(
        "{:<22} {:>6} {:>8} {:>8} {:>8} {:>8}",
        "naive random", naive.total, naive.rejected_cli, naive.rejected_format, naive.rejected_mount, naive.deep
    );
    println!(
        "\ndeep-run rate: aware {:.0}% vs naive {:.0}%",
        100.0 * aware.deep_rate(),
        100.0 * naive.deep_rate()
    );
    println!("respecting the extracted dependencies avoids shallow early crashes (§4.2, ConBugCk)");
    Ok(())
}
