//! ConHandleCk: intentionally violate configuration dependencies against
//! the live ecosystem and check how each violation is handled. Eleven
//! violations are rejected gracefully; one — the Figure 1 dependency —
//! is accepted and corrupts the file system.
//!
//! Run with: `cargo run --example violation_testing`

use confdep_suite::contools::{run_conhandleck, Handling};

fn main() {
    let outcomes = run_conhandleck();
    let mut graceful = 0;
    let mut bad = 0;
    for o in &outcomes {
        match &o.handling {
            Handling::Graceful { error } => {
                graceful += 1;
                println!("[graceful] case {:2}: {}", o.case.id, o.case.description);
                println!("            error: {error}");
            }
            Handling::Accepted => {
                println!("[accepted] case {:2}: {}", o.case.id, o.case.description);
            }
            Handling::BadHandling { corruption } => {
                bad += 1;
                println!("[ BAD !! ] case {:2}: {}", o.case.id, o.case.description);
                println!("            violated dependency: {}", o.case.dependency);
                println!("            silent corruption detected by e2fsck: {}", corruption.join(", "));
            }
        }
    }
    println!();
    println!("{} violations injected: {graceful} graceful, {bad} bad handling (paper: 1 bad)", outcomes.len());
}
