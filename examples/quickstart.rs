//! Quickstart: drive the whole ecosystem once — create, mount, use,
//! defragment, resize, check — then extract the configuration
//! dependencies that connect those stages.
//!
//! Run with: `cargo run --example quickstart`

use confdep_suite::blockdev::MemDevice;
use confdep_suite::confdep::{extract_scenario, models, ExtractOptions};
use confdep_suite::e2fstools::{Dumpe2fs, E2fsck, E4defrag, FsckMode, Mke2fs, MountCmd, Resize2fs};
use confdep_suite::ext4sim::InodeNo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. create (mke2fs): 12 MiB file system on a 16 MiB device
    let mkfs = Mke2fs::from_args(&["-b", "1024", "-L", "demo", "/dev/demo", "12288"])?;
    let (dev, report) = mkfs.run(MemDevice::new(1024, 16384))?;
    println!("created: {} blocks, {} groups, features [{}]", report.blocks_count, report.group_count, report.features);

    // 2. mount and use the file system
    let mount = MountCmd::from_option_string("data=ordered")?;
    let mut fs = mount.run(dev)?;
    let root = fs.root_inode();
    let docs = fs.mkdir(root, "docs")?;
    let file = fs.create_file(docs, "hello.txt")?;
    fs.write_file(file, 0, b"hello, configuration dependencies!")?;
    let entry = fs.lookup(docs, "hello.txt")?.expect("just created");
    let content = fs.read_file_to_vec(InodeNo(entry.inode))?;
    println!("mounted: wrote and read back {} bytes", content.len());

    // 3. online stage: defragment
    let defrag = E4defrag::new().run(&mut fs)?;
    println!("defrag : {} files checked, {} defragmented", defrag.files_checked, defrag.files_defragmented);

    // 4. offline stage: unmount, grow, check
    let dev = fs.unmount()?;
    let (dev, resize) = Resize2fs::to_size(16384).run(dev)?;
    println!("resize : {} -> {} blocks", resize.old_blocks, resize.new_blocks);
    let (dev, fsck) = E2fsck::with_mode(FsckMode::Fix).forced().run(dev)?;
    println!("e2fsck : exit {}, {} fixes", fsck.exit_code, fsck.fixes.len());

    // inspect the final image
    let (_, dump) = Dumpe2fs::new().run(dev)?;
    println!(
        "dump   : '{}', {} blocks ({} free), {} groups, features [{}]",
        dump.label,
        dump.blocks_count,
        dump.free_blocks,
        dump.groups.len(),
        dump.features.join(",")
    );

    // 5. extract the dependencies connecting these stages
    let deps = extract_scenario(&models::all(), ExtractOptions::default())?;
    println!("\nextracted {} configuration dependencies; the cross-component ones:", deps.len());
    for d in deps.iter().filter(|d| d.is_cross_component()) {
        println!("  {d}");
    }
    Ok(())
}
