//! Umbrella crate for the confdep reproduction workspace.
//!
//! Re-exports every workspace crate so that examples and integration tests
//! can reach the whole system through one dependency.
pub use blockdev;
pub use cir;
pub use confdep;
pub use conpool;
pub use contools;
pub use convalid;
pub use crashsim;
pub use e2fstools;
pub use ecosys;
pub use ext4sim;
pub use f2fstools;
pub use faultsim;
pub use study;
pub use taint;
