//! `confdep` — the command-line front end to the reproduction (the
//! "practical open source tool" of the paper's future-work section).
//!
//! ```text
//! confdep extract [--inter] [--no-bridge] [--json FILE]
//! confdep evaluate
//! confdep check-docs
//! confdep check-handling
//! confdep fuzz [--count N] [--seed S]
//! confdep study
//! confdep component <name> [args...]
//! ```

use std::process::ExitCode;

use confdep_suite::blockdev::MemDevice;
use confdep_suite::confdep::{
    extract_scenario_full, models, DependencyReport, Evaluation, ExtractOptions,
};
use confdep_suite::contools::conbugck::{campaign_parallel, generate_naive, ConBugCk};
use confdep_suite::contools::{run_condocck, run_conhandleck, standard_image, Handling};
use confdep_suite::e2fstools::{component, ecosystem};

fn usage() -> ExitCode {
    eprintln!(
        "usage: confdep <command> [options]\n\
         \n\
         commands:\n\
           extract         extract the multi-level configuration dependencies\n\
             --inter         enable the inter-procedural taint extension\n\
             --no-bridge     disable the shared-metadata bridge (no CCDs)\n\
             --json FILE     write the dependencies to a JSON report\n\
             --threads N     analysis workers (default: one per core)\n\
           evaluate        run the Table 5 evaluation against the ground truth\n\
           check-docs      ConDocCk: report undocumented dependencies\n\
           check-handling  ConHandleCk: inject dependency violations\n\
           fuzz            ConBugCk: dependency-aware configuration testing\n\
             --count N       configurations per strategy (default 40)\n\
             --seed S        RNG seed (default 2022)\n\
           study           print the empirical-study summaries (Tables 1-4)\n\
           component       run one ecosystem component through the unified dispatch\n\
             <name> [args...]  e.g. `component mke2fs -b 4096 /dev/img`"
    );
    ExitCode::from(2)
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { return usage() };
    match command.as_str() {
        "extract" => {
            let options = ExtractOptions {
                interprocedural: flag(&args, "--inter"),
                disable_bridge: flag(&args, "--no-bridge"),
            };
            // 0 = one analysis worker per core
            let threads: usize =
                value(&args, "--threads").and_then(|v| v.parse().ok()).unwrap_or(0);
            let extraction = match extract_scenario_full(&models::all(), options, threads) {
                Ok(x) => x,
                Err(e) => {
                    eprintln!("extraction failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let truncated: usize = extraction
                .components
                .iter()
                .map(|c| c.taint.truncated_conditions)
                .sum();
            if truncated > 0 {
                eprintln!(
                    "warning: {truncated} branch condition(s) exceeded the \
                     decomposition depth cap; some dependencies may be missing"
                );
            }
            let deps = extraction.deps;
            for d in &deps {
                println!("{d}");
            }
            let by = |cat: &str| deps.iter().filter(|d| d.kind.category() == cat).count();
            println!(
                "\n{} dependencies (SD {}, CPD {}, CCD {})",
                deps.len(),
                by("SD"),
                by("CPD"),
                by("CCD")
            );
            if let Some(path) = value(&args, "--json") {
                let report =
                    DependencyReport::new("ext4-ecosystem", options.interprocedural, deps);
                if let Err(e) = report.save(&path) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("JSON report written to {path}");
            }
            ExitCode::SUCCESS
        }
        "evaluate" => match Evaluation::run(ExtractOptions::default()) {
            Ok(eval) => {
                for s in &eval.scenarios {
                    println!(
                        "{:<44} SD {:>2}/{} CPD {:>2}/{} CCD {:>2}/{}",
                        s.label,
                        s.sd.extracted,
                        s.sd.false_positives,
                        s.cpd.extracted,
                        s.cpd.false_positives,
                        s.ccd.extracted,
                        s.ccd.false_positives
                    );
                }
                println!(
                    "{:<44} SD {:>2}/{} CPD {:>2}/{} CCD {:>2}/{}",
                    "Total Unique",
                    eval.unique.sd.extracted,
                    eval.unique.sd.false_positives,
                    eval.unique.cpd.extracted,
                    eval.unique.cpd.false_positives,
                    eval.unique.ccd.extracted,
                    eval.unique.ccd.false_positives
                );
                println!(
                    "overall: {} dependencies, {} FP ({:.1}%)",
                    eval.unique.total(),
                    eval.unique.total_fp(),
                    100.0 * eval.overall_fp_rate()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("evaluation failed: {e}");
                ExitCode::FAILURE
            }
        },
        "check-docs" => match run_condocck() {
            Ok(issues) => {
                for (i, issue) in issues.iter().enumerate() {
                    println!("{:2}. [{}] {}", i + 1, issue.manual, issue.dependency);
                }
                println!("\n{} documentation issues", issues.len());
                if issues.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE }
            }
            Err(e) => {
                eprintln!("ConDocCk failed: {e}");
                ExitCode::FAILURE
            }
        },
        "check-handling" => {
            let outcomes = run_conhandleck();
            let mut bad = 0;
            for o in &outcomes {
                let verdict = match &o.handling {
                    Handling::Graceful { .. } => "graceful",
                    Handling::Accepted => "accepted",
                    Handling::BadHandling { .. } => {
                        bad += 1;
                        "BAD HANDLING"
                    }
                };
                println!("case {:2} [{verdict:>12}] {}", o.case.id, o.case.description);
            }
            println!("\n{} cases, {} bad handling", outcomes.len(), bad);
            if bad == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE }
        }
        "fuzz" => {
            let count: usize =
                value(&args, "--count").and_then(|v| v.parse().ok()).unwrap_or(40);
            let seed: u64 = value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(2022);
            // 0 = one worker per core; the campaign's tallies are
            // deterministic regardless of the worker count
            let threads: usize =
                value(&args, "--threads").and_then(|v| v.parse().ok()).unwrap_or(0);
            let mut gen = match ConBugCk::new(seed) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("generator failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let aware = campaign_parallel(&gen.generate(count), threads);
            let naive = campaign_parallel(&generate_naive(seed, count), threads);
            println!(
                "dependency-aware: {}/{} deep ({:.0}%)",
                aware.deep,
                aware.total,
                100.0 * aware.deep_rate()
            );
            println!(
                "naive random    : {}/{} deep ({:.0}%)",
                naive.deep,
                naive.total,
                100.0 * naive.deep_rate()
            );
            ExitCode::SUCCESS
        }
        "study" => {
            let t3 = study::classify_corpus();
            println!(
                "bug study : {} bugs | SD {:.1}% CPD {:.1}% CCD {:.1}%",
                t3.total.bugs,
                t3.total.sd_pct(),
                t3.total.cpd_pct(),
                t3.total.ccd_pct()
            );
            println!(
                "taxonomy  : {} critical dependencies, {}/7 sub-categories observed",
                study::total_critical_deps(),
                study::observed_sub_categories()
            );
            for row in study::coverage_table() {
                println!(
                    "coverage  : {:<14} {:<10} {:>3} of >{} ({:.1}%)",
                    row.suite,
                    row.target,
                    row.used,
                    row.total - 1,
                    row.pct()
                );
            }
            println!("catalog   : {} file systems with multi-stage configuration", study::fs_catalog().len());
            ExitCode::SUCCESS
        }
        "component" => {
            let Some(name) = args.get(1) else {
                eprintln!("usage: confdep component <name> [args...]");
                return ExitCode::from(2);
            };
            let Some(comp) = component(name) else {
                let known: Vec<_> = ecosystem().iter().map(|c| c.name()).collect();
                eprintln!("unknown component: {name} (expected one of {})", known.join(", "));
                return ExitCode::from(2);
            };
            let rest: Vec<&str> = args[2..].iter().map(String::as_str).collect();
            let cfg = match comp.parse_config(&rest) {
                Ok(cfg) => cfg,
                Err(e) => {
                    eprintln!("{name}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("config: {}", cfg.canonical_key());
            // mke2fs starts from a 16 MiB blank device sized to the
            // configured block size; every other component operates on a
            // freshly formatted standard image
            let dev = if name == "mke2fs" {
                let bs = cfg.get_int("blocksize").unwrap_or(1024).clamp(1024, 65536) as u32;
                MemDevice::new(bs, (16 << 20) / u64::from(bs))
            } else {
                standard_image("")
            };
            match comp.run(&rest, dev) {
                Ok(out) => {
                    println!("{}", out.summary);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{name}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
