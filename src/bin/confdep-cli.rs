//! `confdep` — the command-line front end to the reproduction (the
//! "practical open source tool" of the paper's future-work section).
//!
//! ```text
//! confdep extract [--ecosystem E] [--inter] [--no-bridge] [--json FILE]
//! confdep evaluate
//! confdep check-docs [--ecosystem E]
//! confdep check-handling [--ecosystem E]
//! confdep fuzz [--ecosystem E] [--count N] [--seed S] [--threads N] [--solver]
//!              [--store PATH] [--json]
//! confdep validate [--ecosystem E] '<create args> | <mount opts>' [--batch FILE]
//!                  [--threads N] [--json] [--explain] [--repair] [--naive]
//! confdep study
//! confdep component <name> [args...]
//! confdep cross-fs [--check '<ext4 mount opts> | <f2fs mount opts>']
//! ```

use std::process::ExitCode;

use std::path::PathBuf;

use confdep_suite::blockdev::MemDevice;
use confdep_suite::confdep::{
    extract_scenario_full, DependencyReport, Evaluation, ExtractOptions, Solver,
};
use confdep_suite::contools::conbugck::{campaign_parallel, generate_naive, ConBugCk};
use confdep_suite::contools::fuzz::{
    fuzz_campaign_with, FuzzOptions, FuzzReport, Harness, PolarityCoverage, Strategy,
};
use confdep_suite::contools::{
    run_condocck_for, run_conhandleck, run_conhandleck_f2fs, standard_f2fs_image, standard_image,
    Handling,
};
use confdep_suite::convalid::{
    ConfigQuery, EngineOptions, EngineStats, Explanation, RepairProposal, ValidationEngine,
    ValidationPlan,
};
use confdep_suite::ecosys;
use serde::Serialize;

fn usage() -> ExitCode {
    eprintln!(
        "usage: confdep <command> [options]\n\
         \n\
         commands:\n\
           extract         extract the multi-level configuration dependencies\n\
             --ecosystem E   ecosystem to analyze: ext4 (default) or f2fs\n\
             --inter         enable the inter-procedural taint extension\n\
             --no-bridge     disable the shared-metadata bridge (no CCDs)\n\
             --json FILE     write the dependencies to a JSON report\n\
             --threads N     analysis workers (default: one per core)\n\
           evaluate        run the Table 5 evaluation against the ground truth\n\
           check-docs      ConDocCk: report undocumented dependencies\n\
             --ecosystem E   manual corpus to check (default ext4)\n\
           check-handling  ConHandleCk: inject dependency violations\n\
             --ecosystem E   ecosystem to inject into (default ext4)\n\
           fuzz            ConBugCk: dependency-aware configuration testing\n\
             --ecosystem E   ecosystem to fuzz; non-ext4 runs the solver\n\
                             campaign only (the aware/naive arms are the\n\
                             paper's ext4 ablation baselines)\n\
             --count N       configurations per strategy (default 40)\n\
             --seed S        RNG seed (default 2022)\n\
             --solver        also run the solver-guided coverage campaign\n\
             --store PATH    persistent verdict store for the solver campaign\n\
             --json          emit the results as a JSON report\n\
           validate        validate whole configurations against the dependency table\n\
             '<create args> | <mount opts>'  one query (quote the pipe)\n\
             --ecosystem E   dependency table to serve (default ext4);\n\
                             queries get namespaced `E#` state keys\n\
             --batch FILE    one query per line (same format; # comments)\n\
             --threads N     batch worker threads (default: one per core)\n\
             --json          emit the results as a JSON report\n\
             --explain       explain each violated dependency (doc verdict, evidence)\n\
             --repair        propose a minimal satisfying assignment\n\
             --naive         evaluate all constraints per query (no index, no memo)\n\
           study           print the empirical-study summaries (Tables 1-4)\n\
           component       run one component through the unified dispatch\n\
             <name> [args...]  bare names resolve across every registered\n\
                               ecosystem when unambiguous (`mke2fs`,\n\
                               `resize.f2fs`); namespace with `eco:name`\n\
                               otherwise, e.g. `f2fs:mkfs -O encrypt`\n\
           cross-fs        list the cross-ecosystem shared-mount-parameter CCDs\n\
             --check '<ext4 mount opts> | <f2fs mount opts>'\n\
                             validate a side-by-side deployment's agreement"
    );
    ExitCode::from(2)
}

/// One legacy-generator arm of the `fuzz` report: campaign depth plus
/// the static polarity coverage its configurations witness.
#[derive(Serialize)]
struct FuzzCliArm {
    deep: usize,
    total: usize,
    deep_rate: f64,
    coverage_covered: usize,
    coverage_universe: usize,
    coverage_fraction: f64,
}

/// One query's row in the `validate` report.
#[derive(Serialize)]
struct ValidateRow {
    /// Canonical state key of the query.
    query: String,
    ok: bool,
    /// Constraints evaluated for this answer (0 on a memo hit).
    evaluated: usize,
    memo_hit: bool,
    satisfied: usize,
    /// Signatures of the violated constraints.
    violations: Vec<String>,
    explanations: Option<Vec<Explanation>>,
    repair: Option<RepairProposal>,
}

/// The `validate --json` report shape.
#[derive(Serialize)]
struct ValidateCliReport {
    queries: usize,
    ok: usize,
    violating: usize,
    threads: usize,
    strategy: String,
    engine: EngineStats,
    results: Vec<ValidateRow>,
}

/// The `fuzz --json` report shape.
#[derive(Serialize)]
struct FuzzCliReport {
    count: usize,
    seed: u64,
    threads: usize,
    aware: FuzzCliArm,
    naive: FuzzCliArm,
    solver: Option<FuzzReport>,
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Resolves the `--ecosystem` flag (default: ext4, the paper's study
/// subject) against the multi-ecosystem registry.
fn ecosystem_arg(args: &[String]) -> Result<ecosys::Ecosystem, ExitCode> {
    match value(args, "--ecosystem") {
        None => Ok(ecosys::ext4()),
        Some(name) => ecosys::by_name(&name).ok_or_else(|| {
            let known: Vec<_> = ecosys::all().iter().map(|e| e.name).collect();
            eprintln!("unknown ecosystem: {name} (expected one of {})", known.join(", "));
            ExitCode::from(2)
        }),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { return usage() };
    match command.as_str() {
        "extract" => {
            let eco = match ecosystem_arg(&args) {
                Ok(eco) => eco,
                Err(code) => return code,
            };
            let options = ExtractOptions {
                interprocedural: flag(&args, "--inter"),
                disable_bridge: flag(&args, "--no-bridge"),
            };
            // 0 = one analysis worker per core
            let threads: usize =
                value(&args, "--threads").and_then(|v| v.parse().ok()).unwrap_or(0);
            let extraction = match extract_scenario_full(&eco.models(), options, threads) {
                Ok(x) => x,
                Err(e) => {
                    eprintln!("extraction failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let truncated: usize = extraction
                .components
                .iter()
                .map(|c| c.taint.truncated_conditions)
                .sum();
            if truncated > 0 {
                eprintln!(
                    "warning: {truncated} branch condition(s) exceeded the \
                     decomposition depth cap; some dependencies may be missing"
                );
            }
            let deps = extraction.deps;
            for d in &deps {
                println!("{d}");
            }
            let by = |cat: &str| deps.iter().filter(|d| d.kind.category() == cat).count();
            println!(
                "\n{} dependencies (SD {}, CPD {}, CCD {})",
                deps.len(),
                by("SD"),
                by("CPD"),
                by("CCD")
            );
            if let Some(path) = value(&args, "--json") {
                let label = format!("{}-ecosystem", eco.name);
                let report = DependencyReport::new(&label, options.interprocedural, deps);
                if let Err(e) = report.save(&path) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("JSON report written to {path}");
            }
            ExitCode::SUCCESS
        }
        "evaluate" => match Evaluation::run(ExtractOptions::default()) {
            Ok(eval) => {
                for s in &eval.scenarios {
                    println!(
                        "{:<44} SD {:>2}/{} CPD {:>2}/{} CCD {:>2}/{}",
                        s.label,
                        s.sd.extracted,
                        s.sd.false_positives,
                        s.cpd.extracted,
                        s.cpd.false_positives,
                        s.ccd.extracted,
                        s.ccd.false_positives
                    );
                }
                println!(
                    "{:<44} SD {:>2}/{} CPD {:>2}/{} CCD {:>2}/{}",
                    "Total Unique",
                    eval.unique.sd.extracted,
                    eval.unique.sd.false_positives,
                    eval.unique.cpd.extracted,
                    eval.unique.cpd.false_positives,
                    eval.unique.ccd.extracted,
                    eval.unique.ccd.false_positives
                );
                println!(
                    "overall: {} dependencies, {} FP ({:.1}%)",
                    eval.unique.total(),
                    eval.unique.total_fp(),
                    100.0 * eval.overall_fp_rate()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("evaluation failed: {e}");
                ExitCode::FAILURE
            }
        },
        "check-docs" => match ecosystem_arg(&args).map(|eco| run_condocck_for(&eco)) {
            Err(code) => code,
            Ok(Ok(issues)) => {
                for (i, issue) in issues.iter().enumerate() {
                    println!("{:2}. [{}] {}", i + 1, issue.manual, issue.dependency);
                }
                println!("\n{} documentation issues", issues.len());
                if issues.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE }
            }
            Ok(Err(e)) => {
                eprintln!("ConDocCk failed: {e}");
                ExitCode::FAILURE
            }
        },
        "check-handling" => {
            let eco = match ecosystem_arg(&args) {
                Ok(eco) => eco,
                Err(code) => return code,
            };
            let outcomes =
                if eco.name == "f2fs" { run_conhandleck_f2fs() } else { run_conhandleck() };
            let mut bad = 0;
            for o in &outcomes {
                let verdict = match &o.handling {
                    Handling::Graceful { .. } => "graceful",
                    Handling::Accepted => "accepted",
                    Handling::BadHandling { .. } => {
                        bad += 1;
                        "BAD HANDLING"
                    }
                };
                println!("case {:2} [{verdict:>12}] {}", o.case.id, o.case.description);
            }
            println!("\n{} cases, {} bad handling", outcomes.len(), bad);
            if bad == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE }
        }
        "fuzz" => {
            let count: usize =
                value(&args, "--count").and_then(|v| v.parse().ok()).unwrap_or(40);
            let seed: u64 = value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(2022);
            // 0 = one worker per core; the campaign's tallies are
            // deterministic regardless of the worker count
            let threads: usize =
                value(&args, "--threads").and_then(|v| v.parse().ok()).unwrap_or(0);
            let with_solver = flag(&args, "--solver");
            let as_json = flag(&args, "--json");
            let store_path = value(&args, "--store").map(PathBuf::from);
            let eco = match ecosystem_arg(&args) {
                Ok(eco) => eco,
                Err(code) => return code,
            };
            let set = match eco.constraints() {
                Ok(set) => set,
                Err(e) => {
                    eprintln!("extraction failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let solver_opts = FuzzOptions {
                seed,
                rounds: 4,
                batch: count.div_ceil(4).max(1),
                threads,
                strategy: Strategy::Solver,
                store_path,
            };
            if eco.name != "ext4" {
                // the aware/naive arms are the paper's ext4 ablation
                // baselines; other ecosystems run the solver-guided
                // campaign, which generates from the ecosystem's scope
                let harness =
                    if eco.name == "f2fs" { Harness::f2fs() } else { Harness::ext4() };
                let report = fuzz_campaign_with(&set, &solver_opts, &harness).report;
                if as_json {
                    match serde_json::to_string_pretty(&report) {
                        Ok(json) => println!("{json}"),
                        Err(e) => {
                            eprintln!("JSON encoding failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    println!(
                        "solver-guided ({}): {}/{} deep, polarity coverage {}/{} ({:.0}%), \
                         {} fresh executions in {} ms",
                        eco.name,
                        report.deep,
                        report.unique_verdicts,
                        report.coverage_covered,
                        report.coverage_universe,
                        100.0 * report.coverage_fraction,
                        report.executed_fresh,
                        report.wall_ms
                    );
                }
                return ExitCode::SUCCESS;
            }
            let mut gen = match ConBugCk::new(seed) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("generator failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let solver = Solver::new(&set);
            let aware_cfgs = gen.generate(count);
            let naive_cfgs = generate_naive(seed, count);
            let aware = campaign_parallel(&aware_cfgs, threads);
            let naive = campaign_parallel(&naive_cfgs, threads);
            let arm = |cfgs: &[confdep_suite::contools::GeneratedConfig],
                       campaign: &confdep_suite::contools::ConfigCampaign| {
                let mut cov = PolarityCoverage::new(&solver);
                for cfg in cfgs {
                    cov.observe(&solver, cfg);
                }
                FuzzCliArm {
                    deep: campaign.deep,
                    total: campaign.total,
                    deep_rate: campaign.deep_rate(),
                    coverage_covered: cov.covered(),
                    coverage_universe: cov.universe(),
                    coverage_fraction: cov.fraction(),
                }
            };
            let report = FuzzCliReport {
                count,
                seed,
                threads,
                aware: arm(&aware_cfgs, &aware),
                naive: arm(&naive_cfgs, &naive),
                solver: with_solver
                    .then(|| fuzz_campaign_with(&set, &solver_opts, &Harness::ext4()).report),
            };
            if as_json {
                match serde_json::to_string_pretty(&report) {
                    Ok(json) => println!("{json}"),
                    Err(e) => {
                        eprintln!("JSON encoding failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                return ExitCode::SUCCESS;
            }
            println!(
                "dependency-aware: {}/{} deep ({:.0}%), polarity coverage {}/{}",
                report.aware.deep,
                report.aware.total,
                100.0 * report.aware.deep_rate,
                report.aware.coverage_covered,
                report.aware.coverage_universe
            );
            println!(
                "naive random    : {}/{} deep ({:.0}%), polarity coverage {}/{}",
                report.naive.deep,
                report.naive.total,
                100.0 * report.naive.deep_rate,
                report.naive.coverage_covered,
                report.naive.coverage_universe
            );
            if let Some(s) = &report.solver {
                println!(
                    "solver-guided   : {}/{} deep, polarity coverage {}/{} ({:.0}%), \
                     {} unique verdicts ({} fresh) in {} ms",
                    s.deep,
                    s.unique_verdicts,
                    s.coverage_covered,
                    s.coverage_universe,
                    100.0 * s.coverage_fraction,
                    s.unique_verdicts,
                    s.executed_fresh,
                    s.wall_ms
                );
            }
            ExitCode::SUCCESS
        }
        "validate" => {
            let as_json = flag(&args, "--json");
            let with_explain = flag(&args, "--explain");
            let with_repair = flag(&args, "--repair");
            let naive = flag(&args, "--naive");
            let threads: usize =
                value(&args, "--threads").and_then(|v| v.parse().ok()).unwrap_or(0);
            let batch_path = value(&args, "--batch");
            let eco = match ecosystem_arg(&args) {
                Ok(eco) => eco,
                Err(code) => return code,
            };
            // an explicit --ecosystem tags queries with namespaced
            // `eco#` state keys; the bare spelling keeps the historical
            // untagged ext4 identity (and wire format) byte-identical
            let tagged = value(&args, "--ecosystem").is_some();
            let parse = |line: &str| {
                if tagged {
                    ConfigQuery::parse_line_for(&eco, line)
                } else {
                    ConfigQuery::parse_line(line)
                }
            };
            // everything that is not a recognised option is query text
            let mut words: Vec<String> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--batch" | "--threads" | "--ecosystem" => {
                        it.next();
                    }
                    "--json" | "--explain" | "--repair" | "--naive" => {}
                    _ => words.push(a.clone()),
                }
            }
            let queries: Vec<ConfigQuery> = match &batch_path {
                Some(path) => match std::fs::read_to_string(path) {
                    Ok(text) => text.lines().filter_map(&parse).collect(),
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    let line = words.join(" ");
                    match parse(&line) {
                        Some(q) => vec![q],
                        None => {
                            eprintln!(
                                "usage: confdep validate [--ecosystem E] \
                                 '<create args> | <mount opts>' \
                                 [--batch FILE] [--threads N] [--json] [--explain] \
                                 [--repair] [--naive]"
                            );
                            return ExitCode::from(2);
                        }
                    }
                }
            };
            if queries.is_empty() {
                eprintln!("no queries parsed");
                return ExitCode::from(2);
            }
            let set = match eco.constraints() {
                Ok(set) => set,
                Err(e) => {
                    eprintln!("extraction failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let plan = std::sync::Arc::new(ValidationPlan::compile_for(set, eco));
            let options = if naive { EngineOptions::naive() } else { EngineOptions::serving() };
            let engine = ValidationEngine::new(plan, options);
            let outcomes = engine.validate_many(&queries, threads);
            let constraints = engine.plan().constraints().constraints();
            let results: Vec<ValidateRow> = queries
                .iter()
                .zip(&outcomes)
                .map(|(q, out)| ValidateRow {
                    query: q.state_key(),
                    ok: out.ok(),
                    evaluated: out.evaluated,
                    memo_hit: out.memo_hit,
                    satisfied: out.satisfied(),
                    violations: out
                        .violations()
                        .into_iter()
                        .map(|i| constraints[i].signature().to_string())
                        .collect(),
                    explanations: (with_explain && !out.ok()).then(|| engine.explain(q)),
                    repair: (with_repair && !out.ok()).then(|| engine.repair(q)),
                })
                .collect();
            let violating = results.iter().filter(|r| !r.ok).count();
            let report = ValidateCliReport {
                queries: results.len(),
                ok: results.len() - violating,
                violating,
                threads,
                strategy: if naive { "naive".to_string() } else { "indexed+memo".to_string() },
                engine: engine.stats(),
                results,
            };
            if as_json {
                match serde_json::to_string_pretty(&report) {
                    Ok(json) => println!("{json}"),
                    Err(e) => {
                        eprintln!("JSON encoding failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                for (i, row) in report.results.iter().enumerate() {
                    if row.ok {
                        println!(
                            "query {:3}: OK ({} satisfied, {} evaluated{})",
                            i + 1,
                            row.satisfied,
                            row.evaluated,
                            if row.memo_hit { ", memo hit" } else { "" }
                        );
                    } else {
                        println!(
                            "query {:3}: {} violation(s) [{}]",
                            i + 1,
                            row.violations.len(),
                            row.query
                        );
                        for sig in &row.violations {
                            println!("           - {sig}");
                        }
                    }
                    if let Some(explanations) = &row.explanations {
                        for e in explanations {
                            println!("           explain: {} (doc: {:?})", e.dependency, e.doc);
                            for ev in &e.evidence {
                                println!("                    evidence: {ev}");
                            }
                        }
                    }
                    if let Some(repair) = &row.repair {
                        for change in &repair.changes {
                            println!(
                                "           repair: {}:{} {}",
                                change.component, change.param, change.action
                            );
                        }
                        for cfg in &repair.configs {
                            println!("           repaired: {}", cfg.canonical_key());
                        }
                        println!(
                            "           repaired config validates clean: {}",
                            repair.clean
                        );
                    }
                }
                let stats = report.engine;
                println!(
                    "\n{} queries: {} ok, {} violating | {:.1} constraints evaluated per \
                     query (of {})",
                    report.queries,
                    report.ok,
                    report.violating,
                    stats.evaluated_per_query(),
                    engine.plan().len()
                );
                if let Some(memo) = stats.memo {
                    println!(
                        "memo: {} hits, {} misses ({:.0}% hit rate), {} entries in {} shards",
                        memo.hits,
                        memo.misses,
                        100.0 * memo.hit_rate(),
                        memo.entries,
                        memo.shards
                    );
                }
            }
            if violating == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE }
        }
        "study" => {
            let t3 = study::classify_corpus();
            println!(
                "bug study : {} bugs | SD {:.1}% CPD {:.1}% CCD {:.1}%",
                t3.total.bugs,
                t3.total.sd_pct(),
                t3.total.cpd_pct(),
                t3.total.ccd_pct()
            );
            println!(
                "taxonomy  : {} critical dependencies, {}/7 sub-categories observed",
                study::total_critical_deps(),
                study::observed_sub_categories()
            );
            for row in study::coverage_table() {
                println!(
                    "coverage  : {:<14} {:<10} {:>3} of >{} ({:.1}%)",
                    row.suite,
                    row.target,
                    row.used,
                    row.total - 1,
                    row.pct()
                );
            }
            println!("catalog   : {} file systems with multi-stage configuration", study::fs_catalog().len());
            ExitCode::SUCCESS
        }
        "component" => {
            let Some(name) = args.get(1) else {
                eprintln!("usage: confdep component <name> [args...]");
                return ExitCode::from(2);
            };
            let Some((eco, comp)) = ecosys::resolve(name) else {
                let known: Vec<String> = ecosys::all()
                    .iter()
                    .flat_map(|e| {
                        e.components()
                            .iter()
                            .map(|c| format!("{}:{}", e.name, c.name()))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                eprintln!(
                    "unknown or ambiguous component: {name} (expected one of {})",
                    known.join(", ")
                );
                return ExitCode::from(2);
            };
            let rest: Vec<&str> = args[2..].iter().map(String::as_str).collect();
            let cfg = match comp.parse_config(&rest) {
                Ok(cfg) => cfg,
                Err(e) => {
                    eprintln!("{name}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("config: {}", cfg.canonical_key());
            // a create-stage component starts from a blank device (mke2fs
            // gets 16 MiB sized to the configured block size); every other
            // component operates on its ecosystem's freshly formatted
            // standard image
            let dev = if comp.name() == "mke2fs" {
                let bs = cfg.get_int("blocksize").unwrap_or(1024).clamp(1024, 65536) as u32;
                MemDevice::new(bs, (16 << 20) / u64::from(bs))
            } else if comp.name() == eco.create_component {
                MemDevice::new(4096, 8192)
            } else if eco.name == "f2fs" {
                standard_f2fs_image(&[])
            } else {
                standard_image("")
            };
            match comp.run(&rest, dev) {
                Ok(out) => {
                    println!("{}", out.summary);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{name}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "cross-fs" => {
            let ccds = ecosys::cross_fs_ccds();
            for d in &ccds {
                println!("{d}");
            }
            println!(
                "\n{} cross-ecosystem dependencies over shared mount parameters: {}",
                ccds.len(),
                ecosys::shared_mount_params().join(", ")
            );
            let Some(spec) = value(&args, "--check") else { return ExitCode::SUCCESS };
            let Some((ext4_opts, f2fs_opts)) = spec.split_once('|') else {
                eprintln!("--check expects '<ext4 mount opts> | <f2fs mount opts>'");
                return ExitCode::from(2);
            };
            let ext4_cfg = (ecosys::ext4().solver_scope().parse_mount)(ext4_opts.trim());
            let f2fs_cfg = (ecosys::f2fs().solver_scope().parse_mount)(f2fs_opts.trim());
            let plan = std::sync::Arc::new(ValidationPlan::compile_for(
                ecosys::cross_fs_constraints(),
                ecosys::ext4(),
            ));
            let engine = ValidationEngine::new(plan, EngineOptions::serving());
            let query = ConfigQuery::new(vec![ext4_cfg, f2fs_cfg]);
            let outcome = engine.validate(&query);
            if outcome.ok() {
                println!(
                    "agreement: OK ({} shared-parameter constraint(s) checked, none violated)",
                    outcome.satisfied()
                );
                ExitCode::SUCCESS
            } else {
                for e in engine.explain(&query) {
                    println!("disagreement: {}", e.dependency);
                    for ev in &e.evidence {
                        println!("              evidence: {ev}");
                    }
                }
                println!("\n{} agreement violation(s)", outcome.violations().len());
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
