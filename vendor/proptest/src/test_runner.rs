//! Deterministic case runner behind the [`proptest!`](crate::proptest)
//! macro.

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Config { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed.
    Fail(String),
    /// The inputs were rejected (the case is skipped, not failed).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// The RNG handed to strategies: splitmix64, seeded per case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// Runs `case` `config.cases` times with per-case seeded RNGs; panics
/// (with the generated inputs) on the first failure. Rejected cases
/// are skipped without counting as failures.
pub fn run<F>(config: &Config, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let base: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FF_EE00_D15E_A5E5);
    for i in 0..config.cases {
        // Decorrelate per-case seeds with one splitmix step.
        let mut seeder = TestRng::new(base ^ u64::from(i));
        let mut rng = TestRng::new(seeder.next_u64());
        let (inputs, result) = case(&mut rng);
        match result {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "proptest `{name}` failed at case {i}/{}: {reason}\n  inputs: {inputs}\n  \
                     (re-run with PROPTEST_SEED={base} to reproduce)",
                    config.cases
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_executes_requested_cases() {
        let mut count = 0;
        run(&Config::with_cases(10), "counter", |_| {
            count += 1;
            (String::new(), Ok(()))
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn rejects_are_skipped() {
        run(&Config::with_cases(5), "rejecting", |_| {
            (String::new(), Err(TestCaseError::reject("n/a")))
        });
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_inputs() {
        run(&Config::with_cases(3), "failing", |_| {
            ("x = 1".to_string(), Err(TestCaseError::fail("nope")))
        });
    }
}
