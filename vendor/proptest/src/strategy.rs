//! Value-generation strategies (no shrinking in this offline
//! stand-in).

use std::ops::{Range, RangeFrom, RangeInclusive};

use crate::collection::SizeRange;
use crate::test_runner::TestRng;

/// How many times a filter retries before giving up on the case.
const FILTER_RETRIES: usize = 256;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values rejected by `f`, retrying (a bounded
    /// number of times) until one passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence: whence.into(), f }
    }

    /// Erases the strategy type (needed to mix strategies in
    /// [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.gen_value(rng)))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let candidate = self.inner.gen_value(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!("proptest filter `{}` rejected {FILTER_RETRIES} candidates", self.whence);
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between several strategies of one value type
/// (behind [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `branches`.
    ///
    /// # Panics
    ///
    /// Panics if `branches` is empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_index(self.branches.len());
        self.branches[idx].gen_value(rng)
    }
}

// ---------------------------------------------------------------------
// integer ranges
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (*self.start() as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).gen_value(rng)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------
// tuples of strategies
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident : $i:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

// ---------------------------------------------------------------------
// collections
// ---------------------------------------------------------------------

/// Strategy returned by [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max_exclusive - self.size.min;
        let len = self.size.min + if span == 0 { 0 } else { rng.gen_index(span) };
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// Strategy returned by [`crate::array::uniform32`].
pub struct UniformArray<S, const N: usize> {
    pub(crate) element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn gen_value(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.gen_value(rng))
    }
}

// ---------------------------------------------------------------------
// regex-subset string strategies
// ---------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let v = (5u32..9).gen_value(&mut rng);
            assert!((5..9).contains(&v));
            let s = (-3i64..3).gen_value(&mut rng);
            assert!((-3..3).contains(&s));
        }
    }

    #[test]
    fn map_filter_union_compose() {
        let mut rng = TestRng::new(4);
        let s = crate::prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            (100u32..110).prop_filter("always", |_| true),
        ];
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!(v < 20 && v % 2 == 0 || (100..110).contains(&v), "{v}");
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::new(5);
        let s = crate::collection::vec(0u8..5, 2..6);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn uniform32_fills_the_array() {
        let mut rng = TestRng::new(6);
        let arr = crate::array::uniform32(1u8..3).gen_value(&mut rng);
        assert_eq!(arr.len(), 32);
        assert!(arr.iter().all(|&b| b == 1 || b == 2));
    }
}
