//! Random strings from a small regex subset.
//!
//! Supports the constructs the repository's tests use: `.` (any
//! character), `[a-z0-9_]`-style classes, literals, and the
//! quantifiers `*`, `+`, `?`, `{n}`, `{m,n}`. Anything else is treated
//! as a literal character.

use crate::test_runner::TestRng;

/// Cap on `*` / `+` repetition counts.
const STAR_MAX: usize = 32;

enum CharSet {
    /// `.` — drawn from a printable pool plus a few awkward characters.
    Any,
    /// An explicit set from `[...]` or a literal.
    Set(Vec<char>),
}

struct Atom {
    chars: CharSet,
    min: usize,
    max: usize, // inclusive
}

/// Characters `.` draws from: printable ASCII plus edge cases that
/// exercise lexers (newline, quote-likes, multi-byte).
fn any_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
    pool.extend(['\n', '\t', 'é', 'λ', '\u{1F600}']);
    pool
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '.' => {
                i += 1;
                CharSet::Any
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range {lo}-{hi} in `{pattern}`");
                        set.extend((lo..=hi).filter(|c| c.is_ascii() || lo > '\u{7f}'));
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated `[` in `{pattern}`");
                i += 1; // ']'
                CharSet::Set(set)
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "trailing `\\` in `{pattern}`");
                i += 2;
                CharSet::Set(vec![chars[i - 1]])
            }
            c => {
                i += 1;
                CharSet::Set(vec![c])
            }
        };
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, STAR_MAX)
            }
            Some('+') => {
                i += 1;
                (1, STAR_MAX)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated `{{` in `{pattern}`"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                if let Some((lo, hi)) = body.split_once(',') {
                    (
                        lo.parse().unwrap_or_else(|_| panic!("bad repeat in `{pattern}`")),
                        hi.parse().unwrap_or_else(|_| panic!("bad repeat in `{pattern}`")),
                    )
                } else {
                    let n = body.parse().unwrap_or_else(|_| panic!("bad repeat in `{pattern}`"));
                    (n, n)
                }
            }
            _ => (1, 1),
        };
        atoms.push(Atom { chars: set, min, max });
    }
    atoms
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let pool = any_pool();
    let mut out = String::new();
    for atom in &atoms {
        let span = atom.max - atom.min + 1;
        let count = atom.min + rng.gen_index(span);
        let set = match &atom.chars {
            CharSet::Any => &pool,
            CharSet::Set(s) => s,
        };
        assert!(!set.is_empty(), "empty character class in `{pattern}`");
        for _ in 0..count {
            out.push(set[rng.gen_index(set.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repeat_matches_shape() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9_]{0,8}", &mut rng);
            let mut cs = s.chars();
            let first = cs.next().expect("at least one char");
            assert!(first.is_ascii_lowercase(), "{s}");
            assert!(s.chars().count() <= 9, "{s}");
            assert!(
                cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s}"
            );
        }
    }

    #[test]
    fn dot_star_varies_length() {
        let mut rng = TestRng::new(10);
        let lens: Vec<usize> = (0..50).map(|_| generate(".*", &mut rng).chars().count()).collect();
        assert!(lens.iter().any(|&l| l == 0) || lens.iter().any(|&l| l > 0));
        assert!(lens.iter().all(|&l| l <= STAR_MAX));
    }

    #[test]
    fn bounded_dot_respects_bounds() {
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let s = generate(".{0,400}", &mut rng);
            assert!(s.chars().count() <= 400);
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::new(12);
        assert_eq!(generate("abc", &mut rng), "abc");
    }
}
