//! Vendored offline stand-in for the crates.io `proptest` crate.
//!
//! Implements the subset this repository's property tests use: the
//! [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//! [`prop_assert_eq!`] macros, integer-range / regex-subset string /
//! tuple / [`Just`] strategies, `prop::collection::vec`,
//! `prop::array::uniform32`, [`test_runner::Config`]
//! (`ProptestConfig`), and [`test_runner::TestCaseError`].
//!
//! Differences from real proptest: cases are generated from a
//! deterministic seeded RNG (override with `PROPTEST_SEED` /
//! `PROPTEST_CASES` env vars) and failing inputs are reported but NOT
//! shrunk.

pub mod strategy;
pub mod string;
pub mod test_runner;

/// `prop::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Inclusive-exclusive bounds on a generated collection length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub(crate) min: usize,
        pub(crate) max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// `prop::array` — fixed-size array strategies.
pub mod array {
    use crate::strategy::{Strategy, UniformArray};

    /// Generates a `[S::Value; 32]` with each element drawn from `s`.
    pub fn uniform32<S: Strategy>(s: S) -> UniformArray<S, 32> {
        UniformArray { element: s }
    }
}

/// The items a property test conventionally imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// ---------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------

/// Declares property tests. Each body runs once per generated case and
/// must evaluate to `Result<(), TestCaseError>`-compatible statements
/// (a bare body is wrapped in `Ok(())`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), __rng);)*
                let __inputs = {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str(concat!(stringify!($arg), " = "));
                        __s.push_str(&::std::format!("{:?}; ", $arg));
                    )*
                    __s
                };
                let __result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                (__inputs, __result)
            });
        }
    )*};
}

/// Picks one of several strategies (uniformly) for each generated
/// value; all branches must share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fails the current test case (returning a `TestCaseError`) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), __l, __r, ::std::format!($($fmt)*)
        );
    }};
}

/// Fails the current test case unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
}
