//! Vendored offline stand-in for the crates.io `crossbeam` crate.
//!
//! Only the scoped-thread API used by this repository is provided,
//! implemented on top of `std::thread::scope`.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    /// A scope handle passed to [`scope`] closures and to each spawned
    /// thread (crossbeam hands every spawned closure a `&Scope` so it
    /// can spawn siblings).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        ///
        /// # Errors
        ///
        /// Returns the boxed panic payload if the thread panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be
    /// spawned; all spawned threads are joined before returning.
    ///
    /// # Errors
    ///
    /// The crossbeam API reports panics of *unjoined* threads via
    /// `Err`; `std::thread::scope` instead resumes such panics, so this
    /// stand-in only ever returns `Ok` (callers `.expect()` it anyway).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u32, 2, 3];
        let sum = crate::thread::scope(|scope| {
            let handles: Vec<_> =
                data.iter().map(|&v| scope.spawn(move |_| v * 2)).collect();
            handles.into_iter().map(|h| h.join().expect("join")).sum::<u32>()
        })
        .expect("scope");
        assert_eq!(sum, 12);
    }

    #[test]
    fn panics_surface_through_join() {
        crate::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .expect("scope");
    }
}
