//! Vendored offline stand-in for the crates.io `rand` crate (0.8 API
//! subset).
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open integer ranges, and
//! [`Rng::gen_bool`]. The generator is splitmix64 — statistically fine
//! for test-case generation, NOT cryptographic (neither is the real
//! `StdRng` contractually).

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

sample_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53 mantissa bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator (splitmix64 in this offline stand-in).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
