//! Vendored offline stand-in for the crates.io `criterion` crate.
//!
//! Covers the API subset this repository's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Under `cargo bench` each routine is warmed up and timed over a
//! short window, printing a mean time per iteration. Under
//! `cargo test` (no `--bench` flag) each routine runs exactly once as
//! a smoke test, mirroring real criterion's test mode.

use std::time::{Duration, Instant};

/// How a batched setup's cost relates to the routine (sizing hint only;
/// this stand-in treats all variants the same).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: large batches.
    SmallInput,
    /// Large inputs: small batches.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher {
    mode: Mode,
    /// (iterations, total time) recorded by the last `iter*` call.
    sample: Option<(u64, Duration)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Bench,
    Smoke,
}

/// Target measurement window per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);
/// Iteration cap per benchmark, so slow routines still finish quickly.
const MAX_ITERS: u64 = 1000;

impl Bencher {
    /// Times `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Smoke {
            std::hint::black_box(routine());
            return;
        }
        std::hint::black_box(routine()); // warm-up
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_WINDOW && iters < MAX_ITERS {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.sample = Some((iters.max(1), start.elapsed()));
    }

    /// Times `routine` over inputs produced by `setup`; only the
    /// routine is inside the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.mode == Mode::Smoke {
            std::hint::black_box(routine(setup()));
            return;
        }
        std::hint::black_box(routine(setup())); // warm-up
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        let window = Instant::now();
        while window.elapsed() < MEASURE_WINDOW && iters < MAX_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            timed += start.elapsed();
            iters += 1;
        }
        self.sample = Some((iters.max(1), timed));
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes bench binaries with `--bench`;
        // `cargo test` does not. Mirror real criterion's mode switch.
        let bench = std::env::args().any(|a| a == "--bench");
        Criterion { mode: if bench { Mode::Bench } else { Mode::Smoke } }
    }
}

impl Criterion {
    /// Runs (and in bench mode times) one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mode: self.mode, sample: None };
        f(&mut b);
        match (self.mode, b.sample) {
            (Mode::Bench, Some((iters, total))) => {
                let per_iter = total.as_nanos() / u128::from(iters);
                println!("{id:<40} {:>12} ns/iter ({iters} iterations)", per_iter);
            }
            (Mode::Bench, None) => println!("{id:<40} (no sample recorded)"),
            (Mode::Smoke, _) => {}
        }
        self
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_routine_once() {
        let mut c = Criterion { mode: Mode::Smoke };
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn batched_smoke_runs_setup_and_routine() {
        let mut c = Criterion { mode: Mode::Smoke };
        let mut out = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 21u32, |v| out = v * 2, BatchSize::SmallInput)
        });
        assert_eq!(out, 42);
    }
}
