//! Vendored offline stand-in for the crates.io `serde_json` crate.
//!
//! Renders the vendored serde [`Value`] tree as JSON text and parses
//! JSON text back into it. Covers the API subset used by this
//! repository: [`to_string`], [`to_string_pretty`], [`from_str`], and
//! the [`Error`] type.

use serde::{Deserialize, Serialize, Value};

/// A JSON serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

// ---------------------------------------------------------------------
// emitting
// ---------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(v: f64, out: &mut String) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        out.push_str("null"); // JSON has no NaN/Inf, like real serde_json
    }
}

fn write_value(v: &Value, out: &mut String, pretty: bool, indent: usize) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if pretty {
                    } else {
                    }
                }
                pad(out, indent + 1);
                write_value(item, out, pretty, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(item, out, pretty, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the value tree; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, false, 0);
    Ok(out)
}

/// Serializes `value` as human-readable indented JSON.
///
/// # Errors
///
/// Infallible for the value tree; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, true, 0);
    Ok(out)
}

// ---------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{what}`")))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "\"")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > 128 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':', ":")?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }
}

/// Parses `s` as JSON and deserializes it into `T`.
///
/// # Errors
///
/// Returns [`Error`] for malformed JSON or a shape mismatch.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

/// Parses `s` as JSON into the raw value tree.
///
/// # Errors
///
/// Returns [`Error`] for malformed JSON.
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    from_str::<Value>(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi\n").unwrap(), "\"hi\\n\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
    }

    #[test]
    fn round_trip_containers() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u32];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }

    #[test]
    fn errors_carry_position() {
        let e = from_str::<u32>("{").unwrap_err();
        assert!(e.to_string().contains("byte"));
    }
}
