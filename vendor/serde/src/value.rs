/// The serialization data model of the vendored serde subset.
///
/// Every serializable type converts to this tree
/// ([`crate::Serialize::to_value`]); deserialization converts back
/// ([`crate::Deserialize::from_value`]). `serde_json` renders the tree
/// as JSON text and parses JSON text into it.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer that does not fit `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (preserves insertion order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Integer accessor accepting both signed and unsigned storage.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Unsigned accessor accepting both signed and unsigned storage.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(v) => u64::try_from(v).ok(),
            Value::UInt(v) => Some(v),
            _ => None,
        }
    }
}
