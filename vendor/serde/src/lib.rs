//! Vendored offline stand-in for the crates.io `serde` crate.
//!
//! The confdep workspace is built in environments with no access to a
//! package registry, so the external dependencies are vendored as small
//! local crates implementing exactly the API subset this repository
//! uses. The serialization data model is a simple [`Value`] tree; the
//! derive macros (re-exported from `serde_derive`) generate conversions
//! to and from that tree, and `serde_json` renders it as JSON.
//!
//! Supported surface: `#[derive(Serialize, Deserialize)]` on structs and
//! enums (externally-tagged, like real serde), `#[serde(transparent)]`,
//! `#[serde(with = "module")]`, manual `Serializer`/`Deserializer`
//! implementations via the value tree, and `serde::de::Error::custom`.

pub mod de;
pub mod ser;

mod impls;
mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The error type shared by the vendored value-tree (de)serializers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub(crate) String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Support machinery used by the generated derive code. Not a stable
/// API — mirrors real serde's `#[doc(hidden)] pub mod __private`.
pub mod __private {
    use super::{de, ser, Error, Value};

    /// A serializer whose output is the [`Value`] tree itself.
    pub struct ValueSerializer;

    impl ser::Serializer for ValueSerializer {
        type Ok = Value;
        type Error = Error;
        fn serialize_value(self, value: Value) -> Result<Value, Error> {
            Ok(value)
        }
    }

    /// A deserializer reading from a borrowed [`Value`] tree.
    pub struct ValueDeserializer<'a>(pub &'a Value);

    impl<'de, 'a> de::Deserializer<'de> for ValueDeserializer<'a> {
        type Error = Error;
        fn take_value(self) -> Result<Value, Error> {
            Ok(self.0.clone())
        }
    }

    /// Looks up `key` in a map value (derive-generated struct decoding).
    pub fn map_field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{key}`"))),
            other => Err(Error(format!("expected map for field `{key}`, got {}", other.kind()))),
        }
    }

    /// Like [`map_field`] but returns `None` for an absent key (used for
    /// `Option` fields so missing keys decode as `None`).
    pub fn opt_map_field<'v>(v: &'v Value, key: &str) -> Result<Option<&'v Value>, Error> {
        match v {
            Value::Map(entries) => Ok(entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)),
            other => Err(Error(format!("expected map for field `{key}`, got {}", other.kind()))),
        }
    }
}
