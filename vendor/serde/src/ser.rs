//! Serialization half of the vendored serde subset.

use crate::Value;

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;

    /// Serializes `self` with the given serializer. Provided in terms of
    /// [`Serialize::to_value`]; manual implementations (e.g.
    /// `#[serde(with = "...")]` helper modules) call the serializer
    /// directly.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// A sink for [`Value`] trees. The single required method accepts a
/// fully-built value; convenience collectors mirror the real serde API
/// points this repository uses.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error;

    /// Consumes a complete value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes the items of `iter` as a sequence.
    fn collect_seq<I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        I: IntoIterator,
        I::Item: Serialize,
    {
        self.serialize_value(Value::Seq(iter.into_iter().map(|item| item.to_value()).collect()))
    }
}
