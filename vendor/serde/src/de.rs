//! Deserialization half of the vendored serde subset.

use crate::Value;

/// The error-construction trait of real serde's `de` module; the one
/// entry point the repository uses is [`Error::custom`].
pub trait Error: Sized {
    /// Builds an error from a display-able message.
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A source of [`Value`] trees.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;

    /// Consumes the deserializer, yielding the complete value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize<'de>: Sized {
    /// Converts a [`Value`] tree back into `Self`.
    fn from_value(value: &Value) -> Result<Self, crate::Error>;

    /// Deserializes from the given deserializer. Provided in terms of
    /// [`Deserialize::from_value`].
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        Self::from_value(&value).map_err(|e| D::Error::custom(e))
    }
}
