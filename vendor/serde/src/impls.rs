//! `Serialize`/`Deserialize` implementations for the std types the
//! repository serializes.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::de::Deserialize;
use crate::ser::Serialize;
use crate::{Error, Value};

// ---------------------------------------------------------------------
// primitives
// ---------------------------------------------------------------------

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if let Ok(i) = i64::try_from(v) { Value::Int(i) } else { Value::UInt(v as u64) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let out = match *value {
                    Value::Int(v) => <$t>::try_from(v).ok(),
                    Value::UInt(v) => <$t>::try_from(v).ok(),
                    _ => None,
                };
                out.ok_or_else(|| {
                    Error::msg(format!("expected {}, got {}", stringify!($t), value.kind()))
                })
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match *value {
                    Value::Float(v) => Ok(v as $t),
                    Value::Int(v) => Ok(v as $t),
                    Value::UInt(v) => Ok(v as $t),
                    _ => Err(Error::msg(format!("expected float, got {}", value.kind()))),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::msg(format!("expected bool, got {}", value.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg(format!("expected string, got {}", value.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// The value tree owns its strings, so borrowed deserialization has to
// leak. Only static-table types (e.g. the Table 1 catalog) carry
// `&'static str` fields, and they are deserialized rarely if ever, so
// the leak is bounded and acceptable for this offline stand-in.
impl<'de> Deserialize<'de> for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::msg(format!("expected string, got {}", value.kind()))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            _ => Err(Error::msg(format!("expected null, got {}", value.kind()))),
        }
    }
}

// ---------------------------------------------------------------------
// references and containers
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg(format!("expected sequence, got {}", value.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + std::fmt::Debug, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|v| Error::msg(format!("expected {N}-element array, got {}", v.len())))
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg(format!("expected sequence, got {}", value.kind()))),
        }
    }
}

// Map keys are rendered as JSON object keys, so they must format as
// strings; `ToString`/`FromStr` covers the string and integer keys the
// repository uses.
impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: std::str::FromStr + Ord,
    V: Deserialize<'de>,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key =
                        k.parse::<K>().map_err(|_| Error::msg(format!("bad map key `{k}`")))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            _ => Err(Error::msg(format!("expected map, got {}", value.kind()))),
        }
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic output
        Value::Map(entries)
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: std::str::FromStr + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key =
                        k.parse::<K>().map_err(|_| Error::msg(format!("bad map key `{k}`")))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            _ => Err(Error::msg(format!("expected map, got {}", value.kind()))),
        }
    }
}

// ---------------------------------------------------------------------
// tuples
// ---------------------------------------------------------------------

macro_rules! tuple_impl {
    ($(($($t:ident : $i:tt),+ ; $n:expr)),* $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Seq(items) if items.len() == $n => {
                        Ok(($($t::from_value(&items[$i])?,)+))
                    }
                    _ => Err(Error::msg(format!("expected {}-tuple", $n))),
                }
            }
        }
    )*};
}

tuple_impl!(
    (A: 0; 1),
    (A: 0, B: 1; 2),
    (A: 0, B: 1, C: 2; 3),
    (A: 0, B: 1, C: 2, D: 3; 4),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
