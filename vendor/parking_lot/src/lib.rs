//! Vendored offline stand-in for the crates.io `parking_lot` crate.
//!
//! Wraps the std primitives behind parking_lot's non-poisoning API: a
//! panic while a guard is held simply releases the lock for the next
//! acquirer instead of poisoning it.

/// Read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference without locking (`&mut self` proves
    /// exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_round_trip() {
        let lock = RwLock::new(5u32);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn panic_does_not_poison() {
        let lock = std::sync::Arc::new(RwLock::new(1u32));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.read(), 1);
    }
}
