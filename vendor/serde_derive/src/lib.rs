//! Vendored offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! item shapes this repository uses: structs (named, tuple, unit) and
//! enums (unit, tuple, and struct variants), plus the container
//! attribute `#[serde(transparent)]` and the field attributes
//! `#[serde(with = "module")]` and `#[serde(default)]` (absent map keys
//! deserialize to `Default::default()`). Everything is parsed with a
//! hand-rolled
//! walker over `proc_macro::TokenTree` — the real `syn`/`quote` stack is
//! not available offline — and the generated code targets the vendored
//! serde's value-tree model (`to_value`/`from_value`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// item model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Field {
    name: Option<String>, // None for tuple fields
    with: Option<String>, // #[serde(with = "module")]
    default: bool,        // #[serde(default)]
}

#[derive(Debug, Clone)]
enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, shape: Shape, transparent: bool },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------

/// Serde markers collected from the attributes of one item or field.
#[derive(Debug, Default)]
struct Markers {
    with: Option<String>, // #[serde(with = "module")]
    transparent: bool,    // #[serde(transparent)]
    default: bool,        // #[serde(default)]
}

/// Extracts `with = "..."` / `transparent` / `default` markers from one
/// `#[...]` attribute group, ignoring non-serde attributes entirely.
fn parse_serde_attr(group: &proc_macro::Group, markers: &mut Markers) {
    let mut inner = group.stream().into_iter();
    match inner.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = inner.next() else { return };
    let toks: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) if id.to_string() == "transparent" => {
                markers.transparent = true;
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "default" => {
                markers.default = true;
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "with" => {
                // with = "path"
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (toks.get(i + 1), toks.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        let raw = lit.to_string();
                        markers.with = Some(raw.trim_matches('"').to_string());
                    }
                }
                i += 3;
            }
            _ => i += 1,
        }
    }
}

/// Consumes a run of leading attributes (`#[...]`), returning the index
/// of the first non-attribute token and recording serde markers.
fn skip_attrs(toks: &[TokenTree], mut i: usize, markers: &mut Markers) -> usize {
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                    parse_serde_attr(g, markers);
                    i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits the comma-separated entries of a brace/paren group, tracking
/// `<...>` angle-bracket depth so generic type arguments survive.
fn split_commas(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    split_commas(&toks)
        .into_iter()
        .filter_map(|entry| {
            let mut markers = Markers::default();
            let mut i = skip_attrs(&entry, 0, &mut markers);
            i = skip_vis(&entry, i);
            match entry.get(i) {
                Some(TokenTree::Ident(id)) => Some(Field {
                    name: Some(id.to_string()),
                    with: markers.with,
                    default: markers.default,
                }),
                _ => None,
            }
        })
        .collect()
}

fn parse_tuple_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    split_commas(&toks)
        .into_iter()
        .map(|entry| {
            let mut markers = Markers::default();
            skip_attrs(&entry, 0, &mut markers);
            Field { name: None, with: markers.with, default: markers.default }
        })
        .collect()
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    // variants are comma-separated at the top level; group tokens (the
    // payloads) never contain top-level commas
    let mut out = Vec::new();
    for entry in split_commas(&toks) {
        let mut markers = Markers::default();
        let i = skip_attrs(&entry, 0, &mut markers);
        let Some(TokenTree::Ident(name)) = entry.get(i) else { continue };
        let shape = match entry.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(parse_tuple_fields(g))
            }
            _ => Shape::Unit,
        };
        out.push(Variant { name: name.to_string(), shape });
    }
    out
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut markers = Markers::default();
    let mut i = skip_attrs(&toks, 0, &mut markers);
    i = skip_vis(&toks, i);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match toks.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = toks.get(i + 2) {
        if p.as_char() == '<' {
            return Err(format!("generic item `{name}` is not supported by the vendored derive"));
        }
    }
    match kind.as_str() {
        "struct" => {
            let shape = match toks.get(i + 2) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g))
                }
                _ => Shape::Unit,
            };
            Ok(Item::Struct { name, shape, transparent: markers.transparent })
        }
        "enum" => match toks.get(i + 2) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum { name, variants: parse_variants(g) })
            }
            other => Err(format!("expected enum body, got {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}`")),
    }
}

// ---------------------------------------------------------------------
// code generation
// ---------------------------------------------------------------------

/// `self.field` / `self.0` serialization expression for one field.
fn field_to_value(expr: &str, field: &Field) -> String {
    match &field.with {
        Some(path) => format!(
            "match {path}::serialize(&{expr}, ::serde::__private::ValueSerializer) {{ \
               Ok(v) => v, Err(e) => panic!(\"with-module serialize failed: {{e}}\") }}"
        ),
        None => format!("::serde::ser::Serialize::to_value(&{expr})"),
    }
}

/// Deserialization expression for one field given a `&Value` expression.
fn field_from_value(value_expr: &str, field: &Field) -> String {
    match &field.with {
        Some(path) => format!(
            "{path}::deserialize(::serde::__private::ValueDeserializer({value_expr}))?"
        ),
        None => format!("::serde::de::Deserialize::from_value({value_expr})?"),
    }
}

/// Initialiser for one named field read out of map `container_expr`; a
/// `#[serde(default)]` field tolerates an absent key.
fn named_field_init(container_expr: &str, field: &Field) -> String {
    let fname = field.name.as_deref().expect("named field");
    if field.default {
        format!(
            "{fname}: match ::serde::__private::opt_map_field({container_expr}, \"{fname}\")? {{ \
               Some(v) => {}, \
               None => ::std::default::Default::default(), \
             }}",
            field_from_value("v", field)
        )
    } else {
        format!(
            "{fname}: {}",
            field_from_value(
                &format!("::serde::__private::map_field({container_expr}, \"{fname}\")?"),
                field
            )
        )
    }
}

fn gen_struct_serialize(name: &str, shape: &Shape, transparent: bool) -> String {
    let body = match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Tuple(fields) if transparent || fields.len() == 1 => {
            field_to_value("self.0", &fields[0])
        }
        Shape::Tuple(fields) => {
            let items: Vec<String> = fields
                .iter()
                .enumerate()
                .map(|(i, f)| field_to_value(&format!("self.{i}"), f))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::Named(fields) if transparent && fields.len() == 1 => {
            let fname = fields[0].name.as_deref().expect("named field");
            field_to_value(&format!("self.{fname}"), &fields[0])
        }
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let fname = f.name.as_deref().expect("named field");
                    format!(
                        "(String::from(\"{fname}\"), {})",
                        field_to_value(&format!("self.{fname}"), f)
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
    };
    format!(
        "impl ::serde::ser::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_struct_deserialize(name: &str, shape: &Shape, transparent: bool) -> String {
    let body = match shape {
        Shape::Unit => format!("{{ let _ = value; Ok({name}) }}"),
        Shape::Tuple(fields) if transparent || fields.len() == 1 => {
            format!("Ok({name}({}))", field_from_value("value", &fields[0]))
        }
        Shape::Tuple(fields) => {
            let n = fields.len();
            let items: Vec<String> = fields
                .iter()
                .enumerate()
                .map(|(i, f)| field_from_value(&format!("&items[{i}]"), f))
                .collect();
            format!(
                "match value {{ \
                   ::serde::Value::Seq(items) if items.len() == {n} => \
                     Ok({name}({})), \
                   _ => Err(::serde::Error::msg(\"expected {n}-element sequence for {name}\")), \
                 }}",
                items.join(", ")
            )
        }
        Shape::Named(fields) if transparent && fields.len() == 1 => {
            let fname = fields[0].name.as_deref().expect("named field");
            format!("Ok({name} {{ {fname}: {} }})", field_from_value("value", &fields[0]))
        }
        Shape::Named(fields) => {
            let inits: Vec<String> =
                fields.iter().map(|f| named_field_init("value", f)).collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
    };
    format!(
        "impl<'de> ::serde::de::Deserialize<'de> for {name} {{ \
           fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
             {{ {body} }} \
         }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.shape {
                Shape::Unit => format!(
                    "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),"
                ),
                Shape::Tuple(fields) if fields.len() == 1 => format!(
                    "{name}::{vn}(f0) => ::serde::Value::Map(vec![\
                       (String::from(\"{vn}\"), {})]),",
                    field_to_value("f0", &fields[0])
                ),
                Shape::Tuple(fields) => {
                    let binds: Vec<String> =
                        (0..fields.len()).map(|i| format!("f{i}")).collect();
                    let items: Vec<String> = fields
                        .iter()
                        .enumerate()
                        .map(|(i, f)| field_to_value(&format!("f{i}"), f))
                        .collect();
                    format!(
                        "{name}::{vn}({}) => ::serde::Value::Map(vec![\
                           (String::from(\"{vn}\"), ::serde::Value::Seq(vec![{}]))]),",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let binds: Vec<String> = fields
                        .iter()
                        .map(|f| f.name.clone().expect("named field"))
                        .collect();
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            let fname = f.name.as_deref().expect("named field");
                            format!(
                                "(String::from(\"{fname}\"), {})",
                                field_to_value(fname, f)
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![\
                           (String::from(\"{vn}\"), ::serde::Value::Map(vec![{}]))]),",
                        binds.join(", "),
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::ser::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }} \
         }}",
        arms.join(" ")
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| {
            let vn = &v.name;
            format!("::serde::Value::Str(s) if s == \"{vn}\" => Ok({name}::{vn}),")
        })
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.shape, Shape::Unit))
        .map(|v| {
            let vn = &v.name;
            match &v.shape {
                Shape::Unit => unreachable!("filtered above"),
                Shape::Tuple(fields) if fields.len() == 1 => format!(
                    "\"{vn}\" => Ok({name}::{vn}({})),",
                    field_from_value("payload", &fields[0])
                ),
                Shape::Tuple(fields) => {
                    let n = fields.len();
                    let items: Vec<String> = fields
                        .iter()
                        .enumerate()
                        .map(|(i, f)| field_from_value(&format!("&items[{i}]"), f))
                        .collect();
                    format!(
                        "\"{vn}\" => match payload {{ \
                           ::serde::Value::Seq(items) if items.len() == {n} => \
                             Ok({name}::{vn}({})), \
                           _ => Err(::serde::Error::msg(\
                                 \"expected {n}-element sequence for {name}::{vn}\")), \
                         }},",
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let inits: Vec<String> =
                        fields.iter().map(|f| named_field_init("payload", f)).collect();
                    format!("\"{vn}\" => Ok({name}::{vn} {{ {} }}),", inits.join(", "))
                }
            }
        })
        .collect();
    format!(
        "impl<'de> ::serde::de::Deserialize<'de> for {name} {{ \
           fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
             match value {{ \
               {} \
               ::serde::Value::Map(entries) if entries.len() == 1 => {{ \
                 let (tag, payload) = &entries[0]; \
                 match tag.as_str() {{ \
                   {} \
                   other => Err(::serde::Error::msg(format!(\
                     \"unknown {name} variant `{{other}}`\"))), \
                 }} \
               }} \
               _ => Err(::serde::Error::msg(\"unexpected value for enum {name}\")), \
             }} \
           }} \
         }}",
        unit_arms.join(" "),
        tagged_arms.join(" ")
    )
}

// ---------------------------------------------------------------------
// entry points
// ---------------------------------------------------------------------

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let code = match parse_item(input) {
        Ok(Item::Struct { name, shape, transparent }) => {
            if serialize {
                gen_struct_serialize(&name, &shape, transparent)
            } else {
                gen_struct_deserialize(&name, &shape, transparent)
            }
        }
        Ok(Item::Enum { name, variants }) => {
            if serialize {
                gen_enum_serialize(&name, &variants)
            } else {
                gen_enum_deserialize(&name, &variants)
            }
        }
        Err(msg) => format!("compile_error!(\"vendored serde_derive: {msg}\");"),
    };
    code.parse().expect("generated code parses")
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}
